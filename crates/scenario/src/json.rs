//! A minimal hand-rolled JSON value type, writer and parser.
//!
//! Scenario files, the result cache and the `--json` export need
//! structured round-trip serialisation, and the offline registry rules
//! out serde. This module implements exactly the JSON subset the stack
//! emits: objects, arrays, strings, booleans, null, unsigned 64-bit
//! integers (written as plain decimals and parsed back exactly) and
//! finite floats. Floating-point values that must survive a byte-exact
//! round trip are stored as `u64` bit patterns by the caller, never as
//! `Float` — objects keep their keys sorted, so serialisation is
//! canonical and content hashes over the text are stable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, written without decimal point. Parsing
    /// returns any undecorated integer that fits `u64` as this variant,
    /// so `u64` survives a round trip exactly.
    UInt(u64),
    /// A finite float (used only for human-facing exports).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted so serialisation is canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a slice of values, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                // {:?} prints the shortest representation that parses back
                // to the same f64; non-finite values have no JSON form.
                assert!(x.is_finite(), "cannot serialise non-finite float");
                let _ = write!(out, "{x:?}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns `Err` with a byte offset and
    /// message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Serialises to a compact JSON string (via `.to_string()`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected '{token}' at byte {pos}"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape unsupported")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, multi-byte sequences included.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected number at byte {start}"));
    }
    // Undecorated non-negative integers round-trip through u64 exactly.
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|e| format!("bad number '{text}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_exactly() {
        for n in [0u64, 1, u64::MAX, 1 << 53, (1 << 53) + 1] {
            let text = Json::UInt(n).to_string();
            assert_eq!(Json::parse(&text).unwrap(), Json::UInt(n));
        }
    }

    #[test]
    fn object_round_trips() {
        let v = Json::obj([
            ("name", Json::Str("fig4".into())),
            ("cells", Json::Arr(vec![Json::UInt(3), Json::Bool(true)])),
            ("nothing", Json::Null),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_via_shortest_repr() {
        for x in [0.5f64, 1.0 / 3.0, 1e-300, 123456.789] {
            let text = Json::Float(x).to_string();
            match Json::parse(&text).unwrap() {
                Json::Float(y) => assert_eq!(x.to_bits(), y.to_bits()),
                other => panic!("parsed {other:?}"),
            }
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn malformed_inputs_error() {
        for text in ["{", "[1,", "\"abc", "tru", "{\"a\" 1}", "1 2"] {
            assert!(Json::parse(text).is_err(), "{text} parsed");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("k", Json::UInt(7)), ("s", Json::Str("x".into()))]);
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.as_u64(), None);
    }
}
