//! The scenario layer (DESIGN.md §10): one serializable descriptor of a
//! run.
//!
//! A [`Scenario`] is a pure-data value describing everything that can
//! change the outcome of one simulation: the platform shape and seed,
//! the cost-model flavour, the workload (a named preset, a named
//! adversarial generator, or an inline class mix), the contention
//! manager configuration, an optional fault plan and the trace mode. It
//! round-trips through canonical JSON ([`crate::json`]: sorted object
//! keys, `f64`s as bit patterns) and its FNV content hash
//! ([`Scenario::id`]) is *the* run identity — the result cache, the fuzz
//! repro format and the trace header all key on it, and the `bfgts_run`
//! binary executes scenario files directly.
//!
//! Everything here is data plus resolution: [`WorkloadSpec::resolve`]
//! turns a workload description back into runnable sources,
//! [`ManagerSpec::build`] instantiates the described contention manager,
//! and [`CostKind::run_config`] produces the engine configuration.
//! Execution (worker pools, caching, summaries) stays in `bfgts-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use bfgts_baselines::{
    AtsCm, BackoffCm, BalancedGreedyCm, BalancedGreedyConfig, PolkaCm, PtsCm, PtsConfig, StallCm,
    WindowGreedyCm, WindowGreedyConfig,
};
use bfgts_core::{BfgtsCm, BfgtsConfig, BfgtsVariant, CmFaults};
use bfgts_faultsim::{Fault, FaultPlan};
pub use bfgts_htm::Detection;
use bfgts_htm::{ContentionManager, TmRunConfig};
use bfgts_sim::TraceMode;
use bfgts_workloads::{
    presets, AdversarialSpec, ArrivalProcess, ArrivalSpec, BenchmarkSpec, ExpectedProfile,
    RandomRegion, Region, TxClass,
};
use json::Json;
use std::sync::Arc;

/// Format version of a scenario document. Bump on any change to the
/// JSON schema *or* to anything the content hash commits to — a bumped
/// version changes every scenario id, which is exactly the
/// cache-invalidation semantics run identity needs.
pub const SCENARIO_VERSION: u64 = 1;

/// Default master seed of the experiment grids (`bench::Platform`).
/// Distinct from [`bfgts_htm::DEFAULT_RUN_SEED`], which is the harness
/// default when no seed is chosen at all: experiments deliberately pin
/// their own seed so harness-level reseeding can never silently shift
/// published figures.
pub const EXPERIMENT_SEED: u64 = 0xB16_B00B5;

/// Offset-basis tweak of the second FNV digest, so two independent
/// 64-bit hashes can be concatenated into a 128-bit identity.
pub const FNV_TWEAK: u64 = 0x9e37_79b9_7f4a_7c15;

/// FNV-1a over `text`, with an offset-basis tweak so independent
/// digests of the same text can be combined collision-resistantly.
pub fn fnv1a(text: &str, tweak: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ tweak;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Platform parameters for one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Platform {
    /// Number of CPUs.
    pub cpus: usize,
    /// Number of threads.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Conflict-detection shards (DESIGN.md §11). 1 — the default, and
    /// the only value any pre-sharding scenario ever had — is the
    /// classic monolithic table. Serialised only when ≠ 1, so every
    /// historical scenario id is unchanged.
    pub shards: u32,
    /// Conflict-detection mode (DESIGN.md §13).
    /// [`Detection::Perfect`] — the default, and the only mode any
    /// pre-capacity scenario ever had — is serialised as an *absent*
    /// key, the same identity protocol as `shards`/`faults`/`arrivals`,
    /// so every historical scenario id is unchanged.
    pub detection: Detection,
}

impl Platform {
    /// The paper's platform: 16 CPUs, 64 threads.
    pub fn paper() -> Self {
        Self {
            cpus: bfgts_htm::PAPER_CPUS,
            threads: bfgts_htm::PAPER_THREADS,
            seed: EXPERIMENT_SEED,
            shards: 1,
            detection: Detection::Perfect,
        }
    }

    /// A smaller platform for quick runs and tests.
    pub fn small() -> Self {
        Self {
            cpus: bfgts_htm::SMALL_CPUS,
            threads: bfgts_htm::SMALL_THREADS,
            seed: EXPERIMENT_SEED,
            shards: 1,
            detection: Detection::Perfect,
        }
    }

    /// Replaces the conflict-detection shard count (0 is clamped to 1).
    pub fn sharded(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Selects bounded-signature conflict detection (DESIGN.md §13).
    pub fn bounded(mut self, bits: u32, hashes: u32, capacity: u32) -> Self {
        self.detection = Detection::BoundedSig {
            bits,
            hashes,
            capacity,
        };
        self
    }

    fn to_json(self) -> Json {
        let mut pairs = vec![
            ("cpus", Json::UInt(self.cpus as u64)),
            ("seed", Json::UInt(self.seed)),
            ("threads", Json::UInt(self.threads as u64)),
        ];
        if self.shards != 1 {
            pairs.push(("shards", Json::UInt(u64::from(self.shards))));
        }
        if let Detection::BoundedSig {
            bits,
            hashes,
            capacity,
        } = self.detection
        {
            pairs.push((
                "detection",
                Json::obj([
                    ("bits", Json::UInt(u64::from(bits))),
                    ("capacity", Json::UInt(u64::from(capacity))),
                    ("hashes", Json::UInt(u64::from(hashes))),
                ]),
            ));
        }
        Json::obj(pairs)
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        let uint = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("platform field '{key}' must be an unsigned integer"))
        };
        let cpus = uint("cpus")? as usize;
        let threads = uint("threads")? as usize;
        if cpus == 0 || threads == 0 {
            return Err("platform needs at least one cpu and one thread".into());
        }
        let shards = match value.get("shards") {
            None => 1,
            Some(v) => v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .filter(|&n| n >= 1)
                .ok_or("platform field 'shards' must be an integer ≥ 1 fitting u32")?,
        };
        let detection = match value.get("detection") {
            None => Detection::Perfect,
            Some(doc) => {
                let field = |key: &str| {
                    doc.get(key)
                        .and_then(Json::as_u64)
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| {
                            format!(
                                "platform detection field '{key}' must be an integer fitting u32"
                            )
                        })
                };
                let detection = Detection::BoundedSig {
                    bits: field("bits")?,
                    hashes: field("hashes")?,
                    capacity: field("capacity")?,
                };
                detection
                    .validate()
                    .map_err(|e| format!("platform detection: {e}"))?;
                detection
            }
        };
        Ok(Self {
            cpus,
            threads,
            seed: uint("seed")?,
            shards,
            detection,
        })
    }
}

/// Which cost model a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// Hardware-TM costs ([`TmRunConfig::new`]), the paper's platform.
    Htm,
    /// Software-TM costs ([`TmRunConfig::stm_like`]), the adaptation
    /// study.
    Stm,
}

impl CostKind {
    /// Stable serialisation key.
    pub fn key(self) -> &'static str {
        match self {
            CostKind::Htm => "htm",
            CostKind::Stm => "stm",
        }
    }

    /// Parses a [`CostKind::key`] back.
    pub fn from_key(key: &str) -> Option<Self> {
        match key {
            "htm" => Some(CostKind::Htm),
            "stm" => Some(CostKind::Stm),
            _ => None,
        }
    }

    /// The engine configuration this cost flavour selects.
    pub fn run_config(self, cpus: usize, threads: usize, seed: u64) -> TmRunConfig {
        match self {
            CostKind::Htm => TmRunConfig::new(cpus, threads).seed(seed),
            CostKind::Stm => TmRunConfig::stm_like(cpus, threads).seed(seed),
        }
    }
}

/// The seven contention-manager configurations of the paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ManagerKind {
    /// Reactive randomised backoff.
    Backoff,
    /// Proactive Transaction Scheduling (Blake et al.).
    Pts,
    /// Adaptive Transaction Scheduling (Yoo & Lee).
    Ats,
    /// BFGTS, all-software.
    BfgtsSw,
    /// BFGTS with the hardware predictor.
    BfgtsHw,
    /// BFGTS-HW gated by conflict pressure.
    BfgtsHwBackoff,
    /// Idealised BFGTS: free scheduling ops, perfect signatures.
    BfgtsNoOverhead,
}

impl ManagerKind {
    /// All managers in the paper's presentation order (Figure 4 legend).
    pub const ALL: [ManagerKind; 7] = [
        ManagerKind::Backoff,
        ManagerKind::Pts,
        ManagerKind::Ats,
        ManagerKind::BfgtsSw,
        ManagerKind::BfgtsHw,
        ManagerKind::BfgtsHwBackoff,
        ManagerKind::BfgtsNoOverhead,
    ];

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            ManagerKind::Backoff => "Backoff",
            ManagerKind::Pts => "PTS",
            ManagerKind::Ats => "ATS",
            ManagerKind::BfgtsSw => "BFGTS-SW",
            ManagerKind::BfgtsHw => "BFGTS-HW",
            ManagerKind::BfgtsHwBackoff => "BFGTS-HW/Backoff",
            ManagerKind::BfgtsNoOverhead => "BFGTS-NoOverhead",
        }
    }

    /// Stable serialisation key (scenario JSON).
    pub fn key(self) -> &'static str {
        match self {
            ManagerKind::Backoff => "backoff",
            ManagerKind::Pts => "pts",
            ManagerKind::Ats => "ats",
            ManagerKind::BfgtsSw => "bfgts-sw",
            ManagerKind::BfgtsHw => "bfgts-hw",
            ManagerKind::BfgtsHwBackoff => "bfgts-hw-backoff",
            ManagerKind::BfgtsNoOverhead => "bfgts-no-overhead",
        }
    }

    /// Parses a [`ManagerKind::key`] back.
    pub fn from_key(key: &str) -> Option<Self> {
        ManagerKind::ALL.into_iter().find(|k| k.key() == key)
    }

    /// Whether this manager actually consults the Bloom geometry: only
    /// the Bloom-signature BFGTS variants do (PTS carries its own fixed
    /// 2048-bit filters and the idealised variant uses perfect
    /// signatures).
    pub fn uses_bloom(self) -> bool {
        matches!(
            self,
            ManagerKind::BfgtsSw | ManagerKind::BfgtsHw | ManagerKind::BfgtsHwBackoff
        )
    }

    /// Instantiates the manager with the given Bloom filter size (BFGTS
    /// variants only; baselines ignore it except PTS, which always uses
    /// its fixed 2048-bit filters).
    pub fn build(self, bloom_bits: u32) -> Box<dyn ContentionManager> {
        self.build_with_faults(bloom_bits, None)
    }

    /// Like [`ManagerKind::build`], but arms the BFGTS variants with a
    /// manager-level fault plan (DESIGN.md §9). Baselines have no Bloom
    /// signatures or confidence table to sabotage, so they ignore the
    /// plan — which is exactly what the degradation bound compares
    /// against.
    pub fn build_with_faults(
        self,
        bloom_bits: u32,
        faults: Option<CmFaults>,
    ) -> Box<dyn ContentionManager> {
        let bfgts = |cfg: BfgtsConfig| -> Box<dyn ContentionManager> {
            match faults {
                Some(faults) => Box::new(BfgtsCm::with_faults(cfg, faults)),
                None => Box::new(BfgtsCm::new(cfg)),
            }
        };
        match self {
            ManagerKind::Backoff => Box::new(BackoffCm::default()),
            ManagerKind::Pts => Box::new(PtsCm::new(PtsConfig::default())),
            ManagerKind::Ats => Box::new(AtsCm::default()),
            ManagerKind::BfgtsSw => bfgts(BfgtsConfig::sw().bloom_bits(bloom_bits)),
            ManagerKind::BfgtsHw => bfgts(BfgtsConfig::hw().bloom_bits(bloom_bits)),
            ManagerKind::BfgtsHwBackoff => bfgts(BfgtsConfig::hw_backoff().bloom_bits(bloom_bits)),
            ManagerKind::BfgtsNoOverhead => bfgts(BfgtsConfig::no_overhead()),
        }
    }

    /// The best-performing Bloom filter size per benchmark, measured by
    /// this reproduction's Figure 6 sweep (`fig6_bloom_sweep`). As in the
    /// paper (§5.2), the headline results use each benchmark's optimal
    /// size. The paper's qualitative findings hold: overhead-sensitive
    /// benchmarks peak at 512 bits, Delaunay/Genome tolerate larger
    /// filters, and the pressure-gated hybrid is much less sensitive and
    /// prefers larger filters than plain BFGTS-HW (notably on Vacation).
    pub fn optimal_bloom_bits(self, benchmark: &str) -> u32 {
        let hybrid = matches!(self, ManagerKind::BfgtsHwBackoff);
        match (benchmark, hybrid) {
            ("Delaunay", true) => 512,
            ("Delaunay", false) => 2048,
            ("Genome", _) => 1024,
            ("Vacation", true) => 2048,
            ("Intruder", true) => 2048,
            ("Labyrinth", true) => 1024,
            _ => 512,
        }
    }
}

/// Stable serialisation key of a BFGTS flavour. Matches the fuzz
/// campaign's historical repro keys.
pub fn variant_key(variant: BfgtsVariant) -> &'static str {
    match variant {
        BfgtsVariant::Sw => "sw",
        BfgtsVariant::Hw => "hw",
        BfgtsVariant::HwBackoff => "hw_backoff",
        BfgtsVariant::NoOverhead => "no_overhead",
    }
}

/// Parses a [`variant_key`] back.
pub fn variant_from_key(key: &str) -> Option<BfgtsVariant> {
    match key {
        "sw" => Some(BfgtsVariant::Sw),
        "hw" => Some(BfgtsVariant::Hw),
        "hw_backoff" => Some(BfgtsVariant::HwBackoff),
        "no_overhead" => Some(BfgtsVariant::NoOverhead),
        _ => None,
    }
}

/// The structured BFGTS tunables the experiments vary, stored resolved
/// (no "default" sentinel values) so equal configurations hash equally.
/// This replaces the old free-form `CellManager::Custom` tags for every
/// interval/aliasing/similarity study: the parameters *are* the
/// identity, so editing a builder can no longer serve stale cache
/// entries recorded under an unchanged tag.
///
/// Tunables outside this set (confidence thresholds, pressure smoothing,
/// …) keep their paper defaults; a run that varies those is not
/// scenario-expressible and must use a non-cacheable custom cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfgtsTunables {
    /// Which flavour to run.
    pub variant: BfgtsVariant,
    /// Bloom filter size in bits; `None` means perfect (exact-set)
    /// signatures, as the idealised variant uses.
    pub bloom_bits: Option<u32>,
    /// Small-transaction similarity update interval (§5.3.2).
    pub small_tx_interval: u32,
    /// Confidence-table aliasing bound (§4.2.1), `None` = exact table.
    pub alias_slots: Option<u32>,
    /// Whether confidence updates are similarity-weighted (the paper's
    /// central idea; `false` is the ablation).
    pub similarity_weighting: bool,
}

impl BfgtsTunables {
    /// The paper-default tunables of `variant`.
    pub fn new(variant: BfgtsVariant) -> Self {
        Self::from_config(&match variant {
            BfgtsVariant::Sw => BfgtsConfig::sw(),
            BfgtsVariant::Hw => BfgtsConfig::hw(),
            BfgtsVariant::HwBackoff => BfgtsConfig::hw_backoff(),
            BfgtsVariant::NoOverhead => BfgtsConfig::no_overhead(),
        })
    }

    /// Extracts the scenario-expressible tunables from a full
    /// configuration. Lossy by design: fields outside the tunable set
    /// are assumed to hold their paper defaults.
    pub fn from_config(cfg: &BfgtsConfig) -> Self {
        Self {
            variant: cfg.variant,
            bloom_bits: cfg.bloom_bits_get(),
            small_tx_interval: cfg.small_tx_interval,
            alias_slots: cfg.alias_slots,
            similarity_weighting: cfg.similarity_weighting,
        }
    }

    /// Replaces the Bloom filter size (no-op for the idealised variant,
    /// which keeps perfect signatures — mirroring
    /// [`BfgtsConfig::bloom_bits`]).
    pub fn bloom_bits(mut self, bits: u32) -> Self {
        if self.variant != BfgtsVariant::NoOverhead {
            self.bloom_bits = Some(bits);
        }
        self
    }

    /// Replaces the small-transaction update interval.
    pub fn small_tx_interval(mut self, every: u32) -> Self {
        self.small_tx_interval = every;
        self
    }

    /// Bounds the confidence table with sTxID aliasing.
    pub fn with_alias_slots(mut self, slots: u32) -> Self {
        self.alias_slots = Some(slots);
        self
    }

    /// Disables similarity weighting (ablation).
    pub fn without_similarity_weighting(mut self) -> Self {
        self.similarity_weighting = false;
        self
    }

    /// Expands back to the full manager configuration.
    pub fn config(&self) -> BfgtsConfig {
        let mut cfg = match self.variant {
            BfgtsVariant::Sw => BfgtsConfig::sw(),
            BfgtsVariant::Hw => BfgtsConfig::hw(),
            BfgtsVariant::HwBackoff => BfgtsConfig::hw_backoff(),
            BfgtsVariant::NoOverhead => BfgtsConfig::no_overhead(),
        };
        if let Some(bits) = self.bloom_bits {
            cfg = cfg.bloom_bits(bits);
        }
        cfg = cfg.small_tx_interval(self.small_tx_interval);
        if let Some(slots) = self.alias_slots {
            cfg = cfg.with_alias_slots(slots);
        }
        if !self.similarity_weighting {
            cfg = cfg.without_similarity_weighting();
        }
        cfg
    }

    fn to_json(self) -> Json {
        let mut pairs = vec![
            ("kind", Json::Str("bfgts".into())),
            (
                "similarity_weighting",
                Json::Bool(self.similarity_weighting),
            ),
            (
                "small_tx_interval",
                Json::UInt(u64::from(self.small_tx_interval)),
            ),
            ("variant", Json::Str(variant_key(self.variant).into())),
        ];
        if let Some(bits) = self.bloom_bits {
            pairs.push(("bloom_bits", Json::UInt(u64::from(bits))));
        }
        if let Some(slots) = self.alias_slots {
            pairs.push(("alias_slots", Json::UInt(u64::from(slots))));
        }
        Json::obj(pairs)
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        let variant = value
            .get("variant")
            .and_then(Json::as_str)
            .and_then(variant_from_key)
            .ok_or("bfgts manager needs a 'variant' of sw|hw|hw_backoff|no_overhead")?;
        let narrow = |key: &str| -> Result<Option<u32>, String> {
            match value.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .map(Some)
                    .ok_or_else(|| format!("manager field '{key}' must fit u32")),
            }
        };
        Ok(Self {
            variant,
            bloom_bits: narrow("bloom_bits")?,
            small_tx_interval: narrow("small_tx_interval")?
                .ok_or("bfgts manager needs a 'small_tx_interval' integer")?,
            alias_slots: narrow("alias_slots")?,
            similarity_weighting: match value.get("similarity_weighting") {
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err("'similarity_weighting' must be a boolean".into()),
                None => return Err("bfgts manager needs a 'similarity_weighting' boolean".into()),
            },
        })
    }
}

/// The contention-manager half of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagerSpec {
    /// The serial baseline: the same total work on 1 CPU / 1 thread
    /// under plain Backoff (no conflicts are possible, so the manager
    /// choice is irrelevant and adds zero overhead).
    Serial,
    /// A roster manager; `bloom_bits: None` selects the workload's
    /// measured-optimal size at execution time.
    Kind {
        /// Which roster manager.
        kind: ManagerKind,
        /// Explicit Bloom geometry (the Figure 6 sweep), or `None` for
        /// the per-benchmark optimum.
        bloom_bits: Option<u32>,
    },
    /// A BFGTS flavour with explicit tunables (interval sweep, aliasing
    /// and similarity ablations, fuzz campaign cells).
    Bfgts(BfgtsTunables),
    /// The Polka-style investment baseline (extended roster).
    Polka,
    /// The stall-on-abort baseline (extended roster).
    Stall,
    /// The window-based randomized greedy baseline (extended roster,
    /// arXiv:1002.4182). `None` tunables select the manager defaults
    /// and stay absent from the canonical JSON, so pre-window scenario
    /// ids are untouched by this schema extension.
    WindowGreedy {
        /// Commits per execution window, or `None` for the default.
        window_size: Option<u32>,
        /// Losing-side backoff quantum in cycles, or `None` for the
        /// default.
        base_delay: Option<u32>,
    },
    /// The balanced-workload greedy baseline (extended roster,
    /// arXiv:1009.0056): remaining-work hints win conflicts, windows
    /// pace the randomized tie-break.
    BalancedGreedy {
        /// Commits per execution window, or `None` for the default.
        window_size: Option<u32>,
    },
    /// An opaque, closure-built manager known only by a tag. The one
    /// escape hatch left for configurations the structured variants
    /// cannot express — it cannot be rebuilt from JSON and must never
    /// be served from a content-keyed cache.
    Custom {
        /// Free-form description of the configuration.
        tag: String,
    },
}

impl ManagerSpec {
    /// Whether results under this manager may be persisted in (and
    /// served from) the content-addressed cell cache. Only closure-built
    /// custom cells are excluded: their tag is not tied to the closure's
    /// actual configuration, so a cached summary could silently go stale
    /// when the builder changes.
    pub fn cacheable(&self) -> bool {
        !matches!(self, ManagerSpec::Custom { .. })
    }

    /// Whether the manager can be instantiated from this description
    /// alone (everything except [`ManagerSpec::Custom`]).
    pub fn executable(&self) -> bool {
        !matches!(self, ManagerSpec::Custom { .. })
    }

    /// A human-readable label for result tables and error messages.
    pub fn label(&self) -> String {
        match self {
            ManagerSpec::Serial => "Serial".to_string(),
            ManagerSpec::Kind { kind, bloom_bits } => match bloom_bits {
                Some(bits) => format!("{} ({bits}b)", kind.label()),
                None => kind.label().to_string(),
            },
            ManagerSpec::Bfgts(tunables) => tunables.variant.label().to_string(),
            ManagerSpec::Polka => "Polka".to_string(),
            ManagerSpec::Stall => "Stall".to_string(),
            ManagerSpec::WindowGreedy { window_size, .. } => match window_size {
                Some(w) => format!("WindowGreedy (w{w})"),
                None => "WindowGreedy".to_string(),
            },
            ManagerSpec::BalancedGreedy { window_size } => match window_size {
                Some(w) => format!("BalancedGreedy (w{w})"),
                None => "BalancedGreedy".to_string(),
            },
            ManagerSpec::Custom { tag } => format!("custom:{tag}"),
        }
    }

    /// Instantiates the described manager, or `None` for a custom cell
    /// (whose builder lives outside the scenario). `workload_name`
    /// selects the measured-optimal Bloom geometry when none is pinned;
    /// `faults` arms BFGTS variants with manager-level fault injection.
    pub fn build(
        &self,
        workload_name: &str,
        faults: Option<CmFaults>,
    ) -> Option<Box<dyn ContentionManager>> {
        match self {
            ManagerSpec::Serial => Some(Box::new(BackoffCm::default())),
            ManagerSpec::Kind { kind, bloom_bits } => {
                let bits = bloom_bits.unwrap_or_else(|| kind.optimal_bloom_bits(workload_name));
                Some(kind.build_with_faults(bits, faults))
            }
            ManagerSpec::Bfgts(tunables) => Some(match faults {
                Some(faults) => Box::new(BfgtsCm::with_faults(tunables.config(), faults)),
                None => Box::new(BfgtsCm::new(tunables.config())),
            }),
            ManagerSpec::Polka => Some(Box::new(PolkaCm::default())),
            ManagerSpec::Stall => Some(Box::new(StallCm::default())),
            ManagerSpec::WindowGreedy {
                window_size,
                base_delay,
            } => {
                let defaults = WindowGreedyConfig::default();
                Some(Box::new(WindowGreedyCm::new(WindowGreedyConfig {
                    window_size: window_size.unwrap_or(defaults.window_size),
                    base_delay: base_delay.map_or(defaults.base_delay, u64::from),
                })))
            }
            ManagerSpec::BalancedGreedy { window_size } => {
                let defaults = BalancedGreedyConfig::default();
                Some(Box::new(BalancedGreedyCm::new(BalancedGreedyConfig {
                    window_size: window_size.unwrap_or(defaults.window_size),
                    base_delay: defaults.base_delay,
                })))
            }
            ManagerSpec::Custom { .. } => None,
        }
    }

    fn to_json(&self) -> Json {
        match self {
            ManagerSpec::Serial => Json::obj([("kind", Json::Str("serial".into()))]),
            ManagerSpec::Kind { kind, bloom_bits } => {
                let mut pairs = vec![
                    ("kind", Json::Str("roster".into())),
                    ("manager", Json::Str(kind.key().into())),
                ];
                if let Some(bits) = bloom_bits {
                    pairs.push(("bloom_bits", Json::UInt(u64::from(*bits))));
                }
                Json::obj(pairs)
            }
            ManagerSpec::Bfgts(tunables) => tunables.to_json(),
            ManagerSpec::Polka => Json::obj([("kind", Json::Str("polka".into()))]),
            ManagerSpec::Stall => Json::obj([("kind", Json::Str("stall".into()))]),
            ManagerSpec::WindowGreedy {
                window_size,
                base_delay,
            } => {
                // Default tunables serialise away (absent-key protocol):
                // a defaults-only spec prints as {"kind":"window_greedy"}.
                let mut pairs = vec![("kind", Json::Str("window_greedy".into()))];
                if let Some(w) = window_size {
                    pairs.push(("window_size", Json::UInt(u64::from(*w))));
                }
                if let Some(d) = base_delay {
                    pairs.push(("base_delay", Json::UInt(u64::from(*d))));
                }
                Json::obj(pairs)
            }
            ManagerSpec::BalancedGreedy { window_size } => {
                let mut pairs = vec![("kind", Json::Str("balanced_greedy".into()))];
                if let Some(w) = window_size {
                    pairs.push(("window_size", Json::UInt(u64::from(*w))));
                }
                Json::obj(pairs)
            }
            ManagerSpec::Custom { tag } => Json::obj([
                ("kind", Json::Str("custom".into())),
                ("tag", Json::Str(tag.clone())),
            ]),
        }
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        match value.get("kind").and_then(Json::as_str) {
            Some("serial") => Ok(ManagerSpec::Serial),
            Some("roster") => {
                let kind = value
                    .get("manager")
                    .and_then(Json::as_str)
                    .and_then(ManagerKind::from_key)
                    .ok_or("roster manager needs a known 'manager' key")?;
                let bloom_bits = match value.get("bloom_bits") {
                    None => None,
                    Some(v) => Some(
                        v.as_u64()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or("'bloom_bits' must fit u32")?,
                    ),
                };
                Ok(ManagerSpec::Kind { kind, bloom_bits })
            }
            Some("bfgts") => Ok(ManagerSpec::Bfgts(BfgtsTunables::from_json(value)?)),
            Some("polka") => Ok(ManagerSpec::Polka),
            Some("stall") => Ok(ManagerSpec::Stall),
            Some("window_greedy") => Ok(ManagerSpec::WindowGreedy {
                window_size: Self::opt_u32(value, "window_size")?,
                base_delay: Self::opt_u32(value, "base_delay")?,
            }),
            Some("balanced_greedy") => Ok(ManagerSpec::BalancedGreedy {
                window_size: Self::opt_u32(value, "window_size")?,
            }),
            Some("custom") => Ok(ManagerSpec::Custom {
                tag: value
                    .get("tag")
                    .and_then(Json::as_str)
                    .ok_or("custom manager needs a 'tag' string")?
                    .to_string(),
            }),
            Some(other) => Err(format!("unknown manager kind '{other}'")),
            None => Err("manager is missing a 'kind' string".into()),
        }
    }

    /// An optional u32 tunable under the absent-key protocol: a missing
    /// key means "use the manager default" and never re-serialises.
    fn opt_u32(value: &Json, key: &str) -> Result<Option<u32>, String> {
        match value.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(Some)
                .ok_or_else(|| format!("manager field '{key}' must fit u32")),
        }
    }
}

/// The workload half of a scenario. Named presets and adversarial
/// generators serialise by `(name, total_txs)`; anything else carries
/// its full class mix inline.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// A STAMP-like preset ([`presets::by_name`]), possibly rescaled.
    Preset {
        /// Canonical preset name (e.g. `"Kmeans"`).
        name: String,
        /// Total dynamic transactions across all threads.
        total_txs: u64,
    },
    /// A named adversarial generator ([`AdversarialSpec::all`]),
    /// possibly rescaled.
    Adversarial {
        /// Generator name (e.g. `"adv-hotspot-skew"`).
        name: String,
        /// Total dynamic transactions across all threads.
        total_txs: u64,
    },
    /// A fully inline benchmark: the class mix travels with the
    /// scenario.
    Inline {
        /// Display name of the workload.
        name: String,
        /// Total dynamic transactions across all threads.
        total_txs: u64,
        /// The static transactions.
        classes: Vec<TxClass>,
    },
}

/// A workload resolved back into a runnable specification.
#[derive(Debug, Clone)]
pub enum ResolvedWorkload {
    /// A benchmark spec ([`BenchmarkSpec::sources`]).
    Benchmark(BenchmarkSpec),
    /// An adversarial generator ([`AdversarialSpec::sources`]).
    Adversarial(AdversarialSpec),
}

impl ResolvedWorkload {
    /// The workload's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ResolvedWorkload::Benchmark(spec) => spec.name,
            ResolvedWorkload::Adversarial(spec) => spec.name,
        }
    }
}

/// Interns an inline workload's name: [`BenchmarkSpec::name`] is
/// `&'static str`, so JSON-borne names are leaked once per distinct
/// string and reused afterwards.
fn intern_name(name: &str) -> &'static str {
    static NAMES: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new());
    let mut names = NAMES.lock().expect("name interner poisoned");
    if let Some(found) = names.iter().find(|n| **n == name) {
        return found;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    names.push(leaked);
    leaked
}

fn check_class(class: &TxClass) -> Result<(), String> {
    if class.size() == 0 {
        return Err(format!(
            "inline class sTx{} performs no accesses",
            class.stx
        ));
    }
    if class.shared_picks > 0 && class.shared_pool.is_none() {
        return Err(format!(
            "inline class sTx{} draws from a missing shared pool",
            class.stx
        ));
    }
    if class.shared_picks > 0 && class.shared_pool.is_some_and(|pool| pool.lines == 0) {
        return Err(format!(
            "inline class sTx{} draws from an empty shared pool",
            class.stx
        ));
    }
    if class.random_picks > 0 {
        let lines = match class.random_region {
            RandomRegion::Shared(region) => region.lines,
            RandomRegion::PerThread { lines } => lines,
        };
        if lines == 0 {
            return Err(format!(
                "inline class sTx{} draws random picks from an empty region",
                class.stx
            ));
        }
    }
    if !(0.0..=1.0).contains(&class.write_frac) {
        return Err(format!(
            "inline class sTx{}: write_frac out of range",
            class.stx
        ));
    }
    if class.pre_work.0 > class.pre_work.1 {
        return Err(format!(
            "inline class sTx{}: pre_work range inverted",
            class.stx
        ));
    }
    Ok(())
}

impl WorkloadSpec {
    /// Describes `spec`: a preset reference when the name and class mix
    /// match a known preset exactly, otherwise the full inline form.
    pub fn from_benchmark(spec: &BenchmarkSpec) -> Self {
        if let Some(preset) = presets::by_name(spec.name) {
            if preset.name == spec.name && preset.classes[..] == spec.classes[..] {
                return WorkloadSpec::Preset {
                    name: spec.name.to_string(),
                    total_txs: spec.total_txs,
                };
            }
        }
        WorkloadSpec::Inline {
            name: spec.name.to_string(),
            total_txs: spec.total_txs,
            classes: spec.classes.to_vec(),
        }
    }

    /// Describes `spec` by generator name. The name must be one of
    /// [`AdversarialSpec::all`] for the description to resolve again.
    pub fn from_adversarial(spec: &AdversarialSpec) -> Self {
        WorkloadSpec::Adversarial {
            name: spec.name.to_string(),
            total_txs: spec.total_txs,
        }
    }

    /// The workload's display name.
    pub fn name(&self) -> &str {
        match self {
            WorkloadSpec::Preset { name, .. }
            | WorkloadSpec::Adversarial { name, .. }
            | WorkloadSpec::Inline { name, .. } => name,
        }
    }

    /// Total dynamic transactions across all threads.
    pub fn total_txs(&self) -> u64 {
        match self {
            WorkloadSpec::Preset { total_txs, .. }
            | WorkloadSpec::Adversarial { total_txs, .. }
            | WorkloadSpec::Inline { total_txs, .. } => *total_txs,
        }
    }

    /// Resolves the description back into a runnable workload.
    pub fn resolve(&self) -> Result<ResolvedWorkload, String> {
        match self {
            WorkloadSpec::Preset { name, total_txs } => {
                let mut spec = presets::by_name(name)
                    .ok_or_else(|| format!("unknown benchmark preset '{name}'"))?;
                spec.total_txs = *total_txs;
                Ok(ResolvedWorkload::Benchmark(spec))
            }
            WorkloadSpec::Adversarial { name, total_txs } => {
                let mut spec = AdversarialSpec::all()
                    .into_iter()
                    .find(|w| w.name == name)
                    .ok_or_else(|| format!("unknown adversarial generator '{name}'"))?;
                spec.total_txs = *total_txs;
                Ok(ResolvedWorkload::Adversarial(spec))
            }
            WorkloadSpec::Inline {
                name,
                total_txs,
                classes,
            } => {
                if classes.is_empty() {
                    return Err(format!("inline workload '{name}' has no classes"));
                }
                for class in classes {
                    check_class(class)?;
                }
                Ok(ResolvedWorkload::Benchmark(BenchmarkSpec {
                    name: intern_name(name),
                    classes: Arc::from(classes.clone()),
                    total_txs: *total_txs,
                    expected: ExpectedProfile {
                        similarity: Vec::new(),
                        conflict_rows: Vec::new(),
                        backoff_contention: 0.0,
                    },
                }))
            }
        }
    }

    fn to_json(&self) -> Json {
        match self {
            WorkloadSpec::Preset { name, total_txs } => Json::obj([
                ("kind", Json::Str("preset".into())),
                ("name", Json::Str(name.clone())),
                ("total_txs", Json::UInt(*total_txs)),
            ]),
            WorkloadSpec::Adversarial { name, total_txs } => Json::obj([
                ("kind", Json::Str("adversarial".into())),
                ("name", Json::Str(name.clone())),
                ("total_txs", Json::UInt(*total_txs)),
            ]),
            WorkloadSpec::Inline {
                name,
                total_txs,
                classes,
            } => Json::obj([
                (
                    "classes",
                    Json::Arr(classes.iter().map(class_to_json).collect()),
                ),
                ("kind", Json::Str("inline".into())),
                ("name", Json::Str(name.clone())),
                ("total_txs", Json::UInt(*total_txs)),
            ]),
        }
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("workload needs a 'name' string")?
            .to_string();
        let total_txs = value
            .get("total_txs")
            .and_then(Json::as_u64)
            .ok_or("workload needs a 'total_txs' integer")?;
        match value.get("kind").and_then(Json::as_str) {
            Some("preset") => Ok(WorkloadSpec::Preset { name, total_txs }),
            Some("adversarial") => Ok(WorkloadSpec::Adversarial { name, total_txs }),
            Some("inline") => Ok(WorkloadSpec::Inline {
                name,
                total_txs,
                classes: value
                    .get("classes")
                    .and_then(Json::as_arr)
                    .ok_or("inline workload needs a 'classes' array")?
                    .iter()
                    .map(class_from_json)
                    .collect::<Result<_, _>>()?,
            }),
            Some(other) => Err(format!("unknown workload kind '{other}'")),
            None => Err("workload is missing a 'kind' string".into()),
        }
    }
}

fn region_to_json(region: Region) -> Json {
    Json::obj([
        ("base", Json::UInt(region.base)),
        ("lines", Json::UInt(region.lines)),
    ])
}

fn region_from_json(value: &Json) -> Result<Region, String> {
    let uint = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("region field '{key}' must be an unsigned integer"))
    };
    let lines = uint("lines")?;
    if lines == 0 {
        return Err("region must contain at least one line".into());
    }
    Ok(Region::new(uint("base")?, lines))
}

fn class_to_json(class: &TxClass) -> Json {
    let mut pairs = vec![
        (
            "pre_work",
            Json::Arr(vec![
                Json::UInt(class.pre_work.0),
                Json::UInt(class.pre_work.1),
            ]),
        ),
        ("private_hot", Json::UInt(class.private_hot as u64)),
        ("random_picks", Json::UInt(class.random_picks as u64)),
        (
            "random_region",
            match class.random_region {
                RandomRegion::Shared(region) => Json::obj([
                    ("base", Json::UInt(region.base)),
                    ("kind", Json::Str("shared".into())),
                    ("lines", Json::UInt(region.lines)),
                ]),
                RandomRegion::PerThread { lines } => Json::obj([
                    ("kind", Json::Str("per_thread".into())),
                    ("lines", Json::UInt(lines)),
                ]),
            },
        ),
        ("shared_picks", Json::UInt(class.shared_picks as u64)),
        ("shared_writes", Json::Bool(class.shared_writes)),
        ("stx", Json::UInt(u64::from(class.stx))),
        // f64s as bit patterns: the scenario hash is over the JSON text,
        // so the text must be byte-stable.
        ("weight_bits", Json::UInt(class.weight.to_bits())),
        ("write_frac_bits", Json::UInt(class.write_frac.to_bits())),
    ];
    if let Some(pool) = class.shared_pool {
        pairs.push(("shared_pool", region_to_json(pool)));
    }
    Json::obj(pairs)
}

fn class_from_json(value: &Json) -> Result<TxClass, String> {
    let uint = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("class field '{key}' must be an unsigned integer"))
    };
    let pre_work = value
        .get("pre_work")
        .and_then(Json::as_arr)
        .filter(|arr| arr.len() == 2)
        .ok_or("class field 'pre_work' must be a [lo, hi] pair")?;
    let random_region = value
        .get("random_region")
        .ok_or("class is missing 'random_region'")?;
    let random_region = match random_region.get("kind").and_then(Json::as_str) {
        Some("shared") => RandomRegion::Shared(region_from_json(random_region)?),
        Some("per_thread") => RandomRegion::PerThread {
            lines: random_region
                .get("lines")
                .and_then(Json::as_u64)
                .ok_or("per_thread region needs a 'lines' integer")?,
        },
        _ => return Err("random_region needs a kind of shared|per_thread".into()),
    };
    Ok(TxClass {
        stx: u32::try_from(uint("stx")?).map_err(|_| "class field 'stx' exceeds u32")?,
        weight: f64::from_bits(uint("weight_bits")?),
        private_hot: uint("private_hot")? as usize,
        shared_picks: uint("shared_picks")? as usize,
        shared_pool: match value.get("shared_pool") {
            None => None,
            Some(pool) => Some(region_from_json(pool)?),
        },
        shared_writes: matches!(value.get("shared_writes"), Some(Json::Bool(true))),
        random_picks: uint("random_picks")? as usize,
        random_region,
        write_frac: f64::from_bits(uint("write_frac_bits")?),
        pre_work: (
            pre_work[0]
                .as_u64()
                .ok_or("pre_work entries must be unsigned integers")?,
            pre_work[1]
                .as_u64()
                .ok_or("pre_work entries must be unsigned integers")?,
        ),
    })
}

/// Serialises a fault to the repro/scenario JSON form.
pub fn fault_to_json(fault: &Fault) -> Json {
    match *fault {
        Fault::CostPerturb { max_percent } => Json::obj([
            ("kind", Json::Str("cost_perturb".into())),
            ("max_percent", Json::UInt(u64::from(max_percent))),
        ]),
        Fault::BloomCorrupt { rate_pct, bits } => Json::obj([
            ("kind", Json::Str("bloom_corrupt".into())),
            ("rate_pct", Json::UInt(u64::from(rate_pct))),
            ("bits", Json::UInt(u64::from(bits))),
        ]),
        Fault::ConfPoison { period, saturate } => Json::obj([
            ("kind", Json::Str("conf_poison".into())),
            ("period", Json::UInt(period)),
            ("saturate", Json::Bool(saturate)),
        ]),
    }
}

/// Parses a fault from its JSON form.
pub fn fault_from_json(value: &Json) -> Result<Fault, String> {
    let uint = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("fault field '{key}' must be an unsigned integer"))
    };
    let narrow = |key: &str| {
        u32::try_from(uint(key)?).map_err(|_| format!("fault field '{key}' exceeds u32"))
    };
    match value.get("kind").and_then(Json::as_str) {
        Some("cost_perturb") => Ok(Fault::CostPerturb {
            max_percent: narrow("max_percent")?,
        }),
        Some("bloom_corrupt") => Ok(Fault::BloomCorrupt {
            rate_pct: narrow("rate_pct")?,
            bits: narrow("bits")?,
        }),
        Some("conf_poison") => Ok(Fault::ConfPoison {
            period: uint("period")?,
            saturate: matches!(value.get("saturate"), Some(Json::Bool(true))),
        }),
        Some(other) => Err(format!("unknown fault kind '{other}'")),
        None => Err("fault is missing a 'kind' string".into()),
    }
}

/// Serialises a fault plan to the repro/scenario JSON form.
pub fn plan_to_json(plan: &FaultPlan) -> Json {
    Json::obj([
        ("seed", Json::UInt(plan.seed)),
        (
            "faults",
            Json::Arr(plan.faults.iter().map(fault_to_json).collect()),
        ),
    ])
}

/// Parses a fault plan from its JSON form.
pub fn plan_from_json(value: &Json) -> Result<FaultPlan, String> {
    let seed = value
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("plan is missing a 'seed' integer")?;
    let faults = value
        .get("faults")
        .and_then(Json::as_arr)
        .ok_or("plan is missing a 'faults' array")?
        .iter()
        .map(fault_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FaultPlan { seed, faults })
}

/// Serialises one arrival process to its scenario JSON form (a
/// `"kind"`-discriminated object, like faults and workloads).
pub fn process_to_json(process: &ArrivalProcess) -> Json {
    match *process {
        ArrivalProcess::Poisson { mean_gap } => Json::obj([
            ("kind", Json::Str("poisson".into())),
            ("mean_gap", Json::UInt(mean_gap)),
        ]),
        ArrivalProcess::Bursty {
            burst,
            gap_in,
            gap_out,
        } => Json::obj([
            ("burst", Json::UInt(burst as u64)),
            ("gap_in", Json::UInt(gap_in)),
            ("gap_out", Json::UInt(gap_out)),
            ("kind", Json::Str("bursty".into())),
        ]),
        ArrivalProcess::Diurnal {
            period,
            peak_gap,
            trough_gap,
        } => Json::obj([
            ("kind", Json::Str("diurnal".into())),
            ("peak_gap", Json::UInt(peak_gap)),
            ("period", Json::UInt(period)),
            ("trough_gap", Json::UInt(trough_gap)),
        ]),
    }
}

/// Parses one arrival process, mirroring [`ArrivalProcess::validate`] as
/// recoverable errors (scenario files are user input; a bad document
/// must not abort the process).
pub fn process_from_json(value: &Json) -> Result<ArrivalProcess, String> {
    let uint = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("arrival process is missing a '{key}' integer"))
    };
    let process = match value.get("kind").and_then(Json::as_str) {
        Some("poisson") => ArrivalProcess::Poisson {
            mean_gap: uint("mean_gap")?,
        },
        Some("bursty") => ArrivalProcess::Bursty {
            burst: u32::try_from(uint("burst")?).map_err(|_| "bursty 'burst' exceeds u32")?,
            gap_in: uint("gap_in")?,
            gap_out: uint("gap_out")?,
        },
        Some("diurnal") => ArrivalProcess::Diurnal {
            period: uint("period")?,
            peak_gap: uint("peak_gap")?,
            trough_gap: uint("trough_gap")?,
        },
        Some(other) => return Err(format!("unknown arrival process kind '{other}'")),
        None => return Err("arrival process is missing a 'kind' string".into()),
    };
    // Mirror ArrivalProcess::validate (which panics on programmer error)
    // as Err for data parsed from disk.
    match process {
        ArrivalProcess::Poisson { mean_gap: 0 } => {
            return Err("poisson 'mean_gap' must be >= 1".into())
        }
        ArrivalProcess::Bursty { burst, gap_out, .. } if burst == 0 || gap_out == 0 => {
            return Err("bursty 'burst' and 'gap_out' must be >= 1".into())
        }
        ArrivalProcess::Diurnal {
            period, peak_gap, ..
        } if period == 0 || peak_gap == 0 => {
            return Err("diurnal 'period' and 'peak_gap' must be >= 1".into())
        }
        ArrivalProcess::Diurnal {
            peak_gap,
            trough_gap,
            ..
        } if trough_gap < peak_gap => {
            return Err("diurnal 'trough_gap' must be >= 'peak_gap'".into())
        }
        _ => {}
    }
    Ok(process)
}

/// Serialises an arrival spec (the open-system half of a scenario).
pub fn arrivals_to_json(spec: &ArrivalSpec) -> Json {
    Json::obj([
        (
            "per_stx",
            Json::Arr(
                spec.per_stx
                    .iter()
                    .map(|(stx, process)| {
                        Json::Arr(vec![Json::UInt(*stx as u64), process_to_json(process)])
                    })
                    .collect(),
            ),
        ),
        ("process", process_to_json(&spec.process)),
    ])
}

/// Parses an arrival spec, enforcing the canonical strictly-increasing
/// override order [`ArrivalSpec::validate`] asserts.
pub fn arrivals_from_json(value: &Json) -> Result<ArrivalSpec, String> {
    let process = process_from_json(
        value
            .get("process")
            .ok_or("arrivals are missing a 'process' object")?,
    )?;
    let per_stx = value
        .get("per_stx")
        .and_then(Json::as_arr)
        .ok_or("arrivals are missing a 'per_stx' array")?
        .iter()
        .map(|item| {
            let pair = item
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or("each arrivals override must be a [stx, process] pair".to_string())?;
            let stx = pair[0]
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or("arrival override stx must be a u32".to_string())?;
            Ok((stx, process_from_json(&pair[1])?))
        })
        .collect::<Result<Vec<_>, String>>()?;
    for window in per_stx.windows(2) {
        if window[0].0 >= window[1].0 {
            return Err("arrival overrides must be strictly increasing by stx".into());
        }
    }
    Ok(ArrivalSpec { process, per_stx })
}

fn trace_to_json(mode: TraceMode) -> Json {
    match mode {
        TraceMode::Off => Json::Str("off".into()),
        TraceMode::Full => Json::Str("full".into()),
        TraceMode::Ring(cap) => Json::obj([("ring", Json::UInt(cap as u64))]),
    }
}

fn trace_from_json(value: &Json) -> Result<TraceMode, String> {
    match value {
        Json::Str(s) if s == "off" => Ok(TraceMode::Off),
        Json::Str(s) if s == "full" => Ok(TraceMode::Full),
        obj @ Json::Obj(_) => {
            let cap = obj
                .get("ring")
                .and_then(Json::as_u64)
                .ok_or("ring trace mode needs a 'ring' integer")?;
            // Matches TraceSink::new, which rejects zero-capacity rings.
            if cap == 0 {
                return Err("ring trace mode needs a capacity >= 1 (use \"off\")".into());
            }
            Ok(TraceMode::Ring(cap as usize))
        }
        _ => Err("trace mode must be \"off\", \"full\" or {\"ring\": N}".into()),
    }
}

/// One run, described completely: platform, cost flavour, workload,
/// manager, optional fault plan and trace mode. The canonical JSON text
/// of the [canonicalised](Scenario::canonical) value is what the content
/// hash — the run's identity — commits to.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// CPUs / threads / master seed.
    pub platform: Platform,
    /// Cost-model flavour.
    pub costs: CostKind,
    /// The workload.
    pub workload: WorkloadSpec,
    /// The contention-manager configuration.
    pub manager: ManagerSpec,
    /// Optional fault-injection plan (DESIGN.md §9). Serial baselines
    /// always run clean.
    pub faults: Option<FaultPlan>,
    /// Optional open-system arrival spec (DESIGN.md §12). `None` is the
    /// closed (batch) system every scenario before this field described;
    /// like `faults`, the key is serialised only when present, so every
    /// historical scenario id is unchanged.
    pub arrivals: Option<ArrivalSpec>,
    /// The event-recording mode the run is meant to execute with.
    /// Descriptive for summary-producing paths (which choose their own
    /// recording), binding for trace/fingerprint paths.
    pub trace: TraceMode,
}

impl Scenario {
    /// A clean HTM scenario with no tracing.
    pub fn new(workload: WorkloadSpec, manager: ManagerSpec, platform: Platform) -> Self {
        Self {
            platform,
            costs: CostKind::Htm,
            workload,
            manager,
            faults: None,
            arrivals: None,
            trace: TraceMode::Off,
        }
    }

    /// The canonical form equal runs map to: serial baselines pin the
    /// 1×1 unsharded platform shape and drop fault plans (they always
    /// run clean),
    /// empty fault plans normalise to none, Bloom geometry is dropped
    /// from managers that never consult it, and BFGTS tunables round-trip
    /// through the full configuration (so e.g. an explicit Bloom size on
    /// the perfect-signature variant cannot mint a second identity for
    /// the same run). Arrival specs pass through untouched — unlike
    /// faults they change *what* runs, not how it is perturbed, so even
    /// a serial baseline keeps them.
    pub fn canonical(mut self) -> Self {
        if let ManagerSpec::Kind { kind, bloom_bits } = &mut self.manager {
            if !kind.uses_bloom() {
                *bloom_bits = None;
            }
        }
        if let ManagerSpec::Bfgts(tunables) = &self.manager {
            self.manager = ManagerSpec::Bfgts(BfgtsTunables::from_config(&tunables.config()));
        }
        if matches!(self.manager, ManagerSpec::Serial) {
            self.platform.cpus = 1;
            self.platform.threads = 1;
            // A serial execution has no conflict detection to shard, so
            // the shard count cannot change its outcome. Detection is
            // pinned to Perfect for the same reason faults are dropped:
            // the serial baseline is the *ideal* single-CPU reference
            // every speedup divides by, so it never pays capacity
            // aborts (the runner's serial path ignores both knobs).
            self.platform.shards = 1;
            self.platform.detection = Detection::Perfect;
            self.faults = None;
        }
        if self.faults.as_ref().is_some_and(FaultPlan::is_empty) {
            self.faults = None;
        }
        self
    }

    /// Serialises to the canonical scenario JSON document.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("costs", Json::Str(self.costs.key().into())),
            ("manager", self.manager.to_json()),
            ("platform", self.platform.to_json()),
            ("trace", trace_to_json(self.trace)),
            ("version", Json::UInt(SCENARIO_VERSION)),
            ("workload", self.workload.to_json()),
        ];
        if let Some(plan) = &self.faults {
            pairs.push(("faults", plan_to_json(plan)));
        }
        if let Some(spec) = &self.arrivals {
            pairs.push(("arrivals", arrivals_to_json(spec)));
        }
        Json::obj(pairs)
    }

    /// Parses a scenario from its JSON document.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let version = value
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("scenario is missing a 'version' integer")?;
        if version != SCENARIO_VERSION {
            return Err(format!(
                "scenario version {version} unsupported (expected {SCENARIO_VERSION})"
            ));
        }
        Ok(Self {
            platform: Platform::from_json(
                value
                    .get("platform")
                    .ok_or("scenario is missing 'platform'")?,
            )?,
            costs: value
                .get("costs")
                .and_then(Json::as_str)
                .and_then(CostKind::from_key)
                .ok_or("scenario needs a 'costs' of htm|stm")?,
            workload: WorkloadSpec::from_json(
                value
                    .get("workload")
                    .ok_or("scenario is missing 'workload'")?,
            )?,
            manager: ManagerSpec::from_json(
                value
                    .get("manager")
                    .ok_or("scenario is missing 'manager'")?,
            )?,
            faults: match value.get("faults") {
                None => None,
                Some(plan) => Some(plan_from_json(plan)?),
            },
            arrivals: match value.get("arrivals") {
                None => None,
                Some(spec) => Some(arrivals_from_json(spec)?),
            },
            trace: trace_from_json(value.get("trace").ok_or("scenario is missing 'trace'")?)?,
        })
    }

    /// The two FNV-1a digests over the canonical JSON text of the
    /// canonicalised scenario.
    pub fn content_hash(&self) -> (u64, u64) {
        let text = self.clone().canonical().to_json().to_string();
        (fnv1a(&text, 0), fnv1a(&text, FNV_TWEAK))
    }

    /// The run identity: both content-hash digests as 32 hex digits.
    /// Equal ids mean equal canonicalised descriptors — this string is
    /// what cache keys, repro files and trace headers agree on.
    pub fn id(&self) -> String {
        let (a, b) = self.content_hash();
        format!("{a:016x}{b:016x}")
    }
}

/// Serialises a scenario list as a JSON array (the `--emit` format).
pub fn scenarios_to_json(scenarios: &[Scenario]) -> Json {
    Json::Arr(scenarios.iter().map(Scenario::to_json).collect())
}

/// Parses a scenario file: either a single scenario object or an array
/// of them.
pub fn scenarios_from_json(value: &Json) -> Result<Vec<Scenario>, String> {
    match value {
        Json::Arr(items) => items.iter().map(Scenario::from_json).collect(),
        obj @ Json::Obj(_) => Ok(vec![Scenario::from_json(obj)?]),
        _ => Err("a scenario document must be a JSON object or an array of objects".into()),
    }
}

/// Parses a scenario file from raw text.
pub fn scenarios_from_str(text: &str) -> Result<Vec<Scenario>, String> {
    scenarios_from_json(&Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario::new(
            WorkloadSpec::Preset {
                name: "Kmeans".into(),
                total_txs: 400,
            },
            ManagerSpec::Kind {
                kind: ManagerKind::BfgtsHw,
                bloom_bits: None,
            },
            Platform::small(),
        )
    }

    #[test]
    fn json_round_trips_to_a_fixed_point() {
        let mut scenarios = vec![
            sample(),
            Scenario::new(
                WorkloadSpec::Adversarial {
                    name: "adv-hotspot-skew".into(),
                    total_txs: 200,
                },
                ManagerSpec::Bfgts(BfgtsTunables::new(BfgtsVariant::HwBackoff).bloom_bits(512)),
                Platform::paper(),
            ),
            Scenario::new(
                WorkloadSpec::from_benchmark(&presets::kmeans().scaled(0.01)),
                ManagerSpec::Serial,
                Platform::small(),
            ),
        ];
        scenarios[1].faults = Some(FaultPlan::randomized(7));
        scenarios[1].trace = TraceMode::Full;
        for scenario in &scenarios {
            let text = scenario.to_json().to_string();
            let parsed = Scenario::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(&parsed, scenario);
            assert_eq!(parsed.to_json().to_string(), text, "fixed point");
            assert_eq!(parsed.id(), scenario.id());
        }
    }

    #[test]
    fn inline_workloads_round_trip_and_resolve() {
        let spec = {
            let mut spec = presets::kmeans().scaled(0.01);
            spec.name = "Kmeans-modified";
            spec
        };
        let workload = WorkloadSpec::from_benchmark(&spec);
        assert!(matches!(workload, WorkloadSpec::Inline { .. }));
        let scenario = Scenario::new(
            workload,
            ManagerSpec::Kind {
                kind: ManagerKind::Backoff,
                bloom_bits: None,
            },
            Platform::small(),
        );
        let text = scenario.to_json().to_string();
        let parsed = Scenario::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, scenario);
        match parsed.workload.resolve().unwrap() {
            ResolvedWorkload::Benchmark(resolved) => {
                assert_eq!(resolved.name, "Kmeans-modified");
                assert_eq!(resolved.total_txs, spec.total_txs);
                assert_eq!(resolved.classes[..], spec.classes[..]);
            }
            other => panic!("resolved to {other:?}"),
        }
    }

    #[test]
    fn preset_detection_requires_matching_classes() {
        let spec = presets::kmeans().scaled(0.25);
        assert!(matches!(
            WorkloadSpec::from_benchmark(&spec),
            WorkloadSpec::Preset { .. }
        ));
        let mut tweaked = spec;
        let mut classes = tweaked.classes.to_vec();
        classes[0].private_hot += 1;
        tweaked.classes = Arc::from(classes);
        assert!(matches!(
            WorkloadSpec::from_benchmark(&tweaked),
            WorkloadSpec::Inline { .. }
        ));
    }

    #[test]
    fn canonicalisation_collapses_equal_runs() {
        // Serial baselines ignore the platform shape.
        let mut a = sample();
        a.manager = ManagerSpec::Serial;
        let mut b = a.clone();
        b.platform = Platform::paper();
        b.platform.seed = a.platform.seed;
        b.faults = Some(FaultPlan::new(3));
        assert_eq!(a.id(), b.id());
        // An explicit Bloom size on the perfect-signature variant is
        // inert and must not mint a second identity.
        let c = Scenario::new(
            a.workload.clone(),
            ManagerSpec::Bfgts(BfgtsTunables::new(BfgtsVariant::NoOverhead).bloom_bits(512)),
            Platform::small(),
        );
        let d = Scenario::new(
            a.workload.clone(),
            ManagerSpec::Bfgts(BfgtsTunables::new(BfgtsVariant::NoOverhead)),
            Platform::small(),
        );
        assert_eq!(c.id(), d.id());
        // Bloom geometry on a manager that never consults it is inert.
        let e = Scenario::new(
            a.workload.clone(),
            ManagerSpec::Kind {
                kind: ManagerKind::Backoff,
                bloom_bits: Some(4096),
            },
            Platform::small(),
        );
        let f = Scenario::new(
            a.workload.clone(),
            ManagerSpec::Kind {
                kind: ManagerKind::Backoff,
                bloom_bits: None,
            },
            Platform::small(),
        );
        assert_eq!(e.id(), f.id());
    }

    #[test]
    fn distinct_inputs_get_distinct_ids() {
        let base = sample();
        let mut variants = vec![base.clone()];
        let mut v = base.clone();
        v.platform.seed ^= 1;
        variants.push(v);
        let mut v = base.clone();
        v.costs = CostKind::Stm;
        variants.push(v);
        let mut v = base.clone();
        v.manager = ManagerSpec::Kind {
            kind: ManagerKind::BfgtsHw,
            bloom_bits: Some(8192),
        };
        variants.push(v);
        let mut v = base.clone();
        v.faults = Some(FaultPlan::randomized(3));
        variants.push(v);
        let mut v = base.clone();
        v.faults = Some(FaultPlan::randomized(4));
        variants.push(v);
        let mut v = base.clone();
        v.workload = WorkloadSpec::Preset {
            name: "Kmeans".into(),
            total_txs: 401,
        };
        variants.push(v);
        let mut v = base.clone();
        v.trace = TraceMode::Full;
        variants.push(v);
        let mut v = base.clone();
        v.platform = v.platform.sharded(4);
        variants.push(v);
        let ids: std::collections::BTreeSet<String> = variants.iter().map(Scenario::id).collect();
        assert_eq!(ids.len(), variants.len(), "colliding ids");
    }

    #[test]
    fn manager_kind_keys_round_trip() {
        for kind in ManagerKind::ALL {
            assert_eq!(ManagerKind::from_key(kind.key()), Some(kind));
        }
        assert_eq!(ManagerKind::from_key("turbo"), None);
        for variant in [
            BfgtsVariant::Sw,
            BfgtsVariant::Hw,
            BfgtsVariant::HwBackoff,
            BfgtsVariant::NoOverhead,
        ] {
            assert_eq!(variant_from_key(variant_key(variant)), Some(variant));
        }
    }

    #[test]
    fn tunables_expand_to_the_configs_the_bins_used_to_build() {
        let hand = BfgtsConfig::hw()
            .bloom_bits(1024)
            .small_tx_interval(10)
            .with_alias_slots(4)
            .without_similarity_weighting();
        let tunables = BfgtsTunables::from_config(&hand);
        assert_eq!(tunables.config(), hand);
        assert_eq!(
            BfgtsTunables::new(BfgtsVariant::Sw).config(),
            BfgtsConfig::sw()
        );
    }

    #[test]
    fn build_produces_matching_names() {
        for kind in ManagerKind::ALL {
            assert_eq!(kind.build(2048).name(), kind.label());
        }
    }

    #[test]
    fn custom_cells_are_neither_cacheable_nor_executable() {
        let custom = ManagerSpec::Custom { tag: "x".into() };
        assert!(!custom.cacheable());
        assert!(!custom.executable());
        assert!(custom.build("Kmeans", None).is_none());
        assert!(ManagerSpec::Serial.cacheable());
        assert!(ManagerSpec::Polka.build("Kmeans", None).is_some());
    }

    #[test]
    fn scenario_files_accept_object_or_array() {
        let one = sample();
        let solo = scenarios_from_str(&one.to_json().to_string()).unwrap();
        assert_eq!(solo, vec![one.clone()]);
        let many = scenarios_from_str(&scenarios_to_json(&[one.clone(), one.clone()]).to_string())
            .unwrap();
        assert_eq!(many.len(), 2);
        assert!(scenarios_from_str("42").is_err());
        assert!(scenarios_from_str("{}").is_err());
    }

    #[test]
    fn ring_zero_trace_mode_rejected() {
        // Regression: {"ring": 0} used to parse and then be silently
        // clamped to Ring(1) by the sink.
        let mut doc = sample().to_json();
        if let Json::Obj(map) = &mut doc {
            map.insert("trace".into(), Json::obj([("ring", Json::UInt(0))]));
        }
        let err = Scenario::from_json(&doc).unwrap_err();
        assert!(err.contains("capacity >= 1"), "{err}");
        if let Json::Obj(map) = &mut doc {
            map.insert("trace".into(), Json::obj([("ring", Json::UInt(1))]));
        }
        assert!(Scenario::from_json(&doc).is_ok());
    }

    #[test]
    fn zero_sized_inline_regions_rejected() {
        let zero_random = TxClass {
            stx: 0,
            weight: 1.0,
            private_hot: 1,
            shared_picks: 0,
            shared_pool: None,
            shared_writes: false,
            random_picks: 2,
            random_region: RandomRegion::PerThread { lines: 0 },
            write_frac: 0.0,
            pre_work: (0, 0),
        };
        let workload = WorkloadSpec::Inline {
            name: "degenerate".into(),
            total_txs: 10,
            classes: vec![zero_random],
        };
        let err = workload.resolve().unwrap_err();
        assert!(err.contains("empty region"), "{err}");
    }

    /// An open spec exercising all three processes plus overrides.
    fn open_spec() -> ArrivalSpec {
        ArrivalSpec::poisson(1500)
            .with_override(
                1,
                ArrivalProcess::Bursty {
                    burst: 4,
                    gap_in: 10,
                    gap_out: 900,
                },
            )
            .with_override(
                3,
                ArrivalProcess::Diurnal {
                    period: 40_000,
                    peak_gap: 200,
                    trough_gap: 2_000,
                },
            )
    }

    #[test]
    fn open_scenarios_round_trip_to_a_fixed_point() {
        let mut scenario = sample();
        scenario.arrivals = Some(open_spec());
        let text = scenario.to_json().to_string();
        let parsed = Scenario::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, scenario);
        assert_eq!(parsed.to_json().to_string(), text, "fixed point");
        assert_eq!(parsed.id(), scenario.id());
    }

    #[test]
    fn absent_arrivals_serialise_to_no_key_at_all() {
        // The shards/faults identity protocol: a closed-system scenario
        // must serialise exactly as it did before the field existed, so
        // every historical id, cache entry and trace header stays valid.
        let closed = sample();
        assert!(!closed.to_json().to_string().contains("arrivals"));
        let mut open = closed.clone();
        open.arrivals = Some(ArrivalSpec::poisson(1000));
        assert_ne!(open.id(), closed.id(), "arrivals must be part of the id");
        let mut other = closed.clone();
        other.arrivals = Some(ArrivalSpec::poisson(1001));
        assert_ne!(other.id(), open.id(), "the mean gap is part of the id");
        // Serial canonicalisation keeps arrivals: an open serial baseline
        // is a different run from a closed one.
        let mut serial = open.clone();
        serial.manager = ManagerSpec::Serial;
        assert_eq!(serial.clone().canonical().arrivals, open.arrivals);
    }

    #[test]
    fn absent_detection_serialises_to_no_key_at_all() {
        // Same identity protocol as shards/faults/arrivals: perfect
        // detection — the only semantics any pre-capacity scenario ever
        // had — serialises without the key, so every historical id,
        // cache entry and trace header stays valid.
        let perfect = sample();
        assert!(!perfect.to_json().to_string().contains("detection"));
        let mut bounded = perfect.clone();
        bounded.platform = bounded.platform.bounded(256, 2, 48);
        assert_ne!(bounded.id(), perfect.id(), "detection must be in the id");
        let mut other = perfect.clone();
        other.platform = other.platform.bounded(256, 2, 49);
        assert_ne!(other.id(), bounded.id(), "capacity is part of the id");
        let text = bounded.to_json().to_string();
        let parsed = Scenario::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, bounded);
        assert_eq!(parsed.to_json().to_string(), text, "fixed point");
        // Serial canonicalisation pins Perfect: the serial baseline is
        // the ideal reference and never pays capacity aborts.
        let mut serial = bounded.clone();
        serial.manager = ManagerSpec::Serial;
        let mut serial_perfect = perfect.clone();
        serial_perfect.manager = ManagerSpec::Serial;
        assert_eq!(serial.id(), serial_perfect.id());
    }

    #[test]
    fn invalid_detection_documents_are_rejected_not_panicked() {
        let bounded = {
            let mut s = sample();
            s.platform = s.platform.bounded(128, 2, 16);
            s
        };
        let patch = |key: &str, value: u64| {
            let mut doc = bounded.to_json();
            if let Json::Obj(map) = &mut doc {
                if let Some(Json::Obj(platform)) = map.get_mut("platform") {
                    if let Some(Json::Obj(detection)) = platform.get_mut("detection") {
                        detection.insert(key.into(), Json::UInt(value));
                    }
                }
            }
            Scenario::from_json(&doc)
        };
        assert!(patch("bits", 63).unwrap_err().contains("bits"));
        assert!(patch("bits", 8192).unwrap_err().contains("bits"));
        assert!(patch("hashes", 0).unwrap_err().contains("hash"));
        assert!(patch("hashes", 17).unwrap_err().contains("hash"));
        assert!(patch("capacity", 0).unwrap_err().contains("capacity"));
    }

    #[test]
    fn invalid_arrival_documents_are_rejected_not_panicked() {
        let mut base = sample();
        base.arrivals = Some(ArrivalSpec::poisson(1000));
        let patch = |process: Json| {
            let mut doc = base.to_json();
            if let Json::Obj(map) = &mut doc {
                map.insert(
                    "arrivals".into(),
                    Json::obj([("per_stx", Json::Arr(vec![])), ("process", process)]),
                );
            }
            Scenario::from_json(&doc)
        };
        let poisson0 = patch(Json::obj([
            ("kind", Json::Str("poisson".into())),
            ("mean_gap", Json::UInt(0)),
        ]));
        assert!(poisson0.unwrap_err().contains("mean_gap"));
        let bursty0 = patch(Json::obj([
            ("burst", Json::UInt(2)),
            ("gap_in", Json::UInt(5)),
            ("gap_out", Json::UInt(0)),
            ("kind", Json::Str("bursty".into())),
        ]));
        assert!(bursty0.unwrap_err().contains("gap_out"));
        let inverted = patch(Json::obj([
            ("kind", Json::Str("diurnal".into())),
            ("peak_gap", Json::UInt(500)),
            ("period", Json::UInt(100)),
            ("trough_gap", Json::UInt(100)),
        ]));
        assert!(inverted.unwrap_err().contains("trough_gap"));
        assert!(patch(Json::obj([("kind", Json::Str("steady".into()))]))
            .unwrap_err()
            .contains("unknown arrival process kind"));
        // Out-of-order overrides are non-canonical: reject, don't sort.
        let dup = arrivals_from_json(&Json::obj([
            (
                "per_stx",
                Json::Arr(vec![
                    Json::Arr(vec![
                        Json::UInt(2),
                        process_to_json(&ArrivalProcess::Poisson { mean_gap: 7 }),
                    ]),
                    Json::Arr(vec![
                        Json::UInt(2),
                        process_to_json(&ArrivalProcess::Poisson { mean_gap: 9 }),
                    ]),
                ]),
            ),
            (
                "process",
                process_to_json(&ArrivalProcess::Poisson { mean_gap: 5 }),
            ),
        ]));
        assert!(dup.unwrap_err().contains("strictly increasing"));
    }

    #[test]
    fn unknown_names_and_versions_are_rejected() {
        let mut bad = sample();
        bad.workload = WorkloadSpec::Preset {
            name: "NoSuchBench".into(),
            total_txs: 10,
        };
        assert!(bad.workload.resolve().is_err());
        let mut doc = sample().to_json();
        if let Json::Obj(map) = &mut doc {
            map.insert("version".into(), Json::UInt(99));
        }
        assert!(Scenario::from_json(&doc).is_err());
    }
}
