//! Property tests: randomly generated scenarios round-trip through
//! canonical JSON to a byte fixed point, canonicalisation is idempotent,
//! and the content hash is invariant under the round trip.

use bfgts_faultsim::FaultPlan;
use bfgts_scenario::{
    json::Json, BfgtsTunables, CostKind, ManagerKind, ManagerSpec, Platform, Scenario, WorkloadSpec,
};
use bfgts_sim::TraceMode;
use bfgts_testkit::{run_cases, Gen};
use bfgts_workloads::{presets, AdversarialSpec, ArrivalProcess, ArrivalSpec};

fn random_platform(g: &mut Gen) -> Platform {
    let mut platform = *g.choose(&[Platform::paper(), Platform::small()]);
    platform.seed = g.u64();
    if g.bool() {
        platform = platform.sharded(g.u32_in(1, 16));
    }
    if g.bool() {
        platform = platform.bounded(64 * g.u32_in(1, 64), g.u32_in(1, 16), g.u32_in(1, 256));
    }
    platform
}

fn random_workload(g: &mut Gen) -> WorkloadSpec {
    if g.bool() {
        let mut spec = g.choose(&presets::all()).clone();
        spec = spec.scaled(f64::from(g.u32_in(1, 40)) / 20.0);
        WorkloadSpec::from_benchmark(&spec)
    } else {
        let mut spec = g.choose(&AdversarialSpec::all()).clone();
        spec = spec.scaled(f64::from(g.u32_in(1, 40)) / 20.0);
        WorkloadSpec::from_adversarial(&spec)
    }
}

fn random_manager(g: &mut Gen) -> ManagerSpec {
    match g.below(5) {
        0 => ManagerSpec::Serial,
        1 => ManagerSpec::Kind {
            kind: *g.choose(&ManagerKind::ALL),
            bloom_bits: g.bool().then(|| 1 << g.u32_in(6, 13)),
        },
        2 => {
            let variant = *g.choose(&[
                bfgts_core::BfgtsVariant::Sw,
                bfgts_core::BfgtsVariant::Hw,
                bfgts_core::BfgtsVariant::HwBackoff,
                bfgts_core::BfgtsVariant::NoOverhead,
            ]);
            let mut tunables = BfgtsTunables::new(variant);
            if g.bool() {
                tunables = tunables.bloom_bits(1 << g.u32_in(6, 13));
            }
            if g.bool() {
                tunables = tunables.small_tx_interval(g.u32_in(1, 50));
            }
            if g.bool() {
                tunables = tunables.with_alias_slots(g.u32_in(1, 8));
            }
            if g.bool() {
                tunables = tunables.without_similarity_weighting();
            }
            ManagerSpec::Bfgts(tunables)
        }
        3 => {
            if g.bool() {
                ManagerSpec::Polka
            } else {
                ManagerSpec::Stall
            }
        }
        _ => {
            if g.bool() {
                ManagerSpec::WindowGreedy {
                    window_size: g.bool().then(|| g.u32_in(1, 16)),
                    base_delay: g.bool().then(|| g.u32_in(50, 2000)),
                }
            } else {
                ManagerSpec::BalancedGreedy {
                    window_size: g.bool().then(|| g.u32_in(1, 16)),
                }
            }
        }
    }
}

fn random_process(g: &mut Gen) -> ArrivalProcess {
    match g.below(3) {
        0 => ArrivalProcess::Poisson {
            mean_gap: u64::from(g.u32_in(1, 100_000)),
        },
        1 => ArrivalProcess::Bursty {
            burst: g.u32_in(1, 64),
            gap_in: u64::from(g.u32_in(0, 1_000)),
            gap_out: u64::from(g.u32_in(1, 100_000)),
        },
        _ => {
            let peak_gap = u64::from(g.u32_in(1, 10_000));
            ArrivalProcess::Diurnal {
                period: u64::from(g.u32_in(1, 1_000_000)),
                peak_gap,
                trough_gap: peak_gap + u64::from(g.u32_in(0, 100_000)),
            }
        }
    }
}

fn random_arrivals(g: &mut Gen) -> ArrivalSpec {
    let mut spec = ArrivalSpec {
        process: random_process(g),
        per_stx: Vec::new(),
    };
    for _ in 0..g.below(4) {
        let stx = g.u32_in(0, 8);
        spec = spec.with_override(stx, random_process(g));
    }
    spec
}

fn random_scenario(g: &mut Gen) -> Scenario {
    let mut scenario = Scenario::new(random_workload(g), random_manager(g), random_platform(g));
    scenario.costs = *g.choose(&[CostKind::Htm, CostKind::Stm]);
    if g.bool() {
        scenario.faults = Some(FaultPlan::randomized(g.u64()));
    }
    if g.bool() {
        scenario.arrivals = Some(random_arrivals(g));
    }
    scenario.trace = match g.below(3) {
        0 => TraceMode::Off,
        1 => TraceMode::Full,
        _ => TraceMode::Ring(g.usize_in(16, 1 << 16)),
    };
    scenario
}

#[test]
fn random_scenarios_round_trip_to_a_byte_fixed_point() {
    run_cases("scenario-round-trip", 300, |g| {
        let scenario = random_scenario(g);
        let canon = scenario.clone().canonical();
        assert_eq!(
            canon.clone().canonical(),
            canon,
            "canonicalisation must be idempotent"
        );
        assert_eq!(
            scenario.id(),
            canon.id(),
            "the id must not depend on pre-canonical aliasing"
        );
        let text = canon.to_json().to_string();
        let parsed = Scenario::from_json(&Json::parse(&text).expect("canonical JSON parses"))
            .expect("canonical JSON is a valid scenario");
        assert_eq!(parsed, canon, "parse(print(s)) == s");
        assert_eq!(
            parsed.to_json().to_string(),
            text,
            "print(parse(text)) == text"
        );
        assert_eq!(parsed.id(), canon.id());
    });
}

#[test]
fn random_scenarios_resolve_and_build_when_executable() {
    run_cases("scenario-resolve", 100, |g| {
        let scenario = random_scenario(g).canonical();
        let resolved = scenario
            .workload
            .resolve()
            .expect("generated workloads name real generators");
        assert_eq!(resolved.name(), scenario.workload.name());
        assert!(scenario.manager.executable());
        let cm = scenario
            .manager
            .build(resolved.name(), None)
            .expect("executable managers build");
        assert!(!cm.name().is_empty());
    });
}
