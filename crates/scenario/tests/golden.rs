//! Golden scenario fixtures: the canonical JSON and the content hash of
//! a representative scenario set are pinned byte-for-byte.
//!
//! These goldens are the compatibility contract of the scenario layer:
//! cache entries, fuzz repros and trace headers all key on
//! [`Scenario::id`], so any change that shifts a fixture's canonical
//! JSON or id silently invalidates every persisted artifact. Such a
//! change must be deliberate — bump [`bfgts_scenario::SCENARIO_VERSION`]
//! and re-bless the fixtures by running with `BLESS_SCENARIOS=1`.

use bfgts_core::BfgtsVariant;
use bfgts_faultsim::{Fault, FaultPlan};
use bfgts_scenario::{
    BfgtsTunables, CostKind, ManagerKind, ManagerSpec, Platform, Scenario, WorkloadSpec,
};
use bfgts_sim::TraceMode;
use bfgts_workloads::{presets, AdversarialSpec};

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// The pinned fixture set: stable name, scenario value, expected id.
fn fixtures() -> Vec<(&'static str, Scenario, &'static str)> {
    let serial = Scenario::new(
        WorkloadSpec::from_benchmark(&presets::delaunay()),
        ManagerSpec::Serial,
        Platform::paper(),
    );

    let mut tuned = Scenario::new(
        WorkloadSpec::from_benchmark(&presets::vacation()),
        ManagerSpec::Bfgts(
            BfgtsTunables::new(BfgtsVariant::Hw)
                .bloom_bits(1024)
                .small_tx_interval(10),
        ),
        Platform::small(),
    );
    tuned.faults = Some(FaultPlan::new(7).fault(Fault::BloomCorrupt {
        rate_pct: 25,
        bits: 8,
    }));
    tuned.trace = TraceMode::Ring(4096);

    let mut stm = Scenario::new(
        WorkloadSpec::from_adversarial(&AdversarialSpec::hotspot_skew()),
        ManagerSpec::Kind {
            kind: ManagerKind::Ats,
            bloom_bits: None,
        },
        Platform::paper(),
    );
    stm.costs = CostKind::Stm;

    let windowed = Scenario::new(
        WorkloadSpec::from_benchmark(&presets::kmeans()),
        ManagerSpec::WindowGreedy {
            window_size: Some(8),
            base_delay: None,
        },
        Platform::paper(),
    );

    let mut balanced = Scenario::new(
        WorkloadSpec::from_adversarial(&AdversarialSpec::hotspot_skew()),
        ManagerSpec::BalancedGreedy { window_size: None },
        Platform::small(),
    );
    balanced.trace = TraceMode::Full;

    vec![
        (
            "serial_delaunay_paper",
            serial,
            "5be73d812d28941e7d39b45d0f02c819",
        ),
        (
            "bfgts_hw_tuned_faulted_vacation",
            tuned,
            "aa9bd642f44321ac37702af902867d7f",
        ),
        (
            "ats_stm_hotspot_skew",
            stm,
            "3f3fb01342cd9b334b7b2fa0c8213016",
        ),
        (
            "window_greedy_w8_kmeans_paper",
            windowed,
            "7969f6de5fe57953c9c0955a8c073f0a",
        ),
        (
            "balanced_greedy_traced_hotspot_small",
            balanced,
            "515ee388a9272a72e000c694ddddb88f",
        ),
    ]
}

fn canonical_text(scenario: &Scenario) -> String {
    scenario.clone().canonical().to_json().to_string() + "\n"
}

#[test]
fn golden_fixtures_are_byte_stable() {
    let dir = fixture_dir();
    // detlint: allow(D005) -- test-only bless switch; never read by a simulation
    let bless = std::env::var_os("BLESS_SCENARIOS").is_some();
    if bless {
        std::fs::create_dir_all(&dir).unwrap();
    }
    for (name, scenario, golden_id) in fixtures() {
        let path = dir.join(format!("{name}.scenario.json"));
        let text = canonical_text(&scenario);
        if bless {
            std::fs::write(&path, &text).unwrap();
            println!("blessed {name}: id {}", scenario.id());
            continue;
        }
        let fixture = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        assert_eq!(
            fixture, text,
            "{name}: canonical JSON drifted from the checked-in fixture \
             (intentional? bump SCENARIO_VERSION and re-bless with BLESS_SCENARIOS=1)"
        );
        assert_eq!(
            scenario.id(),
            golden_id,
            "{name}: content hash drifted — every cache entry, repro and \
             trace header keyed on it is invalidated"
        );
    }
}

#[test]
fn golden_fixtures_parse_back_to_the_same_scenario() {
    for (name, scenario, _) in fixtures() {
        let path = fixture_dir().join(format!("{name}.scenario.json"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            // The byte-stability test reports missing fixtures.
            continue;
        };
        let parsed = Scenario::from_json(&bfgts_scenario::json::Json::parse(&text).unwrap())
            .unwrap_or_else(|e| panic!("{name}: fixture does not parse: {e}"));
        assert_eq!(parsed, scenario.clone().canonical(), "{name}");
        assert_eq!(parsed.id(), scenario.id(), "{name}");
    }
}

#[test]
fn default_shards_are_schema_invisible() {
    // The `shards` platform field (DESIGN.md §11) evolved the schema.
    // The default — one monolithic shard — must serialise away entirely,
    // so every pre-sharding artifact keyed on a scenario id stays valid.
    for (name, scenario, golden_id) in fixtures() {
        assert_eq!(scenario.platform.shards, 1, "{name}");
        assert!(
            !canonical_text(&scenario).contains("shards"),
            "{name}: default shard count must not appear in canonical JSON"
        );
        assert_eq!(scenario.id(), golden_id, "{name}");
        // A shard-free document parses back to the default.
        let parsed = Scenario::from_json(
            &bfgts_scenario::json::Json::parse(&canonical_text(&scenario)).unwrap(),
        )
        .unwrap();
        assert_eq!(parsed.platform.shards, 1, "{name}");
        // An explicitly sharded platform is a different run with a
        // different id — except under Serial, where sharding is inert
        // and canonicalisation normalises it away.
        let mut sharded = scenario.clone();
        sharded.platform = sharded.platform.sharded(8);
        if matches!(scenario.manager, ManagerSpec::Serial) {
            assert_eq!(sharded.id(), golden_id, "{name}");
        } else {
            assert_ne!(sharded.id(), golden_id, "{name}");
            assert!(
                canonical_text(&sharded).contains("\"shards\":8"),
                "{name}: explicit shard count must serialise"
            );
        }
    }
}

#[test]
fn default_window_tunables_are_schema_invisible() {
    // The window-greedy tunables (DESIGN.md §14) evolved the manager
    // schema. Like `shards`, default (`None`) tunables must serialise
    // away entirely, so the window-era parser prints pre-window-era
    // documents byte-identically and every historical scenario id —
    // including the three pinned above — survives the extension.
    let defaults = Scenario::new(
        WorkloadSpec::from_benchmark(&presets::kmeans()),
        ManagerSpec::WindowGreedy {
            window_size: None,
            base_delay: None,
        },
        Platform::paper(),
    );
    let text = canonical_text(&defaults);
    assert!(
        !text.contains("window_size") && !text.contains("base_delay"),
        "default window tunables must not appear in canonical JSON"
    );
    assert!(text.contains("\"kind\":\"window_greedy\""));
    // A tunable-free document parses back to the defaults.
    let parsed = Scenario::from_json(&bfgts_scenario::json::Json::parse(&text).unwrap()).unwrap();
    assert_eq!(
        parsed.manager,
        ManagerSpec::WindowGreedy {
            window_size: None,
            base_delay: None,
        }
    );
    // Pinning a tunable is a different run with a different id.
    let mut pinned = defaults.clone();
    pinned.manager = ManagerSpec::WindowGreedy {
        window_size: Some(8),
        base_delay: None,
    };
    assert_ne!(pinned.id(), defaults.id());
    assert!(canonical_text(&pinned).contains("\"window_size\":8"));
    // Same protocol for the balanced variant.
    let mut balanced = defaults.clone();
    balanced.manager = ManagerSpec::BalancedGreedy { window_size: None };
    let text = canonical_text(&balanced);
    assert!(
        !text.contains("window_size"),
        "default balanced tunables must not appear in canonical JSON"
    );
    assert!(text.contains("\"kind\":\"balanced_greedy\""));
}

#[test]
fn golden_ids_are_pairwise_distinct() {
    let ids: Vec<String> = fixtures().iter().map(|(_, s, _)| s.id()).collect();
    for (i, a) in ids.iter().enumerate() {
        for b in &ids[i + 1..] {
            assert_ne!(a, b);
        }
    }
}
