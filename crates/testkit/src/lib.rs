//! Std-only test support for the BFGTS reproduction.
//!
//! The workspace builds against an offline registry, so the usual
//! third-party testing crates (proptest, criterion) are not available.
//! This crate supplies the two pieces of them the repository actually
//! uses, with deterministic behaviour and zero dependencies:
//!
//! * [`Gen`] + [`run_cases`] — randomised-property testing: a
//!   splitmix64-fed value generator and a case driver that reruns a
//!   property over many derived seeds and reports the failing seed.
//! * [`mod@bench`] — a wall-clock micro-benchmark harness with a
//!   criterion-like surface (`--bench`/`--test` aware, name filters),
//!   used by the `harness = false` bench targets of `bfgts-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A small deterministic pseudo-random value generator (splitmix64).
///
/// Every value drawn from a `Gen` is a pure function of the seed, so a
/// failing property case can be replayed by constructing `Gen::new` with
/// the seed printed by [`run_cases`].
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Multiply-shift rejection-free mapping; bias is < 2^-32 for
            // every bound this test suite uses.
            ((self.u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as u32
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `u16`.
    pub fn u16(&mut self) -> u16 {
        self.u64() as u16
    }

    /// Uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        self.u64() as u8
    }

    /// Fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// A vector of `len in [min_len, max_len)` elements drawn by `f`.
    pub fn vec_with<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Self) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }

    /// A vector of uniform `u64` keys.
    pub fn u64_vec(&mut self, min_len: usize, max_len: usize) -> Vec<u64> {
        self.vec_with(min_len, max_len, |g| g.u64())
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.usize_in(0, items.len())]
    }
}

/// Runs `property` over `cases` deterministic seeds derived from `name`.
///
/// On a panic inside the property, re-panics with the offending seed so
/// the case can be replayed in isolation with `Gen::new(seed)`.
pub fn run_cases(name: &str, cases: u32, property: impl Fn(&mut Gen)) {
    // FNV-1a over the name gives each property its own seed stream.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x100_0000_01b3);
    }
    for case in 0..cases {
        let seed = base ^ (case as u64).wrapping_mul(0xa076_1d64_78bd_642f);
        let mut gen = Gen::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut gen))) {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property '{name}' failed on case {case} (Gen seed {seed:#x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic() {
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut g = Gen::new(1);
        for _ in 0..1000 {
            assert!(g.below(10) < 10);
        }
        assert_eq!(g.below(0), 0);
    }

    #[test]
    fn ranges_are_inclusive_exclusive() {
        let mut g = Gen::new(2);
        let mut seen_lo = false;
        for _ in 0..2000 {
            let v = g.usize_in(3, 6);
            assert!((3..6).contains(&v));
            seen_lo |= v == 3;
        }
        assert!(seen_lo, "lower bound never drawn");
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut g = Gen::new(3);
        for _ in 0..100 {
            let v = g.u64_vec(0, 5);
            assert!(v.len() < 5);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Gen::new(4);
        for _ in 0..1000 {
            let x = g.f64_in(0.0, 1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn run_cases_reports_seed_on_failure() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_cases("always-fails", 3, |_| panic!("boom"))
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(
            msg.contains("always-fails") && msg.contains("boom"),
            "{msg}"
        );
    }

    #[test]
    fn run_cases_passes_quietly() {
        run_cases("trivial", 10, |g| {
            let _ = g.u64();
        });
    }
}
