//! A minimal wall-clock micro-benchmark harness.
//!
//! The `harness = false` bench targets in `bfgts-bench` used criterion,
//! which the offline registry cannot supply. This module re-creates the
//! slice of criterion those benches need: named benchmark functions and
//! groups, automatic calibration of the iteration count, median-of-batches
//! timing, and the cargo integration flags (`--bench` is ignored, `--test`
//! runs every benchmark exactly once so `cargo test --benches` stays
//! fast, positional arguments filter benchmarks by substring).
//!
//! ```no_run
//! use bfgts_testkit::bench::Harness;
//! use std::hint::black_box;
//!
//! let mut h = Harness::from_args();
//! h.bench("sum_1k", || {
//!     black_box((0..1000u64).sum::<u64>());
//! });
//! h.finish();
//! ```

use std::time::{Duration, Instant};

/// Target wall-clock spent measuring one benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
/// Number of timed batches; the median batch is reported.
const BATCHES: usize = 11;

/// The harness: parses cargo's bench/test arguments and runs benchmarks.
pub struct Harness {
    filters: Vec<String>,
    test_mode: bool,
    ran: usize,
}

impl Harness {
    /// Builds a harness from `std::env::args`.
    ///
    /// Recognised: `--test` (run each benchmark once, no timing), `--bench`
    /// and `--quiet`/`-q` (accepted and ignored, cargo passes them), any
    /// other `--flag` (ignored for forward compatibility with cargo's
    /// libtest pass-through), and positional substring filters.
    pub fn from_args() -> Self {
        let mut filters = Vec::new();
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with('-') => {}
                s => filters.push(s.to_string()),
            }
        }
        Self {
            filters,
            test_mode,
            ran: 0,
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    /// Runs one benchmark: calibrates an iteration count, times
    /// `BATCHES` batches and prints the median per-iteration time.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        if !self.selected(name) {
            return;
        }
        self.ran += 1;
        if self.test_mode {
            f();
            println!("test {name} ... ok");
            return;
        }
        // Calibrate: find an iteration count taking ~1/BATCHES of the
        // measurement target.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now(); // detlint: allow(D002) -- bench harness measures wall time by design; never feeds simulation state
            for _ in 0..iters {
                f();
            }
            let elapsed = t0.elapsed();
            if elapsed >= MEASURE_TARGET / BATCHES as u32 || iters >= 1 << 30 {
                break;
            }
            // Grow geometrically toward the target batch duration.
            let grow = if elapsed.is_zero() {
                16
            } else {
                ((MEASURE_TARGET / BATCHES as u32).as_nanos() / elapsed.as_nanos().max(1))
                    .clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(grow);
        }
        let mut samples: Vec<f64> = (0..BATCHES)
            .map(|_| {
                let t0 = Instant::now(); // detlint: allow(D002) -- bench harness measures wall time by design; never feeds simulation state
                for _ in 0..iters {
                    f();
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!(
            "bench {name:<44} {:>12}/iter (min {}, max {}, {iters} iters/batch)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
        );
    }

    /// Runs a benchmark over each `(label, input)` pair, mirroring
    /// criterion's `bench_with_input` loops.
    pub fn bench_over<T, F: FnMut(&T)>(&mut self, group: &str, inputs: &[(String, T)], mut f: F) {
        for (label, input) in inputs {
            self.bench(&format!("{group}/{label}"), || f(input));
        }
    }

    /// Prints the run summary. Call last.
    pub fn finish(self) {
        if self.test_mode {
            println!(
                "\ntest result: ok. {} passed; 0 failed (bench smoke mode)",
                self.ran
            );
        } else {
            println!("\n{} benchmark(s) measured", self.ran);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness(filters: &[&str], test_mode: bool) -> Harness {
        Harness {
            filters: filters.iter().map(|s| s.to_string()).collect(),
            test_mode,
            ran: 0,
        }
    }

    #[test]
    fn filters_select_by_substring() {
        let h = harness(&["bloom"], false);
        assert!(h.selected("bloom_insert/512"));
        assert!(!h.selected("predictor_lookup"));
        let all = harness(&[], false);
        assert!(all.selected("anything"));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut h = harness(&[], true);
        let mut count = 0;
        h.bench("once", || count += 1);
        assert_eq!(count, 1);
        assert_eq!(h.ran, 1);
    }

    #[test]
    fn format_scales_units() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
    }
}
