//! Runtime-selected signature representation (Bloom vs perfect).

use bfgts_bloomsig::{BloomFilter, PerfectSignature, Signature, SignatureKind};
use bfgts_htm::LineAddr;

/// A read/write-set signature in whichever representation the
/// configuration selected.
// The Bloom variant embeds up to 2048 bits inline so per-transaction
// signature construction never heap-allocates; boxing it to shrink the
// enum would reintroduce exactly that allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum Sig {
    Bloom(BloomFilter),
    Perfect(PerfectSignature),
}

impl Sig {
    pub(crate) fn new(kind: SignatureKind, hashes: u32) -> Self {
        match kind {
            SignatureKind::Bloom { bits } => Sig::Bloom(BloomFilter::new(bits, hashes)),
            SignatureKind::Perfect => Sig::Perfect(PerfectSignature::new()),
        }
    }

    pub(crate) fn from_set(kind: SignatureKind, hashes: u32, set: &[LineAddr]) -> Self {
        let mut sig = Sig::new(kind, hashes);
        for addr in set {
            match &mut sig {
                Sig::Bloom(b) => b.insert(addr.get()),
                Sig::Perfect(p) => p.insert(addr.get()),
            }
        }
        sig
    }

    /// Estimated `|self ∩ other|` (exact for perfect signatures).
    ///
    /// Mismatched representations cannot occur in practice (one manager,
    /// one configuration); we treat it as a logic error.
    pub(crate) fn intersection_estimate(&self, other: &Sig) -> f64 {
        match (self, other) {
            (Sig::Bloom(a), Sig::Bloom(b)) => a.intersection_estimate(b),
            (Sig::Perfect(a), Sig::Perfect(b)) => a.intersection_estimate(b),
            _ => panic!("signature representation mismatch"),
        }
    }

    /// [`Sig::intersection_estimate`] clamped at zero: the form required
    /// wherever the estimate is consumed as a set size (similarity
    /// averages, confidence weights). The raw estimate of disjoint Bloom
    /// signatures is slightly negative, and a negative "size" in a
    /// running average poisons every later update.
    pub(crate) fn intersection_estimate_clamped(&self, other: &Sig) -> f64 {
        self.intersection_estimate(other).max(0.0)
    }

    /// Whether the signatures (may) overlap.
    pub(crate) fn intersects(&self, other: &Sig) -> bool {
        match (self, other) {
            (Sig::Bloom(a), Sig::Bloom(b)) => a.intersects(b),
            (Sig::Perfect(a), Sig::Perfect(b)) => a.intersects(b),
            _ => panic!("signature representation mismatch"),
        }
    }

    /// 64-bit words per filter (0 for perfect signatures, which model the
    /// idealised no-overhead configuration).
    pub(crate) fn word_count(&self) -> u64 {
        match self {
            Sig::Bloom(b) => b.word_count() as u64,
            Sig::Perfect(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(v: &[u64]) -> Vec<LineAddr> {
        v.iter().map(|&x| LineAddr(x)).collect()
    }

    #[test]
    fn bloom_roundtrip() {
        let kind = SignatureKind::Bloom { bits: 1024 };
        let a = Sig::from_set(kind, 4, &addrs(&[1, 2, 3]));
        let b = Sig::from_set(kind, 4, &addrs(&[3, 4, 5]));
        assert!(a.intersects(&b));
        assert!(a.word_count() > 0);
    }

    #[test]
    fn perfect_is_exact() {
        let kind = SignatureKind::Perfect;
        let a = Sig::from_set(kind, 4, &addrs(&[1, 2, 3]));
        let b = Sig::from_set(kind, 4, &addrs(&[3, 4, 5]));
        assert_eq!(a.intersection_estimate(&b), 1.0);
        assert_eq!(a.word_count(), 0);
    }

    #[test]
    fn disjoint_perfect_does_not_intersect() {
        let kind = SignatureKind::Perfect;
        let a = Sig::from_set(kind, 4, &addrs(&[1]));
        let b = Sig::from_set(kind, 4, &addrs(&[2]));
        assert!(!a.intersects(&b));
    }

    #[test]
    #[should_panic(expected = "representation mismatch")]
    fn mixed_representations_panic() {
        let a = Sig::from_set(SignatureKind::Perfect, 4, &addrs(&[1]));
        let b = Sig::from_set(SignatureKind::Bloom { bits: 512 }, 4, &addrs(&[1]));
        let _ = a.intersects(&b);
    }
}
