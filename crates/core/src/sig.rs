//! Runtime-selected signature representation (Bloom vs perfect).

use bfgts_bloomsig::{BloomFilter, PerfectSignature, Signature, SignatureKind};
use bfgts_htm::LineAddr;

/// A read/write-set signature in whichever representation the
/// configuration selected.
// The Bloom variant embeds up to 2048 bits inline so per-transaction
// signature construction never heap-allocates; boxing it to shrink the
// enum would reintroduce exactly that allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum Sig {
    Bloom(BloomFilter),
    Perfect(PerfectSignature),
}

impl Sig {
    pub(crate) fn new(kind: SignatureKind, hashes: u32) -> Self {
        match kind {
            SignatureKind::Bloom { bits } => Sig::Bloom(BloomFilter::new(bits, hashes)),
            SignatureKind::Perfect => Sig::Perfect(PerfectSignature::new()),
        }
    }

    pub(crate) fn from_set(kind: SignatureKind, hashes: u32, set: &[LineAddr]) -> Self {
        let mut sig = Sig::new(kind, hashes);
        for addr in set {
            match &mut sig {
                Sig::Bloom(b) => b.insert(addr.get()),
                Sig::Perfect(p) => p.insert(addr.get()),
            }
        }
        sig
    }

    /// Estimated `|self ∩ other|` (exact for perfect signatures).
    ///
    /// Mismatched representations cannot occur in practice (one manager,
    /// one configuration); we treat it as a logic error.
    pub(crate) fn intersection_estimate(&self, other: &Sig) -> f64 {
        match (self, other) {
            (Sig::Bloom(a), Sig::Bloom(b)) => a.intersection_estimate(b),
            (Sig::Perfect(a), Sig::Perfect(b)) => a.intersection_estimate(b),
            // detlint: allow(P002) -- documented logic-error guard: one manager keeps every signature in one representation
            _ => panic!("signature representation mismatch"),
        }
    }

    /// [`Sig::intersection_estimate`] clamped at zero: the form required
    /// wherever the estimate is consumed as a set size (similarity
    /// averages, confidence weights). The raw estimate of disjoint Bloom
    /// signatures is slightly negative, and a negative "size" in a
    /// running average poisons every later update.
    pub(crate) fn intersection_estimate_clamped(&self, other: &Sig) -> f64 {
        self.intersection_estimate(other).max(0.0)
    }

    /// Whether the signatures (may) overlap.
    pub(crate) fn intersects(&self, other: &Sig) -> bool {
        match (self, other) {
            (Sig::Bloom(a), Sig::Bloom(b)) => a.intersects(b),
            (Sig::Perfect(a), Sig::Perfect(b)) => a.intersects(b),
            // detlint: allow(P002) -- documented logic-error guard: one manager keeps every signature in one representation
            _ => panic!("signature representation mismatch"),
        }
    }

    /// 64-bit words per filter (0 for perfect signatures, which model the
    /// idealised no-overhead configuration).
    pub(crate) fn word_count(&self) -> u64 {
        match self {
            Sig::Bloom(b) => b.word_count() as u64,
            Sig::Perfect(_) => 0,
        }
    }

    /// Forces `count` randomly drawn bit positions high — the Bloom
    /// corruption fault (DESIGN.md §9). Returns the number of positions
    /// forced. Perfect signatures are exact sets with no bit array to
    /// corrupt, so they return 0 and the caller emits no fault event
    /// (a no-op fault must not claim it happened).
    pub(crate) fn force_bits(&mut self, rng: &mut bfgts_sim::SimRng, count: u32) -> u32 {
        match self {
            Sig::Bloom(b) => {
                let bits = b.bits() as u64;
                for _ in 0..count {
                    b.set_bit(rng.gen_range(bits) as u32);
                }
                count
            }
            Sig::Perfect(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(v: &[u64]) -> Vec<LineAddr> {
        v.iter().map(|&x| LineAddr(x)).collect()
    }

    #[test]
    fn bloom_roundtrip() {
        let kind = SignatureKind::Bloom { bits: 1024 };
        let a = Sig::from_set(kind, 4, &addrs(&[1, 2, 3]));
        let b = Sig::from_set(kind, 4, &addrs(&[3, 4, 5]));
        assert!(a.intersects(&b));
        assert!(a.word_count() > 0);
    }

    #[test]
    fn perfect_is_exact() {
        let kind = SignatureKind::Perfect;
        let a = Sig::from_set(kind, 4, &addrs(&[1, 2, 3]));
        let b = Sig::from_set(kind, 4, &addrs(&[3, 4, 5]));
        assert_eq!(a.intersection_estimate(&b), 1.0);
        assert_eq!(a.word_count(), 0);
    }

    #[test]
    fn disjoint_perfect_does_not_intersect() {
        let kind = SignatureKind::Perfect;
        let a = Sig::from_set(kind, 4, &addrs(&[1]));
        let b = Sig::from_set(kind, 4, &addrs(&[2]));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn forced_bits_inflate_estimates_between_corrupted_sigs() {
        use bfgts_sim::SimRng;
        // Model what the manager actually does: consecutive commit
        // signatures each get bits forced from the SAME fault stream, so
        // they share forced bits — disjoint sets start looking
        // overlapping. (One-sided corruption alone *deflates* the
        // inclusion–exclusion estimate: the union estimate grows faster
        // than the smaller set's.)
        let kind = SignatureKind::Bloom { bits: 512 };
        let mut a = Sig::from_set(kind, 4, &addrs(&[1, 2, 3]));
        let mut b = Sig::from_set(kind, 4, &addrs(&[100, 200, 300]));
        let clean = a.intersection_estimate(&b);
        let mut rng = SimRng::seed_from(11);
        assert_eq!(a.force_bits(&mut rng, 96), 96);
        let mut rng = SimRng::seed_from(11);
        assert_eq!(b.force_bits(&mut rng, 96), 96);
        let corrupted = a.intersection_estimate(&b);
        assert!(
            corrupted > clean,
            "shared forced bits must inflate the estimate ({clean} -> {corrupted})"
        );

        let mut p = Sig::from_set(SignatureKind::Perfect, 4, &addrs(&[1]));
        assert_eq!(p.force_bits(&mut rng, 64), 0, "perfect sigs are immune");
    }

    #[test]
    #[should_panic(expected = "representation mismatch")]
    fn mixed_representations_panic() {
        let a = Sig::from_set(SignatureKind::Perfect, 4, &addrs(&[1]));
        let b = Sig::from_set(SignatureKind::Bloom { bits: 512 }, 4, &addrs(&[1]));
        let _ = a.intersects(&b);
    }
}
