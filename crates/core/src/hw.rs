//! The per-CPU hardware scheduling accelerator (paper §4.1, Figure 2).
//!
//! On `TX_BEGIN` the predictor walks its CPU table (kept coherent by
//! snooping begin/commit/abort broadcasts — in this model, the
//! [`bfgts_htm::TmState`] CPU table), looks up the confidence between the
//! beginning transaction and each running transaction, and compares it to
//! the threshold register. Confidence values are fetched through a small
//! dedicated cache (Table 2: 2 kB, 16-way, 64-byte lines, 1-cycle hits)
//! that also refetches lines evicted by invalidation snoops, so the
//! common case is a hit.
//!
//! This module models exactly the *timing* of that walk; the logical
//! decision is identical to the software scan and lives in
//! [`crate::BfgtsCm`].

use bfgts_htm::STxId;
use bfgts_sim::CostModel;

/// Geometry of the confidence cache (fixed by the paper's Table 2).
const CACHE_BYTES: usize = 2048;
const LINE_BYTES: usize = 64;
const WAYS: usize = 16;
const ENTRY_BYTES: usize = 4;
const ENTRIES_PER_LINE: u64 = (LINE_BYTES / ENTRY_BYTES) as u64;
const SETS: usize = CACHE_BYTES / LINE_BYTES / WAYS;
/// Row stride used to map `(row, col)` confidence coordinates to cache
/// lines; comfortably larger than any STAMP benchmark's sTxID count.
const ROW_STRIDE: u64 = 64;

/// Timing model of one CPU's hardware predictor.
///
/// # Example
///
/// ```
/// use bfgts_core::HwPredictor;
/// use bfgts_htm::STxId;
/// use bfgts_sim::CostModel;
///
/// let mut p = HwPredictor::new();
/// let costs = CostModel::default();
/// let miss = p.lookup_cost(STxId(0), STxId(1), &costs);
/// let hit = p.lookup_cost(STxId(0), STxId(1), &costs);
/// assert!(hit < miss, "second access must hit the confidence cache");
/// ```
#[derive(Debug, Clone)]
pub struct HwPredictor {
    /// Per-set LRU stacks of line tags, most recent last.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Default for HwPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl HwPredictor {
    /// Creates a predictor with a cold confidence cache.
    pub fn new() -> Self {
        Self {
            sets: (0..SETS).map(|_| Vec::with_capacity(WAYS)).collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// Cycles to fetch the confidence entry for `(row, col)` through the
    /// confidence cache: 1 on a hit, an L2 round trip on a miss.
    pub fn lookup_cost(&mut self, row: STxId, col: STxId, costs: &CostModel) -> u64 {
        let line = (row.get() as u64 * ROW_STRIDE + col.get() as u64) / ENTRIES_PER_LINE;
        let set = (line % SETS as u64) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            ways.remove(pos);
            ways.push(line);
            self.hits += 1;
            costs.conf_cache_hit
        } else {
            if ways.len() == WAYS {
                ways.remove(0);
            }
            ways.push(line);
            self.misses += 1;
            costs.conf_cache_miss
        }
    }

    /// Hit/miss counts since construction.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_table2() {
        // 2kB / 64B lines / 16 ways = 2 sets.
        assert_eq!(SETS, 2);
        assert_eq!(ENTRIES_PER_LINE, 16);
    }

    #[test]
    fn repeated_lookups_hit() {
        let mut p = HwPredictor::new();
        let costs = CostModel::default();
        assert_eq!(
            p.lookup_cost(STxId(1), STxId(2), &costs),
            costs.conf_cache_miss
        );
        for _ in 0..10 {
            assert_eq!(
                p.lookup_cost(STxId(1), STxId(2), &costs),
                costs.conf_cache_hit
            );
        }
        let (hits, misses) = p.hit_stats();
        assert_eq!((hits, misses), (10, 1));
    }

    #[test]
    fn same_line_entries_share_a_fetch() {
        let mut p = HwPredictor::new();
        let costs = CostModel::default();
        // Entries (0,0) and (0,15) map to the same 16-entry line.
        p.lookup_cost(STxId(0), STxId(0), &costs);
        assert_eq!(
            p.lookup_cost(STxId(0), STxId(15), &costs),
            costs.conf_cache_hit
        );
    }

    #[test]
    fn working_set_beyond_capacity_evicts_lru() {
        let mut p = HwPredictor::new();
        let costs = CostModel::default();
        // Touch 64 distinct lines in one set's worth of traffic; the
        // cache holds 32 lines total, so early lines must be evicted.
        for row in 0..64u32 {
            p.lookup_cost(STxId(row), STxId(0), &costs);
        }
        assert_eq!(
            p.lookup_cost(STxId(0), STxId(0), &costs),
            costs.conf_cache_miss,
            "line 0 should have been evicted"
        );
    }

    #[test]
    fn stamp_scale_working_set_fits() {
        // A benchmark with 5 static transactions touches at most
        // ceil(5*64/16)=20 lines... rows are strided, one line per row
        // pair region; all fit in 32 lines, so steady-state is all hits.
        let mut p = HwPredictor::new();
        let costs = CostModel::default();
        for row in 0..5u32 {
            for col in 0..5u32 {
                p.lookup_cost(STxId(row), STxId(col), &costs);
            }
        }
        let (_, cold_misses) = p.hit_stats();
        for _ in 0..100 {
            for row in 0..5u32 {
                for col in 0..5u32 {
                    p.lookup_cost(STxId(row), STxId(col), &costs);
                }
            }
        }
        let (_, misses_after) = p.hit_stats();
        assert_eq!(cold_misses, misses_after, "steady state must be all hits");
    }
}
