//! The BFGTS contention manager (paper §4).

use crate::config::{BfgtsConfig, BfgtsVariant};
use crate::faults::{CmFaults, PoisonMode};
use crate::hw::HwPredictor;
use crate::sig::Sig;
use crate::tables::{ConfidenceTable, TxStatsTable};
use bfgts_htm::{
    AbortPlan, BeginDecision, BeginOutcome, BeginQuery, CommitOutcome, CommitRecord, ConflictEvent,
    ContentionManager, DTxId, STxId, TmState,
};
use bfgts_sim::{ConfKind, CostModel, SimRng, TraceEvent, TraceSink};
use std::collections::BTreeMap;

/// Fixed software-path costs in cycles, calibrated to the instruction
/// counts of the paper's pseudo-code (Examples 1–4) on the simulated
/// single-IPC core.
mod sw_cost {
    /// Entry to the begin-time scan (software variant): load CPU table
    /// pointer, loop setup.
    pub const SCAN_BASE: u64 = 40;
    /// Per-entry software confidence lookup: the per-CPU tables are
    /// written by every committing CPU, so reads typically miss to L2.
    pub const SCAN_ENTRY: u64 = 24;
    /// Hardware-predictor fixed latency (trigger + compare + vector).
    pub const HW_BASE: u64 = 3;
    /// `suspendTx` bookkeeping: similarity average, decay update, record
    /// `txWaitingOn`.
    pub const SUSPEND: u64 = 25;
    /// `txConflict` bookkeeping: two similarity-weighted confidence
    /// increments.
    pub const CONFLICT: u64 = 40;
    /// `commitTx` fixed part: average-size update, serialisation check.
    pub const COMMIT_BASE: u64 = 30;
    /// Pressure check/update (HW/Backoff hybrid).
    pub const PRESSURE: u64 = 3;
}

/// The Bloom Filter Guided Transaction Scheduler.
///
/// One instance serves the whole machine (the paper's runtime is fully
/// distributed, but its tables are logically global; the per-CPU
/// replication only matters for timing, which [`HwPredictor`] models).
///
/// See the [crate-level documentation](crate) for the variant matrix and
/// an example.
pub struct BfgtsCm {
    cfg: BfgtsConfig,
    confidence: ConfidenceTable,
    stats: TxStatsTable,
    signatures: BTreeMap<u64, Sig>,
    /// Per-shard signature tables (DESIGN.md §11): table `s` maps a
    /// dTxID to the signature of the lines its last stored commit
    /// touched *in shard `s`*. Empty on single-shard platforms, where
    /// the monolithic `signatures` table serves every check; populated
    /// lazily to the machine's shard count otherwise. The
    /// `checkWasSerialized` intersection then consults only the shards
    /// both transactions touched, so a partitioned machine never ships
    /// whole filters across shards.
    shard_sigs: Vec<BTreeMap<u64, Sig>>,
    predictors: Vec<HwPredictor>,
    pressure: Vec<f64>,
    faults: Option<FaultState>,
}

/// Live state of an injected fault plan: the plan itself, the manager's
/// private fault RNG stream, and the commit counter driving the poisoning
/// cadence. Kept apart from the engine's RNG so a faulted and a fault-free
/// run make identical fault-free decisions.
struct FaultState {
    cfg: CmFaults,
    rng: SimRng,
    commits_seen: u64,
}

impl BfgtsCm {
    /// Creates a manager with the given configuration.
    pub fn new(cfg: BfgtsConfig) -> Self {
        let stats = TxStatsTable::new(cfg.initial_sim);
        let confidence = match cfg.alias_slots {
            Some(slots) => ConfidenceTable::with_alias_slots(slots),
            None => ConfidenceTable::new(),
        };
        Self {
            cfg,
            confidence,
            stats,
            signatures: BTreeMap::new(),
            shard_sigs: Vec::new(),
            predictors: Vec::new(),
            pressure: Vec::new(),
            faults: None,
        }
    }

    /// Creates a manager with an injected fault plan (DESIGN.md §9).
    ///
    /// The fault RNG is a stream derived from `faults.seed`, independent
    /// of the engine's and workload's streams: the same seed with an
    /// inactive plan behaves exactly like [`BfgtsCm::new`].
    pub fn with_faults(cfg: BfgtsConfig, faults: CmFaults) -> Self {
        let mut cm = Self::new(cfg);
        cm.faults = Some(FaultState {
            rng: SimRng::seed_from(faults.seed).derive(0xFA07_5EED),
            cfg: faults,
            commits_seen: 0,
        });
        cm
    }

    /// The active configuration.
    pub fn config(&self) -> &BfgtsConfig {
        &self.cfg
    }

    /// The confidence table (for reports/tests).
    pub fn confidence(&self) -> &ConfidenceTable {
        &self.confidence
    }

    /// The per-dTxID statistics table (for reports/tests).
    pub fn stats(&self) -> &TxStatsTable {
        &self.stats
    }

    fn pressure_of(&mut self, stx: STxId) -> &mut f64 {
        let i = stx.get() as usize;
        if self.pressure.len() <= i {
            self.pressure.resize(i + 1, 0.0);
        }
        &mut self.pressure[i]
    }

    fn predictor(&mut self, cpu: usize) -> &mut HwPredictor {
        if self.predictors.len() <= cpu {
            self.predictors.resize_with(cpu + 1, HwPredictor::new);
        }
        &mut self.predictors[cpu]
    }

    /// Paired similarity `0.5·(simOf(a)+simOf(b))` (Examples 2–4) plus
    /// its two per-transaction inputs, for trace emission: the audit
    /// recomputes `0.5·(sim_a+sim_b)` from the parts and requires the
    /// applied confidence delta to match bit for bit (ablated weighting
    /// records both parts as the constant 1.0, whose pairing is exactly
    /// 1.0 again).
    fn paired_sim_parts(&self, a: DTxId, b: DTxId) -> (f64, f64, f64) {
        if self.cfg.similarity_weighting {
            let sim_a = self.stats.sim_of(a);
            let sim_b = self.stats.sim_of(b);
            (0.5 * (sim_a + sim_b), sim_a, sim_b)
        } else {
            (1.0, 1.0, 1.0)
        }
    }

    /// Builds this dTxID's signature from a committed read/write set.
    fn build_sig(&self, rw_set: &[bfgts_htm::LineAddr]) -> Sig {
        Sig::from_set(self.cfg.signature, self.cfg.bloom_hashes, rw_set)
    }

    /// Partitions `rw_set` by conflict-detection shard and builds one
    /// signature per non-empty shard, in ascending shard order.
    fn build_shard_sigs(&self, tm: &TmState, rw_set: &[bfgts_htm::LineAddr]) -> Vec<(u32, Sig)> {
        let mut parts: BTreeMap<u32, Vec<bfgts_htm::LineAddr>> = BTreeMap::new();
        for &addr in rw_set {
            parts.entry(tm.shard_of(addr)).or_default().push(addr);
        }
        parts
            .into_iter()
            .map(|(shard, lines)| (shard, self.build_sig(&lines)))
            .collect()
    }

    /// Replaces `dtx`'s entries in the per-shard signature tables with
    /// fresh per-shard signatures of `rw_set` (sharded platforms only).
    fn store_shard_sigs(&mut self, tm: &TmState, key: u64, rw_set: &[bfgts_htm::LineAddr]) {
        let shards = tm.num_shards() as usize;
        if self.shard_sigs.len() < shards {
            self.shard_sigs.resize_with(shards, BTreeMap::new);
        }
        for table in &mut self.shard_sigs {
            table.remove(&key);
        }
        for (shard, sig) in self.build_shard_sigs(tm, rw_set) {
            self.shard_sigs[shard as usize].insert(key, sig);
        }
    }

    fn is_free(&self) -> bool {
        self.cfg.variant == BfgtsVariant::NoOverhead
    }

    /// Charge `cycles` unless running the idealised no-overhead variant.
    fn priced(&self, cycles: u64) -> u64 {
        if self.is_free() {
            1
        } else {
            cycles
        }
    }
}

impl ContentionManager for BfgtsCm {
    fn name(&self) -> &'static str {
        self.cfg.variant.label()
    }

    fn on_begin(
        &mut self,
        q: &BeginQuery,
        tm: &TmState,
        costs: &CostModel,
        _rng: &mut SimRng,
        trace: &mut TraceSink,
    ) -> BeginOutcome {
        let mut cost: u64;
        match self.cfg.variant {
            BfgtsVariant::Sw => cost = sw_cost::SCAN_BASE,
            BfgtsVariant::Hw => cost = sw_cost::HW_BASE,
            BfgtsVariant::HwBackoff => {
                cost = sw_cost::PRESSURE;
                if *self.pressure_of(q.dtx.stx) < self.cfg.pressure_threshold {
                    // Low contention: skip prediction entirely.
                    return BeginOutcome {
                        decision: BeginDecision::Proceed,
                        cost,
                    };
                }
                cost += sw_cost::HW_BASE;
            }
            BfgtsVariant::NoOverhead => cost = 1,
        }

        // Walk the CPU table (Example 1).
        let cpu_table: Vec<Option<DTxId>> = tm.cpu_table().to_vec();
        for (cpu_idx, slot) in cpu_table.iter().enumerate() {
            if cpu_idx == q.cpu {
                continue;
            }
            let Some(target) = slot else { continue };
            if target.thread == q.thread {
                continue;
            }
            cost += match self.cfg.variant {
                BfgtsVariant::Sw => sw_cost::SCAN_ENTRY,
                BfgtsVariant::Hw | BfgtsVariant::HwBackoff => self
                    .predictor(q.cpu)
                    .lookup_cost(q.dtx.stx, target.stx, costs),
                BfgtsVariant::NoOverhead => 0,
            };
            if self.confidence.get(q.dtx.stx, target.stx) > self.cfg.conf_threshold
                && tm.is_active(*target)
            {
                // Predicted conflict: suspendTx bookkeeping (Example 2).
                let (sim, sim_a, sim_b) = self.paired_sim_parts(q.dtx, *target);
                let applied = -(self.cfg.decay_val * (1.0 - sim));
                self.confidence.bump(q.dtx.stx, target.stx, applied);
                trace.emit(q.now.as_u64(), || TraceEvent::ConfUpdate {
                    kind: ConfKind::SuspendDecay,
                    a_stx: q.dtx.stx.0,
                    b_stx: target.stx.0,
                    sim_a_bits: sim_a.to_bits(),
                    sim_b_bits: sim_b.to_bits(),
                    param_bits: self.cfg.decay_val.to_bits(),
                    applied_bits: applied.to_bits(),
                });
                self.stats.entry(q.dtx).waiting_on = Some(*target);
                cost += self.priced(sw_cost::SUSPEND);
                let decision = if self.stats.avg_size_of(*target) >= self.cfg.yield_wait_threshold {
                    BeginDecision::YieldUntilDone { target: *target }
                } else {
                    BeginDecision::SpinUntilDone { target: *target }
                };
                return BeginOutcome { decision, cost };
            }
        }
        BeginOutcome {
            decision: BeginDecision::Proceed,
            cost,
        }
    }

    fn on_conflict_abort(
        &mut self,
        ev: &ConflictEvent,
        _tm: &TmState,
        _costs: &CostModel,
        rng: &mut SimRng,
        trace: &mut TraceSink,
    ) -> AbortPlan {
        // txConflict (Example 3): similarity-weighted symmetric increment.
        let (sim, sim_a, sim_b) = self.paired_sim_parts(ev.aborter, ev.enemy);
        let inc = self.cfg.inc_val * sim;
        self.confidence.bump(ev.aborter.stx, ev.enemy.stx, inc);
        self.confidence.bump(ev.enemy.stx, ev.aborter.stx, inc);
        let at = ev.now.as_u64();
        for (a, b, sa, sb) in [
            (ev.aborter.stx, ev.enemy.stx, sim_a, sim_b),
            (ev.enemy.stx, ev.aborter.stx, sim_b, sim_a),
        ] {
            trace.emit(at, || TraceEvent::ConfUpdate {
                kind: ConfKind::ConflictInc,
                a_stx: a.0,
                b_stx: b.0,
                sim_a_bits: sa.to_bits(),
                sim_b_bits: sb.to_bits(),
                param_bits: self.cfg.inc_val.to_bits(),
                applied_bits: inc.to_bits(),
            });
        }

        // Conflict pressure rises (hybrid variant's gate; tracked always,
        // charged only when the hybrid consults it).
        let alpha = self.cfg.pressure_alpha;
        let p = self.pressure_of(ev.aborter.stx);
        *p = alpha * *p + (1.0 - alpha);

        AbortPlan {
            backoff: rng.jitter(self.cfg.backoff_window << ev.retries.min(6)),
            cost: self.priced(sw_cost::CONFLICT),
        }
    }

    fn on_commit(
        &mut self,
        rec: &CommitRecord<'_>,
        tm: &TmState,
        costs: &CostModel,
        _rng: &mut SimRng,
        trace: &mut TraceSink,
    ) -> CommitOutcome {
        let mut cost = self.priced(sw_cost::COMMIT_BASE);

        // Fault injection: confidence-table poisoning on the commit
        // cadence (DESIGN.md §9). The rewrite happens before this commit's
        // own confidence updates, so every later ConfUpdate still verifies
        // bit-exact against the (poisoned) table it actually touched.
        let poison_due = match self.faults.as_mut() {
            Some(fs) if fs.cfg.poison_period > 0 => {
                fs.commits_seen += 1;
                (fs.commits_seen % fs.cfg.poison_period == 0).then_some(fs.cfg.poison_mode)
            }
            _ => None,
        };
        if let Some(mode) = poison_due {
            let (saturate, entries) = match mode {
                PoisonMode::Reset => (false, self.confidence.reset_all()),
                PoisonMode::Saturate(v) => (true, self.confidence.saturate(v)),
            };
            trace.emit(rec.now.as_u64(), || TraceEvent::FaultConfPoison {
                thread: rec.dtx.thread.index() as u32,
                saturate,
                entries,
            });
        }

        // Pressure decays on commit.
        let alpha = self.cfg.pressure_alpha;
        let pressure_low = {
            let p = self.pressure_of(rec.dtx.stx);
            *p *= alpha;
            *p < self.cfg.pressure_threshold
        };

        // updateAvgSize.
        let size = rec.rw_set.len() as f64;
        let stat = self.stats.entry(rec.dtx);
        stat.commits += 1;
        stat.avg_size = if stat.commits == 1 {
            size
        } else {
            0.5 * (stat.avg_size + size)
        };
        stat.since_sim_update += 1;
        let is_small = stat.avg_size <= self.cfg.small_tx_size;
        let interval_due = !is_small || stat.since_sim_update >= self.cfg.small_tx_interval;
        let avg_size = stat.avg_size;
        let waiting_on = stat.waiting_on.take();

        // The hybrid skips Bloom work entirely while pressure is low.
        let skip_bloom =
            self.cfg.variant == BfgtsVariant::HwBackoff && pressure_low && waiting_on.is_none();

        // updateBloom + calcSim (Example 4), batched for small txs.
        let mut new_sig: Option<Sig> = None;
        if interval_due && !skip_bloom {
            let mut sig = self.build_sig(rec.rw_set);
            // Fault injection: forced false-positive bits in the fresh
            // signature, *before* any estimate is taken — the BloomSample
            // below records raw/clamped from the corrupted filter, so the
            // audit's clamp contract (I6) verifies unchanged.
            if let Some(fs) = self.faults.as_mut() {
                let plan = fs.cfg;
                if plan.bloom_corrupt_bits > 0
                    && plan.bloom_corrupt_pct > 0
                    && fs.rng.gen_range(100) < u64::from(plan.bloom_corrupt_pct)
                {
                    let forced = sig.force_bits(&mut fs.rng, plan.bloom_corrupt_bits);
                    if forced > 0 {
                        trace.emit(rec.now.as_u64(), || TraceEvent::FaultBloomCorrupt {
                            thread: rec.dtx.thread.index() as u32,
                            stx: rec.dtx.stx.0,
                            bits: forced,
                        });
                    }
                }
            }
            if let Some(old) = self.signatures.get(&rec.dtx.pack()) {
                // Clamp contract: only the clamped estimate may enter the
                // similarity average. The trace records the raw value so
                // the audit (invariant I6) can prove the clamp happened.
                let inter = sig.intersection_estimate_clamped(old);
                trace.emit(rec.now.as_u64(), || TraceEvent::BloomSample {
                    thread: rec.dtx.thread.index() as u32,
                    stx: rec.dtx.stx.0,
                    raw_bits: sig.intersection_estimate(old).to_bits(),
                    clamped_bits: inter.to_bits(),
                });
                let new_sim = if avg_size > 0.0 {
                    (inter / avg_size).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let stat = self.stats.entry(rec.dtx);
                stat.sim = 0.5 * (stat.sim + new_sim);
                cost += self.priced(costs.similarity_calc(sig.word_count()));
            } else {
                cost += self.priced(2 * sig.word_count());
            }
            self.stats.entry(rec.dtx).since_sim_update = 0;
            new_sig = Some(sig);
        }

        // checkWasSerialized: was the wait justified?
        if let Some(target) = waiting_on {
            let verdict: Option<bool> = if tm.num_shards() > 1 {
                // Sharded check: intersect only the shards both
                // transactions touched, one per-shard filter at a time —
                // whole signatures never cross a shard boundary.
                if new_sig.is_none() {
                    cost += self.priced(2 * 32);
                }
                let mut verdict = None;
                for (shard, mine) in &self.build_shard_sigs(tm, rec.rw_set) {
                    let Some(theirs) = self
                        .shard_sigs
                        .get(*shard as usize)
                        .and_then(|table| table.get(&target.pack()))
                    else {
                        continue;
                    };
                    cost += self.priced(costs.bloom_intersect(mine.word_count()));
                    verdict = Some(verdict.unwrap_or(false) || mine.intersects(theirs));
                }
                verdict
            } else {
                let my_sig = match &new_sig {
                    Some(s) => Some(s.clone()),
                    None => {
                        // Need a signature for the intersection even if
                        // the similarity update was batched away.
                        cost += self.priced(2 * 32);
                        Some(self.build_sig(rec.rw_set))
                    }
                };
                match (my_sig.as_ref(), self.signatures.get(&target.pack())) {
                    (Some(mine), Some(theirs)) => {
                        cost += self.priced(costs.bloom_intersect(mine.word_count()));
                        Some(mine.intersects(theirs))
                    }
                    _ => None,
                }
            };
            if let Some(justified) = verdict {
                let (sim, sim_a, sim_b) = self.paired_sim_parts(rec.dtx, target);
                let (kind, param, applied) = if justified {
                    (
                        ConfKind::WaitJustified,
                        self.cfg.inc_val,
                        self.cfg.inc_val * sim,
                    )
                } else {
                    (
                        ConfKind::WaitUnjustified,
                        self.cfg.dec_val,
                        -(self.cfg.dec_val * (1.0 - sim)),
                    )
                };
                self.confidence.bump(rec.dtx.stx, target.stx, applied);
                trace.emit(rec.now.as_u64(), || TraceEvent::ConfUpdate {
                    kind,
                    a_stx: rec.dtx.stx.0,
                    b_stx: target.stx.0,
                    sim_a_bits: sim_a.to_bits(),
                    sim_b_bits: sim_b.to_bits(),
                    param_bits: param.to_bits(),
                    applied_bits: applied.to_bits(),
                });
            }
        }

        if let Some(sig) = new_sig {
            if tm.num_shards() > 1 {
                self.store_shard_sigs(tm, rec.dtx.pack(), rec.rw_set);
            }
            self.signatures.insert(rec.dtx.pack(), sig);
        }

        CommitOutcome {
            cost,
            wake: Vec::new(),
        }
    }

    fn on_wait_skipped(&mut self, dtx: DTxId) {
        self.stats.entry(dtx).waiting_on = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_htm::LineAddr;
    use bfgts_sim::{Cycle, ThreadId};

    fn dtx(t: usize, s: u32) -> DTxId {
        DTxId::new(ThreadId(t), STxId(s))
    }

    fn env() -> (TmState, CostModel, SimRng) {
        (
            TmState::new(4, 8),
            CostModel::default(),
            SimRng::seed_from(11),
        )
    }

    fn query(t: usize, s: u32, cpu: usize) -> BeginQuery {
        BeginQuery {
            thread: ThreadId(t),
            cpu,
            dtx: dtx(t, s),
            now: Cycle::ZERO,
            retries: 0,
            waits: 0,
        }
    }

    fn conflict(a: DTxId, b: DTxId) -> ConflictEvent {
        ConflictEvent {
            aborter: a,
            enemy: b,
            addr: LineAddr(0),
            now: Cycle::ZERO,
            retries: 0,
        }
    }

    fn commit_rec<'a>(d: DTxId, rw: &'a [LineAddr]) -> CommitRecord<'a> {
        CommitRecord {
            dtx: d,
            rw_set: rw,
            now: Cycle::ZERO,
            retries: 0,
            remaining: None,
        }
    }

    fn lines(r: std::ops::Range<u64>) -> Vec<LineAddr> {
        r.map(LineAddr).collect()
    }

    #[test]
    fn names_match_variants() {
        assert_eq!(BfgtsCm::new(BfgtsConfig::sw()).name(), "BFGTS-SW");
        assert_eq!(
            BfgtsCm::new(BfgtsConfig::hw_backoff()).name(),
            "BFGTS-HW/Backoff"
        );
    }

    #[test]
    fn cold_manager_proceeds() {
        let (tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw());
        let out = cm.on_begin(
            &query(0, 0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(out.decision, BeginDecision::Proceed);
    }

    #[test]
    fn conflicts_raise_confidence_similarity_weighted() {
        let (tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw());
        // initial sim prior is 0.5 → inc = 80 * 0.5 = 40 per conflict.
        cm.on_conflict_abort(
            &conflict(dtx(0, 0), dtx(1, 1)),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(cm.confidence().get(STxId(0), STxId(1)), 40.0);
        assert_eq!(cm.confidence().get(STxId(1), STxId(0)), 40.0);
    }

    #[test]
    fn ablated_weighting_uses_full_inc() {
        let (tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw().without_similarity_weighting());
        cm.on_conflict_abort(
            &conflict(dtx(0, 0), dtx(1, 1)),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(cm.confidence().get(STxId(0), STxId(1)), 80.0);
    }

    fn heat_up(
        cm: &mut BfgtsCm,
        a: DTxId,
        b: DTxId,
        tm: &TmState,
        costs: &CostModel,
        rng: &mut SimRng,
    ) {
        for _ in 0..4 {
            cm.on_conflict_abort(&conflict(a, b), tm, costs, rng, &mut TraceSink::disabled());
        }
    }

    #[test]
    fn hot_confidence_predicts_conflict_and_spins_for_small_target() {
        let (mut tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw());
        heat_up(&mut cm, dtx(0, 0), dtx(1, 1), &tm, &costs, &mut rng);
        // Target runs on cpu 1; it has no size history (avg 0 < 10) so we
        // spin rather than yield.
        tm.begin_tx(ThreadId(1), 1, dtx(1, 1), Cycle::ZERO);
        let out = cm.on_begin(
            &query(0, 0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(
            out.decision,
            BeginDecision::SpinUntilDone { target: dtx(1, 1) }
        );
    }

    #[test]
    fn large_target_yields_instead_of_spinning() {
        let (mut tm, costs, mut rng) = env();
        let mut cfg = BfgtsConfig::hw();
        // Lower the wait-primitive crossover so a 40-line target counts
        // as "long enough to yield for" in this test.
        cfg.yield_wait_threshold = 30.0;
        let mut cm = BfgtsCm::new(cfg);
        heat_up(&mut cm, dtx(0, 0), dtx(1, 1), &tm, &costs, &mut rng);
        // Give the target a large average size via a commit.
        let rw = lines(0..40);
        cm.on_commit(
            &commit_rec(dtx(1, 1), &rw),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        tm.begin_tx(ThreadId(1), 1, dtx(1, 1), Cycle::ZERO);
        let out = cm.on_begin(
            &query(0, 0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(
            out.decision,
            BeginDecision::YieldUntilDone { target: dtx(1, 1) }
        );
    }

    #[test]
    fn short_targets_spin_under_default_threshold() {
        let (mut tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw());
        heat_up(&mut cm, dtx(0, 0), dtx(1, 1), &tm, &costs, &mut rng);
        let rw = lines(0..40); // well below the 600-line default
        cm.on_commit(
            &commit_rec(dtx(1, 1), &rw),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        tm.begin_tx(ThreadId(1), 1, dtx(1, 1), Cycle::ZERO);
        let out = cm.on_begin(
            &query(0, 0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(
            out.decision,
            BeginDecision::SpinUntilDone { target: dtx(1, 1) }
        );
    }

    #[test]
    fn suspend_decays_confidence() {
        let (mut tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw());
        heat_up(&mut cm, dtx(0, 0), dtx(1, 1), &tm, &costs, &mut rng);
        let before = cm.confidence().get(STxId(0), STxId(1));
        tm.begin_tx(ThreadId(1), 1, dtx(1, 1), Cycle::ZERO);
        cm.on_begin(
            &query(0, 0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        let after = cm.confidence().get(STxId(0), STxId(1));
        assert!(after < before, "suspendTx must decay confidence");
    }

    #[test]
    fn hw_begin_is_cheaper_than_sw() {
        let (mut tm, costs, mut rng) = env();
        tm.begin_tx(ThreadId(1), 1, dtx(1, 1), Cycle::ZERO);
        tm.begin_tx(ThreadId(2), 2, dtx(2, 2), Cycle::ZERO);
        let mut sw = BfgtsCm::new(BfgtsConfig::sw());
        let mut hw = BfgtsCm::new(BfgtsConfig::hw());
        let sw_cost = sw
            .on_begin(
                &query(0, 0, 0),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            )
            .cost;
        // Warm the predictor cache once, then measure.
        hw.on_begin(
            &query(0, 0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        let hw_cost = hw
            .on_begin(
                &query(0, 0, 0),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            )
            .cost;
        assert!(
            hw_cost < sw_cost / 5,
            "hw begin {hw_cost} should be far below sw {sw_cost}"
        );
    }

    #[test]
    fn hybrid_skips_prediction_at_low_pressure() {
        let (mut tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw_backoff());
        heat_up(&mut cm, dtx(0, 0), dtx(1, 1), &tm, &costs, &mut rng);
        // Decay pressure well below the threshold with many commits.
        let rw = lines(0..5);
        for _ in 0..40 {
            cm.on_commit(
                &commit_rec(dtx(0, 0), &rw),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            );
        }
        tm.begin_tx(ThreadId(1), 1, dtx(1, 1), Cycle::ZERO);
        let out = cm.on_begin(
            &query(0, 0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(
            out.decision,
            BeginDecision::Proceed,
            "low pressure must bypass the predictor"
        );
        assert!(out.cost <= sw_cost::PRESSURE);
    }

    #[test]
    fn hybrid_predicts_at_high_pressure() {
        let (mut tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw_backoff());
        heat_up(&mut cm, dtx(0, 0), dtx(1, 1), &tm, &costs, &mut rng);
        tm.begin_tx(ThreadId(1), 1, dtx(1, 1), Cycle::ZERO);
        let out = cm.on_begin(
            &query(0, 0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert!(matches!(
            out.decision,
            BeginDecision::SpinUntilDone { .. } | BeginDecision::YieldUntilDone { .. }
        ));
    }

    #[test]
    fn similarity_converges_for_identical_sets() {
        let (tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw());
        let rw = lines(0..30);
        for _ in 0..12 {
            cm.on_commit(
                &commit_rec(dtx(0, 0), &rw),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            );
        }
        let sim = cm.stats().sim_of(dtx(0, 0));
        assert!(sim > 0.85, "identical sets must converge high, got {sim}");
    }

    #[test]
    fn similarity_converges_low_for_disjoint_sets() {
        let (tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw());
        for i in 0..12u64 {
            let rw = lines(i * 1000..i * 1000 + 30);
            cm.on_commit(
                &commit_rec(dtx(0, 0), &rw),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            );
        }
        let sim = cm.stats().sim_of(dtx(0, 0));
        assert!(sim < 0.2, "disjoint sets must converge low, got {sim}");
    }

    #[test]
    fn small_tx_similarity_updates_are_batched() {
        let (tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw().small_tx_interval(20));
        let rw = lines(0..5); // small: avg 5 <= 10
        let mut expensive = 0;
        for _ in 0..40 {
            let out = cm.on_commit(
                &commit_rec(dtx(0, 0), &rw),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            );
            if out.cost > 2 * sw_cost::COMMIT_BASE {
                expensive += 1;
            }
        }
        assert!(
            expensive <= 3,
            "similarity math should run ~1/20 commits, ran {expensive}"
        );
    }

    #[test]
    fn no_overhead_costs_are_unit() {
        let (tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::no_overhead());
        let out = cm.on_begin(
            &query(0, 0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(out.cost, 1);
        let rw = lines(0..50);
        let commit = cm.on_commit(
            &commit_rec(dtx(0, 0), &rw),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert!(commit.cost <= 3, "NoOverhead commit must be ~free");
        let plan = cm.on_conflict_abort(
            &conflict(dtx(0, 0), dtx(1, 0)),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(plan.cost, 1);
    }

    #[test]
    fn justified_wait_strengthens_unjustified_weakens() {
        let (tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::no_overhead());
        // Enemy's last set: 30 lines (large, so its signature is stored
        // immediately rather than batched).
        let enemy_rw = lines(0..30);
        cm.on_commit(
            &commit_rec(dtx(1, 1), &enemy_rw),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );

        // Case 1: we waited, and our set overlaps theirs → strengthen.
        cm.stats.entry(dtx(0, 0)).waiting_on = Some(dtx(1, 1));
        let before = cm.confidence().get(STxId(0), STxId(1));
        let my_rw = lines(20..50);
        cm.on_commit(
            &commit_rec(dtx(0, 0), &my_rw),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        let strengthened = cm.confidence().get(STxId(0), STxId(1));
        assert!(strengthened > before);

        // Case 2: we waited, sets disjoint → weaken.
        cm.stats.entry(dtx(0, 0)).waiting_on = Some(dtx(1, 1));
        let my_rw = lines(1000..1030);
        cm.on_commit(
            &commit_rec(dtx(0, 0), &my_rw),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert!(cm.confidence().get(STxId(0), STxId(1)) < strengthened);
    }

    #[test]
    fn sharded_wait_check_consults_only_cotouched_shards() {
        let (mut tm, costs, mut rng) = env();
        tm.configure_shards(2);
        let mut cm = BfgtsCm::new(BfgtsConfig::no_overhead());
        // Enemy's last commit lives entirely in shard 0 (block 0).
        let enemy_rw = lines(0..30);
        cm.on_commit(
            &commit_rec(dtx(1, 1), &enemy_rw),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );

        // We waited, but commit only shard-1 lines (block 1): no
        // co-touched shard, so checkWasSerialized has nothing to
        // intersect and the confidence entry stays untouched.
        cm.stats.entry(dtx(0, 0)).waiting_on = Some(dtx(1, 1));
        let my_rw = lines(64..94);
        cm.on_commit(
            &commit_rec(dtx(0, 0), &my_rw),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(cm.confidence().get(STxId(0), STxId(1)), 0.0);

        // We waited and overlap the enemy inside shard 0: justified,
        // confidence strengthens.
        cm.stats.entry(dtx(0, 0)).waiting_on = Some(dtx(1, 1));
        let my_rw = lines(20..50);
        cm.on_commit(
            &commit_rec(dtx(0, 0), &my_rw),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert!(cm.confidence().get(STxId(0), STxId(1)) > 0.0);
    }

    #[test]
    fn wait_skipped_clears_waiting_on() {
        let mut cm = BfgtsCm::new(BfgtsConfig::hw());
        cm.stats.entry(dtx(0, 0)).waiting_on = Some(dtx(1, 1));
        cm.on_wait_skipped(dtx(0, 0));
        assert_eq!(cm.stats.entry(dtx(0, 0)).waiting_on, None);
    }

    #[test]
    fn inactive_fault_plan_behaves_like_a_clean_manager() {
        let (tm, costs, mut rng) = env();
        let mut clean = BfgtsCm::new(BfgtsConfig::hw());
        let mut faulted = BfgtsCm::with_faults(BfgtsConfig::hw(), CmFaults::new(99));
        let rw = lines(0..30);
        for _ in 0..8 {
            clean.on_commit(
                &commit_rec(dtx(0, 0), &rw),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            );
            faulted.on_commit(
                &commit_rec(dtx(0, 0), &rw),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            );
        }
        assert_eq!(
            clean.stats().sim_of(dtx(0, 0)),
            faulted.stats().sim_of(dtx(0, 0)),
            "an inactive plan must not perturb anything"
        );
    }

    #[test]
    fn bloom_corruption_inflates_similarity_of_disjoint_sets() {
        let (tm, costs, rng) = env();
        let run = |faults: Option<CmFaults>| {
            let mut cm = match faults {
                Some(f) => BfgtsCm::with_faults(BfgtsConfig::hw(), f),
                None => BfgtsCm::new(BfgtsConfig::hw()),
            };
            for i in 0..12u64 {
                let rw = lines(i * 1000..i * 1000 + 30);
                cm.on_commit(
                    &commit_rec(dtx(0, 0), &rw),
                    &tm,
                    &costs,
                    &mut rng.derive(i),
                    &mut TraceSink::disabled(),
                );
            }
            cm.stats().sim_of(dtx(0, 0))
        };
        let clean = run(None);
        // 100% corruption rate, 256 forced bits in a 2048-bit filter:
        // disjoint sets now look overlapping.
        let corrupted = run(Some(CmFaults::new(5).bloom_corruption(100, 256)));
        assert!(
            corrupted > clean,
            "corruption must inflate similarity ({clean} -> {corrupted})"
        );
    }

    #[test]
    fn poisoning_reset_wipes_learned_confidence() {
        let (tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::with_faults(
            BfgtsConfig::hw(),
            CmFaults::new(3).poisoning(1, PoisonMode::Reset),
        );
        heat_up(&mut cm, dtx(0, 0), dtx(1, 1), &tm, &costs, &mut rng);
        assert!(cm.confidence().get(STxId(0), STxId(1)) > 0.0);
        let rw = lines(0..5);
        cm.on_commit(
            &commit_rec(dtx(0, 0), &rw),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(
            cm.confidence().get(STxId(0), STxId(1)),
            0.0,
            "period-1 reset poisoning must wipe the table on every commit"
        );
    }

    #[test]
    fn poisoning_saturation_manufactures_spurious_suspensions() {
        let (mut tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::with_faults(
            BfgtsConfig::hw(),
            CmFaults::new(3).poisoning(1, PoisonMode::Saturate(1000.0)),
        );
        // One commit each from two transactions that have NEVER conflicted;
        // saturation makes the scheduler serialise them anyway.
        let rw = lines(0..5);
        cm.on_conflict_abort(
            &conflict(dtx(2, 2), dtx(3, 3)),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        cm.on_commit(
            &commit_rec(dtx(2, 2), &rw),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        tm.begin_tx(ThreadId(1), 1, dtx(1, 1), Cycle::ZERO);
        let out = cm.on_begin(
            &query(0, 0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert!(
            matches!(
                out.decision,
                BeginDecision::SpinUntilDone { .. } | BeginDecision::YieldUntilDone { .. }
            ),
            "saturated confidence must predict a conflict for strangers, got {:?}",
            out.decision
        );
    }

    #[test]
    fn fault_stream_is_deterministic_per_seed() {
        let (tm, costs, _) = env();
        let run = |seed: u64| {
            let mut cm = BfgtsCm::with_faults(
                BfgtsConfig::hw(),
                CmFaults::new(seed).bloom_corruption(50, 32),
            );
            let mut rng = SimRng::seed_from(1);
            let mut sims = Vec::new();
            for i in 0..16u64 {
                let rw = lines(i * 64..i * 64 + 20);
                cm.on_commit(
                    &commit_rec(dtx(0, 0), &rw),
                    &tm,
                    &costs,
                    &mut rng,
                    &mut TraceSink::disabled(),
                );
                sims.push(cm.stats().sim_of(dtx(0, 0)).to_bits());
            }
            sims
        };
        assert_eq!(run(7), run(7), "same fault seed, same trajectory");
        assert_ne!(run(7), run(8), "fault seed must matter at a 50% rate");
    }

    #[test]
    fn backoff_grows_with_retries() {
        let (tm, costs, mut rng) = env();
        let mut cm = BfgtsCm::new(BfgtsConfig::hw());
        let mut late = ConflictEvent {
            retries: 6,
            ..conflict(dtx(0, 0), dtx(1, 0))
        };
        late.retries = 6;
        let draws_late: u64 = (0..50)
            .map(|_| {
                cm.on_conflict_abort(&late, &tm, &costs, &mut rng, &mut TraceSink::disabled())
                    .backoff
            })
            .sum();
        let early = conflict(dtx(0, 0), dtx(1, 0));
        let draws_early: u64 = (0..50)
            .map(|_| {
                cm.on_conflict_abort(&early, &tm, &costs, &mut rng, &mut TraceSink::disabled())
                    .backoff
            })
            .sum();
        assert!(draws_late > draws_early * 4);
    }
}
