//! **Bloom Filter Guided Transaction Scheduling** (BFGTS) — the primary
//! contribution of the paper (Blake, Dreslinski & Mudge, HPCA 2011).
//!
//! BFGTS is a proactive contention manager for hardware transactional
//! memory. Its key idea is *similarity*: a transaction whose consecutive
//! executions touch the same memory will keep conflicting with the same
//! enemies, while a transaction that jumps around memory only conflicts
//! transiently. BFGTS estimates similarity cheaply from Bloom-filter
//! read/write-set signatures (see [`bfgts_bloomsig`]) and uses it to
//! weight every confidence update its scheduler makes:
//!
//! * conflicts between *similar* transactions raise conflict confidence
//!   sharply and decay slowly → they get serialised;
//! * conflicts between *dissimilar* transactions barely register and
//!   decay fast → they keep running in parallel.
//!
//! The crate provides [`BfgtsCm`], an implementation of
//! [`bfgts_htm::ContentionManager`], in the paper's four evaluated
//! flavours ([`BfgtsVariant`]):
//!
//! | variant | begin-time prediction | commit bookkeeping |
//! |---|---|---|
//! | `Sw` | software CPU-table scan | full, in software |
//! | `Hw` | hardware predictor w/ confidence cache ([`HwPredictor`]) | full, in software |
//! | `HwBackoff` | gated by ATS-style conflict pressure | gated by pressure |
//! | `NoOverhead` | free (1 cycle) | free (1 cycle), perfect signatures |
//!
//! # Example
//!
//! ```
//! use bfgts_core::{BfgtsCm, BfgtsConfig};
//! use bfgts_htm::ContentionManager;
//!
//! let cm = BfgtsCm::new(BfgtsConfig::hw().bloom_bits(2048));
//! assert_eq!(cm.name(), "BFGTS-HW");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod faults;
mod hw;
mod manager;
mod sig;
mod tables;

pub use config::{BfgtsConfig, BfgtsVariant};
pub use faults::{CmFaults, PoisonMode};
pub use hw::HwPredictor;
pub use manager::BfgtsCm;
pub use tables::{ConfidenceTable, TxStatsTable};
