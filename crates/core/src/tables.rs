//! BFGTS software data structures (paper §4.2.1, Figure 3): the compact
//! sTxID×sTxID confidence table and the per-dTxID statistics array.

use bfgts_htm::{DTxId, STxId};

/// Conflict-confidence table keyed by *static* transaction id pairs.
///
/// This is BFGTS's key compression over PTS: instead of one entry per
/// dynamic (thread × static) pair — tens of megabytes — it keeps one per
/// static pair, a few hundred bytes for the STAMP benchmarks, small
/// enough for the hardware predictor's dedicated cache.
#[derive(Debug, Clone, Default)]
pub struct ConfidenceTable {
    /// Row-major square table, grown on demand.
    values: Vec<Vec<f64>>,
    /// When set, sTxIDs are hashed into this many slots instead of
    /// growing the table — the *aliasing* scheme the paper sketches as
    /// future work for programs with unbounded static transaction
    /// counts (§4.2.1). Distinct transactions that share a slot share a
    /// confidence entry (and each other's reputation).
    alias_slots: Option<u32>,
}

impl ConfidenceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bounded table of `slots`×`slots` entries with sTxID
    /// aliasing (the paper's §4.2.1 future-work scheme).
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn with_alias_slots(slots: u32) -> Self {
        assert!(slots > 0, "alias table needs at least one slot");
        Self {
            values: Vec::new(),
            alias_slots: Some(slots),
        }
    }

    fn slot_of(&self, stx: STxId) -> usize {
        match self.alias_slots {
            // Multiplicative hash so adjacent sTxIDs spread over slots.
            Some(slots) => (stx.get().wrapping_mul(0x9E37_79B9) % slots) as usize,
            None => stx.get() as usize,
        }
    }

    /// Confidence that `a` and `b` will conflict (0 if never updated).
    pub fn get(&self, a: STxId, b: STxId) -> f64 {
        self.values
            .get(self.slot_of(a))
            .and_then(|row| row.get(self.slot_of(b)))
            .copied()
            .unwrap_or(0.0)
    }

    /// Adds `delta` to the `(a, b)` entry, clamping at zero.
    pub fn bump(&mut self, a: STxId, b: STxId, delta: f64) {
        let (ai, bi) = (self.slot_of(a), self.slot_of(b));
        let dim = (ai.max(bi) + 1).max(self.values.len());
        if self.values.len() < dim {
            self.values.resize_with(dim, Vec::new);
        }
        for row in &mut self.values {
            if row.len() < dim {
                row.resize(dim, 0.0);
            }
        }
        let e = &mut self.values[ai][bi];
        *e = (*e + delta).max(0.0);
    }

    /// Number of rows currently allocated (highest slot touched + 1).
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Resets every allocated entry to zero — the fault-injection layer's
    /// *reset* poisoning hook (DESIGN.md §9), modelling a confidence store
    /// that loses its learned state mid-run. Returns the number of entries
    /// rewritten. The table's shape (and alias configuration) is untouched.
    pub fn reset_all(&mut self) -> u64 {
        let mut n = 0u64;
        for row in &mut self.values {
            for e in row.iter_mut() {
                *e = 0.0;
                n += 1;
            }
        }
        n
    }

    /// Saturates every allocated entry to `value` — the fault-injection
    /// layer's *saturate* poisoning hook, modelling stuck-high confidence
    /// state (every pair looks certain to conflict, so the scheduler
    /// serialises spuriously). Returns the number of entries rewritten.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN: the table's clamp invariant
    /// (audit I6's sibling — entries never go below zero) must survive
    /// injection.
    pub fn saturate(&mut self, value: f64) -> u64 {
        assert!(
            value >= 0.0,
            "confidence saturation value must be non-negative, got {value}"
        );
        let mut n = 0u64;
        for row in &mut self.values {
            for e in row.iter_mut() {
                *e = value;
                n += 1;
            }
        }
        n
    }

    /// Approximate memory footprint in bytes (the paper quotes ≤800 B for
    /// the STAMP benchmarks).
    pub fn footprint_bytes(&self) -> usize {
        self.values.iter().map(|r| r.len() * 8).sum()
    }
}

/// Per-dTxID statistics (paper Figure 3): average transaction size,
/// smoothed similarity, and the transaction this dTxID last serialised
/// behind.
#[derive(Debug, Clone)]
pub struct TxStat {
    /// Exponentially smoothed read/write-set size in lines.
    pub avg_size: f64,
    /// Exponentially smoothed similarity in `[0, 1]`.
    pub sim: f64,
    /// Commits observed.
    pub commits: u64,
    /// Commits since the last similarity update (small-transaction
    /// batching, §4.2.2).
    pub since_sim_update: u32,
    /// The dTxID this transaction's current attempt serialised behind.
    pub waiting_on: Option<DTxId>,
}

/// The statistics array, keyed by packed dTxID.
#[derive(Debug, Clone)]
pub struct TxStatsTable {
    initial_sim: f64,
    stats: std::collections::BTreeMap<u64, TxStat>,
}

impl TxStatsTable {
    /// Creates an empty table; unmeasured transactions report
    /// `initial_sim` as their similarity (a neutral prior).
    pub fn new(initial_sim: f64) -> Self {
        Self {
            initial_sim,
            stats: std::collections::BTreeMap::new(),
        }
    }

    /// The entry for `dtx`, created on first touch.
    pub fn entry(&mut self, dtx: DTxId) -> &mut TxStat {
        let initial_sim = self.initial_sim;
        self.stats.entry(dtx.pack()).or_insert_with(|| TxStat {
            avg_size: 0.0,
            sim: initial_sim,
            commits: 0,
            since_sim_update: 0,
            waiting_on: None,
        })
    }

    /// Smoothed similarity of `dtx` (`initial_sim` before any commit).
    pub fn sim_of(&self, dtx: DTxId) -> f64 {
        self.stats
            .get(&dtx.pack())
            .map(|s| s.sim)
            .unwrap_or(self.initial_sim)
    }

    /// Smoothed average size of `dtx` (0 before any commit).
    pub fn avg_size_of(&self, dtx: DTxId) -> f64 {
        self.stats
            .get(&dtx.pack())
            .map(|s| s.avg_size)
            .unwrap_or(0.0)
    }

    /// Number of tracked dTxIDs.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True if no dTxID has been tracked yet.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_sim::ThreadId;

    fn dtx(t: usize, s: u32) -> DTxId {
        DTxId::new(ThreadId(t), STxId(s))
    }

    #[test]
    fn confidence_starts_at_zero() {
        let t = ConfidenceTable::new();
        assert_eq!(t.get(STxId(0), STxId(5)), 0.0);
        assert_eq!(t.dim(), 0);
    }

    #[test]
    fn bump_and_get() {
        let mut t = ConfidenceTable::new();
        t.bump(STxId(1), STxId(2), 50.0);
        t.bump(STxId(1), STxId(2), 25.0);
        assert_eq!(t.get(STxId(1), STxId(2)), 75.0);
        assert_eq!(t.get(STxId(2), STxId(1)), 0.0, "table is directional");
    }

    #[test]
    fn bump_clamps_at_zero() {
        let mut t = ConfidenceTable::new();
        t.bump(STxId(0), STxId(0), 10.0);
        t.bump(STxId(0), STxId(0), -50.0);
        assert_eq!(t.get(STxId(0), STxId(0)), 0.0);
    }

    #[test]
    fn table_grows_square() {
        let mut t = ConfidenceTable::new();
        t.bump(STxId(3), STxId(1), 1.0);
        assert_eq!(t.dim(), 4);
        // all rows padded to dim
        t.bump(STxId(0), STxId(3), 2.0);
        assert_eq!(t.get(STxId(0), STxId(3)), 2.0);
    }

    #[test]
    fn footprint_is_compact_for_stamp_scale() {
        let mut t = ConfidenceTable::new();
        // Delaunay has 4 static transactions; 5 rows with padding.
        for a in 0..5u32 {
            for b in 0..5u32 {
                t.bump(STxId(a), STxId(b), 1.0);
            }
        }
        assert!(
            t.footprint_bytes() <= 800,
            "paper quotes <=800B, got {}",
            t.footprint_bytes()
        );
    }

    #[test]
    fn aliased_table_is_bounded() {
        let mut t = ConfidenceTable::with_alias_slots(4);
        for stx in 0..1000u32 {
            t.bump(STxId(stx), STxId(stx + 1), 1.0);
        }
        assert!(
            t.dim() <= 4,
            "aliased table must stay bounded, dim {}",
            t.dim()
        );
        assert!(t.footprint_bytes() <= 4 * 4 * 8);
    }

    #[test]
    fn aliased_transactions_share_entries() {
        let mut t = ConfidenceTable::with_alias_slots(1);
        t.bump(STxId(0), STxId(1), 30.0);
        // With one slot, every pair aliases to the same entry.
        assert_eq!(t.get(STxId(7), STxId(9)), 30.0);
    }

    #[test]
    fn unaliased_table_keeps_entries_distinct() {
        let mut t = ConfidenceTable::new();
        t.bump(STxId(0), STxId(1), 30.0);
        assert_eq!(t.get(STxId(7), STxId(9)), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        ConfidenceTable::with_alias_slots(0);
    }

    #[test]
    fn reset_all_zeroes_every_entry_and_reports_the_count() {
        let mut t = ConfidenceTable::new();
        t.bump(STxId(1), STxId(2), 50.0);
        t.bump(STxId(2), STxId(0), 30.0);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.reset_all(), 9, "3x3 table");
        assert_eq!(t.get(STxId(1), STxId(2)), 0.0);
        assert_eq!(t.get(STxId(2), STxId(0)), 0.0);
        assert_eq!(t.dim(), 3, "shape survives poisoning");
    }

    #[test]
    fn saturate_sets_every_entry() {
        let mut t = ConfidenceTable::new();
        t.bump(STxId(0), STxId(1), 5.0);
        assert_eq!(t.saturate(1000.0), 4, "2x2 table");
        assert_eq!(t.get(STxId(0), STxId(0)), 1000.0);
        assert_eq!(t.get(STxId(1), STxId(0)), 1000.0);
        // Normal updates keep working on top of the poisoned state.
        t.bump(STxId(0), STxId(1), -1500.0);
        assert_eq!(t.get(STxId(0), STxId(1)), 0.0, "clamp still holds");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_saturation_rejected() {
        let mut t = ConfidenceTable::new();
        t.bump(STxId(0), STxId(0), 1.0);
        t.saturate(-1.0);
    }

    #[test]
    fn poisoning_an_empty_table_is_a_noop() {
        let mut t = ConfidenceTable::new();
        assert_eq!(t.reset_all(), 0);
        assert_eq!(t.saturate(10.0), 0);
    }

    #[test]
    fn stats_default_to_prior() {
        let t = TxStatsTable::new(0.5);
        assert_eq!(t.sim_of(dtx(0, 0)), 0.5);
        assert_eq!(t.avg_size_of(dtx(0, 0)), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn entry_creates_and_persists() {
        let mut t = TxStatsTable::new(0.5);
        t.entry(dtx(1, 2)).avg_size = 12.0;
        t.entry(dtx(1, 2)).sim = 0.9;
        assert_eq!(t.avg_size_of(dtx(1, 2)), 12.0);
        assert_eq!(t.sim_of(dtx(1, 2)), 0.9);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_dtx_distinct_entries() {
        let mut t = TxStatsTable::new(0.0);
        t.entry(dtx(0, 1)).sim = 0.1;
        t.entry(dtx(1, 1)).sim = 0.8;
        assert_eq!(t.sim_of(dtx(0, 1)), 0.1);
        assert_eq!(t.sim_of(dtx(1, 1)), 0.8);
        assert_eq!(t.len(), 2);
    }
}
