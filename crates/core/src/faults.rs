//! Declarative manager-level fault configuration (DESIGN.md §9).
//!
//! These knobs drive the two faults that live *inside* the scheduler —
//! Bloom signature corruption and confidence-table poisoning. Cost-model
//! perturbation, the third fault class, is applied at run-configuration
//! time (`bfgts_sim::CostModel::perturbed`) and needs nothing here.
//!
//! Injection is strictly opt-in: [`crate::BfgtsCm::new`] never injects,
//! and a faulted manager draws its randomness from its *own* stream
//! derived from [`CmFaults::seed`], so the engine's and workload's RNG
//! sequences — and therefore every fault-free decision — are untouched.

/// What a confidence-table poisoning event does to the table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoisonMode {
    /// Zero every allocated entry: the scheduler forgets everything it
    /// learned and must re-learn the conflict graph.
    Reset,
    /// Saturate every allocated entry to this value: every pair looks
    /// certain to conflict, so the scheduler serialises spuriously.
    Saturate(f64),
}

/// Fault plan for one [`crate::BfgtsCm`] instance (see
/// [`crate::BfgtsCm::with_faults`]).
///
/// # Example
///
/// ```
/// use bfgts_core::{BfgtsCm, BfgtsConfig, CmFaults, PoisonMode};
///
/// let faults = CmFaults::new(7)
///     .bloom_corruption(25, 16)
///     .poisoning(50, PoisonMode::Saturate(1000.0));
/// let cm = BfgtsCm::with_faults(BfgtsConfig::hw(), faults);
/// assert_eq!(cm.config().variant, bfgts_core::BfgtsVariant::Hw);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmFaults {
    /// Seed of the manager's private fault RNG stream.
    pub seed: u64,
    /// Percent probability (0–100) that each freshly built commit
    /// signature gets false-positive bits forced into it.
    pub bloom_corrupt_pct: u32,
    /// Bit positions forced per corruption event.
    pub bloom_corrupt_bits: u32,
    /// Poison the confidence table every this many commits (0 = never).
    pub poison_period: u64,
    /// What poisoning does.
    pub poison_mode: PoisonMode,
}

impl CmFaults {
    /// A fault plan that injects nothing yet; combine with the builders.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            bloom_corrupt_pct: 0,
            bloom_corrupt_bits: 0,
            poison_period: 0,
            poison_mode: PoisonMode::Reset,
        }
    }

    /// Enables Bloom corruption: with probability `pct`% per commit,
    /// force `bits` random positions into the new signature.
    ///
    /// # Panics
    ///
    /// Panics if `pct > 100`.
    pub fn bloom_corruption(mut self, pct: u32, bits: u32) -> Self {
        assert!(pct <= 100, "corruption rate is a percentage, got {pct}");
        self.bloom_corrupt_pct = pct;
        self.bloom_corrupt_bits = bits;
        self
    }

    /// Enables confidence poisoning every `period` commits.
    pub fn poisoning(mut self, period: u64, mode: PoisonMode) -> Self {
        self.poison_period = period;
        self.poison_mode = mode;
        self
    }

    /// True if this plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        (self.bloom_corrupt_pct > 0 && self.bloom_corrupt_bits > 0) || self.poison_period > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inactive() {
        assert!(!CmFaults::new(0).is_active());
    }

    #[test]
    fn builders_activate_the_plan() {
        assert!(CmFaults::new(0).bloom_corruption(10, 8).is_active());
        assert!(CmFaults::new(0)
            .poisoning(100, PoisonMode::Reset)
            .is_active());
        // Corruption with zero bits can never do anything.
        assert!(!CmFaults::new(0).bloom_corruption(10, 0).is_active());
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn out_of_range_rate_rejected() {
        CmFaults::new(0).bloom_corruption(101, 1);
    }
}
