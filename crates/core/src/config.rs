//! BFGTS configuration.

use bfgts_bloomsig::SignatureKind;

/// Which of the paper's four evaluated BFGTS flavours to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BfgtsVariant {
    /// All scheduling operations in software, including the begin-time
    /// CPU-table scan.
    Sw,
    /// The begin-time scan runs on the per-CPU hardware predictor with
    /// its dedicated confidence cache (§4.1); commit bookkeeping stays in
    /// software.
    Hw,
    /// `Hw` gated by ATS-style conflict pressure (§4.3): below the
    /// pressure threshold neither prediction nor commit bookkeeping runs.
    HwBackoff,
    /// Idealised best case (§5.1): every scheduling operation completes
    /// in one cycle and similarity is computed from perfect (exact-set)
    /// signatures.
    NoOverhead,
}

impl BfgtsVariant {
    /// Report label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            BfgtsVariant::Sw => "BFGTS-SW",
            BfgtsVariant::Hw => "BFGTS-HW",
            BfgtsVariant::HwBackoff => "BFGTS-HW/Backoff",
            BfgtsVariant::NoOverhead => "BFGTS-NoOverhead",
        }
    }
}

/// Full parameter set of a BFGTS manager.
///
/// Defaults reflect the paper's evaluation: 2048-bit Bloom filters with
/// 4 hash functions, similarity updates for small transactions every 20
/// commits, small transactions defined as ≤10 cache lines, a pressure
/// threshold of 0.25 with heavily past-biased smoothing.
#[derive(Debug, Clone, PartialEq)]
pub struct BfgtsConfig {
    /// Which flavour to run.
    pub variant: BfgtsVariant,
    /// Signature representation used for similarity estimation.
    pub signature: SignatureKind,
    /// Bloom hash-function count (`k`).
    pub bloom_hashes: u32,
    /// Confidence above which a predicted conflict serialises.
    pub conf_threshold: f64,
    /// Base confidence increment; scaled by similarity on every conflict
    /// (paper Example 3: `inc = incVal·sim`).
    pub inc_val: f64,
    /// Base confidence decay at suspend; scaled by dissimilarity (paper
    /// Example 2: `decay = decayVal·(1−sim)`).
    pub decay_val: f64,
    /// Base confidence decrement for unjustified waits at commit (paper
    /// Example 4: `dec = decVal·(1−sim)`).
    pub dec_val: f64,
    /// Transactions whose average read/write set is at most this many
    /// lines are "small" (paper: 10 lines). Controls commit-time
    /// similarity-update batching.
    pub small_tx_size: f64,
    /// Predicted-conflict waits *yield* (switch threads) when the target
    /// transaction's average size exceeds this many lines, and *spin*
    /// otherwise (the paper's `suspendTx` stall-vs-yield choice). The
    /// paper reuses its 10-line small-transaction bound; on this
    /// simulator's cost model (3-cycle transactional accesses vs a
    /// 2000-cycle context switch) the economic crossover sits far
    /// higher, so the default keeps short waits spinning.
    pub yield_wait_threshold: f64,
    /// Small transactions update similarity once every this many commits
    /// (paper: 20).
    pub small_tx_interval: u32,
    /// Past-history weight of the conflict-pressure moving average
    /// (HwBackoff only; paper: "heavily biases past history").
    pub pressure_alpha: f64,
    /// Pressure above which BFGTS engages (HwBackoff only; paper: 0.25).
    pub pressure_threshold: f64,
    /// Post-abort backoff window in cycles (jittered, doubled per retry).
    pub backoff_window: u64,
    /// Similarity assumed for a transaction before any measurement.
    pub initial_sim: f64,
    /// When false, confidence updates ignore similarity and use the raw
    /// `inc_val`/`decay_val`/`dec_val` constants (ablation of the paper's
    /// central idea; PTS-style updates).
    pub similarity_weighting: bool,
    /// Bound the confidence table to `n`×`n` slots with sTxID hashing
    /// (the paper's §4.2.1 future-work *aliasing* scheme for programs
    /// with very many static transactions). `None` (the default) grows
    /// the exact table as the paper evaluates it.
    pub alias_slots: Option<u32>,
}

impl BfgtsConfig {
    fn base(variant: BfgtsVariant) -> Self {
        Self {
            variant,
            signature: match variant {
                BfgtsVariant::NoOverhead => SignatureKind::Perfect,
                _ => SignatureKind::Bloom { bits: 2048 },
            },
            bloom_hashes: 4,
            conf_threshold: 100.0,
            inc_val: 80.0,
            decay_val: 30.0,
            dec_val: 40.0,
            small_tx_size: 10.0,
            yield_wait_threshold: 600.0,
            small_tx_interval: 20,
            pressure_alpha: 0.9,
            pressure_threshold: 0.25,
            backoff_window: 300,
            initial_sim: 0.5,
            similarity_weighting: true,
            alias_slots: None,
        }
    }

    /// The all-software variant.
    pub fn sw() -> Self {
        Self::base(BfgtsVariant::Sw)
    }

    /// The hardware-accelerated variant.
    pub fn hw() -> Self {
        Self::base(BfgtsVariant::Hw)
    }

    /// The pressure-gated hybrid.
    pub fn hw_backoff() -> Self {
        Self::base(BfgtsVariant::HwBackoff)
    }

    /// The idealised zero-overhead variant (perfect signatures).
    pub fn no_overhead() -> Self {
        Self::base(BfgtsVariant::NoOverhead)
    }

    /// Sets the Bloom filter size in bits (the paper sweeps 512–8192).
    /// Ignored by `NoOverhead`, which uses perfect signatures.
    pub fn bloom_bits(mut self, bits: u32) -> Self {
        if self.variant != BfgtsVariant::NoOverhead {
            self.signature = SignatureKind::Bloom { bits };
        }
        self
    }

    /// Sets the small-transaction similarity update interval (§5.3.2).
    pub fn small_tx_interval(mut self, every: u32) -> Self {
        self.small_tx_interval = every;
        self
    }

    /// Disables similarity weighting (ablation).
    pub fn without_similarity_weighting(mut self) -> Self {
        self.similarity_weighting = false;
        self
    }

    /// Bounds the confidence table with sTxID aliasing (§4.2.1 future
    /// work).
    pub fn with_alias_slots(mut self, slots: u32) -> Self {
        self.alias_slots = Some(slots);
        self
    }

    /// Bloom filter size in bits, if the configuration uses Bloom
    /// signatures.
    pub fn bloom_bits_get(&self) -> Option<u32> {
        match self.signature {
            SignatureKind::Bloom { bits } => Some(bits),
            SignatureKind::Perfect => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels_match_paper() {
        assert_eq!(BfgtsVariant::Sw.label(), "BFGTS-SW");
        assert_eq!(BfgtsVariant::Hw.label(), "BFGTS-HW");
        assert_eq!(BfgtsVariant::HwBackoff.label(), "BFGTS-HW/Backoff");
        assert_eq!(BfgtsVariant::NoOverhead.label(), "BFGTS-NoOverhead");
    }

    #[test]
    fn no_overhead_uses_perfect_signatures() {
        let cfg = BfgtsConfig::no_overhead();
        assert_eq!(cfg.signature, SignatureKind::Perfect);
        // bloom_bits is a no-op for NoOverhead
        let cfg = cfg.bloom_bits(512);
        assert_eq!(cfg.signature, SignatureKind::Perfect);
        assert_eq!(cfg.bloom_bits_get(), None);
    }

    #[test]
    fn bloom_bits_builder() {
        let cfg = BfgtsConfig::hw().bloom_bits(8192);
        assert_eq!(cfg.bloom_bits_get(), Some(8192));
    }

    #[test]
    fn defaults_match_paper_parameters() {
        let cfg = BfgtsConfig::hw_backoff();
        assert_eq!(cfg.small_tx_interval, 20);
        assert_eq!(cfg.small_tx_size, 10.0);
        assert_eq!(cfg.pressure_threshold, 0.25);
        assert!(cfg.pressure_alpha >= 0.75, "past history heavily biased");
        assert!(cfg.similarity_weighting);
    }

    #[test]
    fn ablation_builder() {
        let cfg = BfgtsConfig::hw().without_similarity_weighting();
        assert!(!cfg.similarity_weighting);
    }

    #[test]
    fn alias_builder() {
        assert_eq!(BfgtsConfig::hw().alias_slots, None);
        assert_eq!(BfgtsConfig::hw().with_alias_slots(8).alias_slots, Some(8));
    }
}
