//! End-to-end accounting audit over the BFGTS manager variants.
//!
//! Each run records a full event trace and replays it through
//! `bfgts_trace::audit` (invariants I1–I7 of DESIGN.md §8). On top of the
//! engine-level accounting checks this exercises the manager-specific
//! events: every confidence update must be recomputable bit-for-bit from
//! its recorded similarity inputs (I5), and every Bloom intersection
//! sample must show the clamp contract was applied (I6).

use bfgts_core::{BfgtsCm, BfgtsConfig};
use bfgts_htm::{run_workload, Access, STxId, ScriptSource, TmRunConfig, TmRunReport, TxInstance};
use bfgts_sim::TraceMode;

/// Threads repeatedly running the same static transactions over an
/// overlapping line window: plenty of conflicts, suspensions and repeat
/// commits (the latter are what produce Bloom similarity samples).
fn contentious_scripts(threads: usize, txs_per_thread: usize) -> Vec<ScriptSource> {
    (0..threads)
        .map(|t| {
            let txs = (0..txs_per_thread)
                .map(|i| {
                    // 12 distinct lines per transaction: above the
                    // small-tx batching threshold, so repeat commits run
                    // the Bloom similarity update every time. Odd threads
                    // walk the shared window in reverse so lock orders
                    // cross and some conflicts resolve by abort (which is
                    // what drives confidence updates), not just stalls.
                    let accesses = (0..12u64)
                        .map(|k| {
                            let step = if t % 2 == 0 { k } else { 11 - k };
                            Access {
                                addr: ((i as u64 + step) % 16).into(),
                                is_write: true,
                            }
                        })
                        .collect();
                    TxInstance::new(STxId((i % 2) as u32), accesses, 30)
                })
                .collect();
            ScriptSource::new(txs)
        })
        .collect()
}

fn run_traced(cfg: BfgtsConfig) -> TmRunReport {
    let run = TmRunConfig::new(2, 4)
        .seed(0x00D0_0D1E)
        .trace(TraceMode::Full);
    run_workload(&run, contentious_scripts(4, 6), Box::new(BfgtsCm::new(cfg)))
}

#[test]
fn sw_variant_trace_passes_the_audit() {
    let report = run_traced(BfgtsConfig::sw());
    let summary = report.audit_or_panic();
    assert_eq!(summary.commits, report.stats.commits());
    assert_eq!(summary.aborts, report.stats.aborts());
    assert!(summary.conf_updates > 0, "conflicts must update confidence");
}

#[test]
fn hw_variant_trace_passes_the_audit_with_bloom_samples() {
    let report = run_traced(BfgtsConfig::hw());
    let summary = report.audit_or_panic();
    assert!(
        summary.bloom_samples > 0,
        "repeat commits of one dTx must sample the Bloom intersection"
    );
    assert!(summary.conf_updates > 0);
}

#[test]
fn hybrid_variant_trace_passes_the_audit() {
    let report = run_traced(BfgtsConfig::hw_backoff());
    report.audit_or_panic();
}

#[test]
fn no_overhead_variant_trace_passes_the_audit() {
    let report = run_traced(BfgtsConfig::no_overhead());
    report.audit_or_panic();
}

#[test]
fn ablated_similarity_trace_passes_the_audit() {
    // With similarity weighting ablated the manager records both inputs
    // as the constant 1.0; the audit's recomputed pairing is exactly 1.0,
    // so the bit-exact check still holds.
    let report = run_traced(BfgtsConfig::hw().without_similarity_weighting());
    let summary = report.audit_or_panic();
    assert!(summary.conf_updates > 0);
}
