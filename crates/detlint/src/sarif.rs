//! SARIF 2.1.0 output (`--sarif PATH`).
//!
//! SARIF (Static Analysis Results Interchange Format) is the exchange
//! format CI forges ingest for code-scanning annotations. The emitter
//! covers the slice of the spec a single-tool, single-run lint needs:
//! one `run` with driver metadata, per-rule descriptors, and one
//! `result` per diagnostic with a physical location. Like `--json`,
//! the output is built on the canonical [`Json`] type, so key order is
//! deterministic and the artifact is byte-stable for a given scan.

use crate::engine::Diagnostic;
use crate::rules::{Severity, RULES};
use bfgts_bench::json::Json;

/// Maps detlint severities onto SARIF `level` values.
fn level(s: Severity) -> &'static str {
    match s {
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

/// Builds the complete SARIF 2.1.0 document for one lint run.
pub fn sarif_report(diags: &[Diagnostic]) -> Json {
    let rules: Vec<Json> = RULES
        .iter()
        .map(|(code, desc)| {
            Json::obj([
                ("id", Json::Str((*code).into())),
                (
                    "shortDescription",
                    Json::obj([("text", Json::Str((*desc).into()))]),
                ),
            ])
        })
        .collect();

    let results: Vec<Json> = diags
        .iter()
        .map(|d| {
            let mut region = vec![("startLine", Json::UInt(u64::from(d.line.max(1))))];
            if d.col > 0 {
                region.push(("startColumn", Json::UInt(u64::from(d.col))));
            }
            let mut text = d.message.clone();
            if !d.hint.is_empty() {
                text.push_str(" — hint: ");
                text.push_str(&d.hint);
            }
            Json::obj([
                ("ruleId", Json::Str(d.code.clone())),
                ("level", Json::Str(level(d.severity).into())),
                ("message", Json::obj([("text", Json::Str(text))])),
                (
                    "locations",
                    Json::Arr(vec![Json::obj([(
                        "physicalLocation",
                        Json::obj([
                            (
                                "artifactLocation",
                                Json::obj([("uri", Json::Str(d.file.clone()))]),
                            ),
                            ("region", Json::obj(region)),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();

    let driver = Json::obj([
        ("name", Json::Str("detlint".into())),
        (
            "informationUri",
            Json::Str("https://github.com/bfgts-repro".into()),
        ),
        ("version", Json::Str(env!("CARGO_PKG_VERSION").into())),
        ("rules", Json::Arr(rules)),
    ]);

    Json::obj([
        (
            "$schema",
            Json::Str(
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                    .into(),
            ),
        ),
        ("version", Json::Str("2.1.0".into())),
        (
            "runs",
            Json::Arr(vec![Json::obj([
                ("tool", Json::obj([("driver", driver)])),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: &str, sev: Severity, col: u32) -> Diagnostic {
        Diagnostic {
            code: code.into(),
            severity: sev,
            file: "crates/sim/src/engine.rs".into(),
            line: 42,
            col,
            message: "something".into(),
            hint: "fix it".into(),
        }
    }

    #[test]
    fn sarif_shape_round_trips() {
        let doc = sarif_report(&[
            diag("P001", Severity::Error, 7),
            diag("W002", Severity::Warning, 0),
        ]);
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = parsed.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 1);
        let results = runs[0].get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(Json::as_str),
            Some("P001")
        );
        assert_eq!(
            results[0].get("level").and_then(Json::as_str),
            Some("error")
        );
        // col 0 (whole-line diagnostics) must not emit startColumn 0 —
        // SARIF columns are 1-based.
        let region = results[1].get("locations").and_then(Json::as_arr).unwrap()[0]
            .get("physicalLocation")
            .and_then(|p| p.get("region"))
            .unwrap();
        assert!(region.get("startColumn").is_none());
        assert_eq!(region.get("startLine").and_then(Json::as_u64), Some(42));
    }

    #[test]
    fn every_rule_family_is_described() {
        let doc = sarif_report(&[]);
        let text = doc.to_string();
        for code in ["D001", "P001", "A001", "T001"] {
            assert!(text.contains(code), "missing {code}");
        }
    }
}
