//! A lightweight Rust lexer: just enough token structure for the
//! determinism rules, with none of `syn`'s weight (the build must work
//! against an offline registry).
//!
//! The scanner understands the constructs that would otherwise produce
//! false positives in a plain text search: line and (nested) block
//! comments, cooked/raw/byte string literals, char literals vs.
//! lifetimes, and raw identifiers. Everything else becomes a flat token
//! stream of identifiers, numbers and punctuation with 1-based
//! line/column positions. Comments are returned separately because they
//! carry the waiver syntax.

/// Kind of a lexed code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `static`, `mut`, ...).
    Ident,
    /// A numeric literal.
    Number,
    /// A string literal (cooked, raw or byte). `text` holds the raw
    /// content between the quotes (escapes not processed) so rules can
    /// match exact literals, but `Str` tokens never match `is_ident`,
    /// so identifier rules still ignore string contents.
    Str,
    /// A char or byte-char literal.
    CharLit,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation. `::` and `+=` are single tokens; everything else is
    /// one character per token.
    Punct,
}

/// One code token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (for string literals: the raw content between
    /// the quotes, escapes unprocessed).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (bytes).
    pub col: u32,
}

impl Token {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True if this is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// A comment (the carrier of `detlint: allow(...)` waivers).
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment body, leading `//`/`/*` markers stripped.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True if a code token precedes the comment on its line (a
    /// trailing comment waives its own line; a standalone comment
    /// waives the next code line).
    pub trailing: bool,
    /// True for doc comments (`///`, `//!`, `/**`, `/*!`). Doc comments
    /// are documentation, not annotations: they never carry waivers, so
    /// example waiver syntax in docs stays inert.
    pub doc: bool,
}

/// A lexed source file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The code tokens, in source order.
    pub tokens: Vec<Token>,
    /// The comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source text.
///
/// Unterminated strings or block comments yield `Err((line, message))`;
/// anything else is tolerated (the lexer is a linter front-end, not a
/// compiler, so unknown bytes become single-character punctuation).
pub fn lex(src: &str) -> Result<Lexed, (u32, String)> {
    let mut cur = Cursor {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    let mut last_code_line = 0u32;

    while let Some(c) = cur.peek() {
        if c.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let (line, col) = (cur.line, cur.col);

        if cur.starts_with("//") {
            cur.bump_n(2);
            let mut doc = false;
            while matches!(cur.peek(), Some(b'/') | Some(b'!')) {
                doc = true;
                cur.bump(); // doc-comment markers
            }
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if ch == b'\n' {
                    break;
                }
                text.push(cur.bump_char());
            }
            out.comments.push(Comment {
                text: text.trim().to_string(),
                line,
                trailing: last_code_line == line,
                doc,
            });
            continue;
        }

        if cur.starts_with("/*") {
            cur.bump_n(2);
            let doc = matches!(cur.peek(), Some(b'*') | Some(b'!'));
            let mut depth = 1u32;
            let mut text = String::new();
            while depth > 0 {
                if cur.starts_with("/*") {
                    cur.bump_n(2);
                    depth += 1;
                } else if cur.starts_with("*/") {
                    cur.bump_n(2);
                    depth -= 1;
                } else if cur.peek().is_some() {
                    text.push(cur.bump_char());
                } else {
                    return Err((line, "unterminated block comment".into()));
                }
            }
            out.comments.push(Comment {
                text: text.trim().to_string(),
                line,
                trailing: last_code_line == line,
                doc,
            });
            continue;
        }

        // Raw strings / byte strings / raw identifiers, before plain
        // identifiers would swallow the `r`/`b` prefix.
        if c == b'r' || c == b'b' {
            if let Some(tok) = lex_raw_or_byte(&mut cur, line, col)? {
                last_code_line = line;
                out.tokens.push(tok);
                continue;
            }
        }

        let tok = if c == b'"' {
            lex_cooked_string(&mut cur, line, col)?
        } else if c == b'\'' {
            lex_char_or_lifetime(&mut cur, line, col)?
        } else if c == b'_' || c.is_ascii_alphabetic() {
            lex_ident(&mut cur, line, col)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur, line, col)
        } else if cur.starts_with("::") || cur.starts_with("+=") {
            let text = format!("{}{}", cur.bump_char(), cur.bump_char());
            Token {
                kind: TokKind::Punct,
                text,
                line,
                col,
            }
        } else {
            Token {
                kind: TokKind::Punct,
                text: cur.bump_char().to_string(),
                line,
                col,
            }
        };
        last_code_line = line;
        out.tokens.push(tok);
    }
    Ok(out)
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn peek_at(&self, k: usize) -> Option<u8> {
        self.b.get(self.i + k).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.b[self.i..].starts_with(s.as_bytes())
    }

    /// Consumes one byte, maintaining line/col.
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes one full UTF-8 scalar and returns it (for copying text).
    fn bump_char(&mut self) -> char {
        let rest = &self.b[self.i..];
        let s = std::str::from_utf8(rest).unwrap_or("\u{fffd}");
        let c = s.chars().next().unwrap_or('\u{fffd}');
        self.bump_n(c.len_utf8());
        c
    }
}

fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

fn lex_ident(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while cur.peek().is_some_and(is_ident_char) {
        text.push(cur.bump_char());
    }
    Token {
        kind: TokKind::Ident,
        text,
        line,
        col,
    }
}

fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while cur.peek().is_some_and(is_ident_char) {
        text.push(cur.bump_char());
    }
    // Fractional part: `.` followed by a digit (leaves `0..10` alone).
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        text.push(cur.bump_char());
        while cur.peek().is_some_and(is_ident_char) {
            text.push(cur.bump_char());
        }
    }
    // Signed exponent: `1e-3` / `2.5E+10`.
    if (text.ends_with('e') || text.ends_with('E'))
        && matches!(cur.peek(), Some(b'+') | Some(b'-'))
        && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
    {
        text.push(cur.bump_char());
        while cur.peek().is_some_and(|c| c.is_ascii_digit()) {
            text.push(cur.bump_char());
        }
    }
    Token {
        kind: TokKind::Number,
        text,
        line,
        col,
    }
}

fn lex_cooked_string(cur: &mut Cursor, line: u32, col: u32) -> Result<Token, (u32, String)> {
    cur.bump(); // opening quote
    let mut text = String::new();
    loop {
        match cur.peek() {
            None => return Err((line, "unterminated string literal".into())),
            Some(b'"') => {
                cur.bump();
                break;
            }
            Some(b'\\') => {
                text.push(cur.bump_char());
                if cur.peek().is_some() {
                    text.push(cur.bump_char());
                }
            }
            Some(_) => {
                text.push(cur.bump_char());
            }
        }
    }
    Ok(Token {
        kind: TokKind::Str,
        text,
        line,
        col,
    })
}

/// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'` and raw
/// identifiers (`r#type`). Returns `Ok(None)` when the `r`/`b` is just
/// the start of a plain identifier.
fn lex_raw_or_byte(cur: &mut Cursor, line: u32, col: u32) -> Result<Option<Token>, (u32, String)> {
    let mut j = 1; // bytes of prefix consumed so far (the `r` or `b`)
    let first = cur.peek().unwrap();
    if first == b'b' && cur.peek_at(1) == Some(b'r') {
        j = 2;
    }
    let raw = first == b'r' || j == 2;

    if raw {
        let mut hashes = 0usize;
        while cur.peek_at(j + hashes) == Some(b'#') {
            hashes += 1;
        }
        if cur.peek_at(j + hashes) == Some(b'"') {
            cur.bump_n(j + hashes + 1);
            let closer = format!("\"{}", "#".repeat(hashes));
            let mut text = String::new();
            loop {
                if cur.starts_with(&closer) {
                    cur.bump_n(closer.len());
                    break;
                }
                if cur.peek().is_none() {
                    return Err((line, "unterminated raw string literal".into()));
                }
                text.push(cur.bump_char());
            }
            return Ok(Some(Token {
                kind: TokKind::Str,
                text,
                line,
                col,
            }));
        }
        // `r#ident`: lex as the identifier it escapes.
        if first == b'r'
            && hashes == 1
            && cur
                .peek_at(j + 1)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphabetic())
        {
            cur.bump_n(2);
            return Ok(Some(lex_ident(cur, line, col)));
        }
        return Ok(None);
    }

    // Plain byte string or byte char: `b"..."` / `b'x'`.
    if cur.peek_at(1) == Some(b'"') {
        cur.bump();
        return lex_cooked_string(cur, line, col).map(Some);
    }
    if cur.peek_at(1) == Some(b'\'') {
        cur.bump();
        return lex_char_or_lifetime(cur, line, col).map(Some);
    }
    Ok(None)
}

fn lex_char_or_lifetime(cur: &mut Cursor, line: u32, col: u32) -> Result<Token, (u32, String)> {
    cur.bump(); // opening quote
                // Lifetime: `'ident` not followed by a closing quote.
    if cur
        .peek()
        .is_some_and(|c| c == b'_' || c.is_ascii_alphabetic())
    {
        let mut k = 1;
        while cur.peek_at(k).is_some_and(is_ident_char) {
            k += 1;
        }
        if cur.peek_at(k) != Some(b'\'') {
            let mut text = String::new();
            while cur.peek().is_some_and(is_ident_char) {
                text.push(cur.bump_char());
            }
            return Ok(Token {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
            });
        }
    }
    // Char literal: consume (with escapes) to the closing quote.
    loop {
        match cur.peek() {
            None => return Err((line, "unterminated char literal".into())),
            Some(b'\'') => {
                cur.bump();
                break;
            }
            Some(b'\\') => {
                cur.bump();
                cur.bump();
            }
            Some(_) => {
                cur.bump();
            }
        }
    }
    Ok(Token {
        kind: TokKind::CharLit,
        text: String::new(),
        line,
        col,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn identifiers_and_positions() {
        let l = lex("let map = HashMap::new();").unwrap();
        let hm = l.tokens.iter().find(|t| t.is_ident("HashMap")).unwrap();
        assert_eq!((hm.line, hm.col), (1, 11));
        assert!(l.tokens.iter().any(|t| t.is_punct("::")));
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let s = "HashMap::new()";"#), vec!["let", "s"]);
        assert_eq!(idents(r##"let s = r#"HashSet"#;"##), vec!["let", "s"]);
        assert_eq!(idents(r#"let s = b"HashMap";"#), vec!["let", "s"]);
    }

    #[test]
    fn strings_retain_raw_content() {
        let strs = |src: &str| -> Vec<String> {
            lex(src)
                .unwrap()
                .tokens
                .into_iter()
                .filter(|t| t.kind == TokKind::Str)
                .map(|t| t.text)
                .collect()
        };
        assert_eq!(strs(r#"let s = "tx_begin";"#), vec!["tx_begin"]);
        assert_eq!(
            strs(r##"let s = r#"raw "inner""#;"##),
            vec![r#"raw "inner""#]
        );
        // Escapes are kept raw, not processed.
        assert_eq!(strs(r#"let s = "a\"b";"#), vec![r#"a\"b"#]);
    }

    #[test]
    fn comments_are_separated_from_code() {
        let l = lex("let x = 1; // HashMap here\n/* and\nHashSet there */ let y = 2;").unwrap();
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[0].text, "HashMap here");
    }

    #[test]
    fn doc_comments_are_comments() {
        let l = lex("/// uses HashMap internally\nfn f() {}").unwrap();
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(l.comments[0].text, "uses HashMap internally");
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ fn f() {}").unwrap();
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ x"), vec!["x"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }").unwrap();
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::CharLit)
                .count(),
            1
        );
        // 'static is a lifetime, not an unterminated char
        assert!(lex("&'static str").is_ok());
    }

    #[test]
    fn escaped_quotes_and_chars() {
        assert_eq!(
            idents(r#"let a = "\""; let c = '\''; done"#)
                .last()
                .unwrap(),
            "done"
        );
    }

    #[test]
    fn numbers_including_ranges_and_floats() {
        let l = lex("for i in 0..10 { let x = 1.5e-3 + 0xFF; }").unwrap();
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3", "0xFF"]);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn compound_puncts() {
        let l = lex("x += 1; y::z").unwrap();
        assert!(l.tokens.iter().any(|t| t.is_punct("+=")));
        assert!(l.tokens.iter().any(|t| t.is_punct("::")));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("let s = \"oops").is_err());
        assert!(lex("/* never closed").is_err());
    }
}
