//! Waiver handling, diagnostic assembly and output formats.
//!
//! Waiver syntax (the reason is mandatory):
//!
//! ```text
//! let t = Instant::now(); // detlint: allow(D002) -- bench timing only
//! // detlint: allow(D001,D004) -- same-process hash comparison
//! use std::collections::hash_map::DefaultHasher;
//! ```
//!
//! A trailing waiver covers its own line; a standalone waiver covers
//! the next line that contains code. Waivers that match nothing (W002)
//! or don't parse (W001) are themselves diagnostics, so waivers cannot
//! rot silently — and under `--workspace`, W002 is a hard error.

use crate::itemtree::ItemTree;
use crate::lexer::{lex, Comment, Lexed};
use crate::rules::{is_waivable, run_rules, RawDiag, ScanCtx, Severity};
use bfgts_bench::json::Json;

/// A finished diagnostic, ready to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule code (`D001`.., `P001`.., `A001`, `T001`.., `W001`/`W002`
    /// for waiver problems, `E001` for files the lexer cannot read).
    pub code: String,
    /// Hot-path/contract error or advisory warning. Both fail the
    /// lint; see [`Severity`].
    pub severity: Severity,
    /// Path as displayed (workspace-relative for `--workspace` runs).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (0 when the diagnostic covers a whole line).
    pub col: u32,
    /// What was found.
    pub message: String,
    /// How to fix it (may be empty).
    pub hint: String,
}

impl Diagnostic {
    /// Renders the `file:line:col [CODE:severity] message` form used by
    /// both the CLI and the fixture goldens, plus an indented hint line
    /// if any.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}:{}:{} [{}:{}] {}",
            self.file,
            self.line,
            self.col,
            self.code,
            self.severity.as_str(),
            self.message
        );
        if !self.hint.is_empty() {
            s.push_str("\n    hint: ");
            s.push_str(&self.hint);
        }
        s
    }
}

/// Scan result for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Non-waived diagnostics, sorted by position.
    pub diags: Vec<Diagnostic>,
    /// Number of diagnostics suppressed by valid waivers.
    pub waived: u32,
}

/// A parsed waiver annotation.
#[derive(Debug)]
struct Waiver {
    codes: Vec<String>,
    /// The code line this waiver covers (0 = nothing; always unused).
    target_line: u32,
    /// Where the waiver itself lives (for W002 reporting).
    comment_line: u32,
    used: bool,
}

enum WaiverParse {
    NotAWaiver,
    Parsed(Vec<String>),
    Malformed(String),
}

const WAIVER_MARKER: &str = "detlint:";

fn parse_waiver(comment: &str) -> WaiverParse {
    let Some(pos) = comment.find(WAIVER_MARKER) else {
        return WaiverParse::NotAWaiver;
    };
    let rest = comment[pos + WAIVER_MARKER.len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return WaiverParse::Malformed("expected `allow(CODE, ...)` after `detlint:`".into());
    };
    let Some(rest) = rest.trim_start().strip_prefix('(') else {
        return WaiverParse::Malformed("expected `(` after `allow`".into());
    };
    let Some(close) = rest.find(')') else {
        return WaiverParse::Malformed("unclosed `allow(` list".into());
    };
    let mut codes = Vec::new();
    for code in rest[..close].split(',') {
        let code = code.trim();
        if !is_waivable(code) {
            return WaiverParse::Malformed(format!("`{code}` is not a waivable rule code"));
        }
        codes.push(code.to_string());
    }
    let after = rest[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix("--") else {
        return WaiverParse::Malformed("missing `-- <reason>`; the reason is mandatory".into());
    };
    if reason.trim().is_empty() {
        return WaiverParse::Malformed("empty waiver reason; the reason is mandatory".into());
    }
    WaiverParse::Parsed(codes)
}

/// The code line a standalone comment on `comment_line` covers: the
/// first line after it that holds a code token.
fn next_code_line(lexed: &Lexed, comment_line: u32) -> u32 {
    lexed
        .tokens
        .iter()
        .map(|t| t.line)
        .find(|&l| l > comment_line)
        .unwrap_or(0)
}

/// Scans one file's source text.
///
/// `file` is used verbatim in diagnostics. `extra` carries raw
/// diagnostics produced outside the per-file rules — the cross-file
/// trace-contract pass (T-rules) anchors its findings at enum-variant
/// lines in `event.rs` and routes them through here so waivers and
/// W002 accounting treat every family identically. Fixture tests and
/// `--self-test` call this directly.
pub fn scan_source(file: &str, src: &str, ctx: &ScanCtx, extra: &[RawDiag]) -> FileReport {
    let lexed = match lex(src) {
        Ok(l) => l,
        Err((line, msg)) => {
            return FileReport {
                diags: vec![Diagnostic {
                    code: "E001".into(),
                    severity: Severity::Error,
                    file: file.into(),
                    line,
                    col: 0,
                    message: format!("cannot lex file: {msg}"),
                    hint: String::new(),
                }],
                waived: 0,
            }
        }
    };

    let mut report = FileReport::default();
    let mut waivers: Vec<Waiver> = Vec::new();
    for c in &lexed.comments {
        if c.doc {
            continue; // docs never carry waivers (example syntax stays inert)
        }
        match parse_waiver(&c.text) {
            WaiverParse::NotAWaiver => {}
            WaiverParse::Parsed(codes) => waivers.push(Waiver {
                codes,
                target_line: waiver_target(&lexed, c),
                comment_line: c.line,
                used: false,
            }),
            WaiverParse::Malformed(why) => report.diags.push(Diagnostic {
                code: "W001".into(),
                severity: Severity::Warning,
                file: file.into(),
                line: c.line,
                col: 0,
                message: format!("malformed detlint waiver: {why}"),
                hint: "write `// detlint: allow(D00X) -- <reason>`".into(),
            }),
        }
    }

    let tree = ItemTree::build(&lexed.tokens);
    let mut raws = run_rules(&lexed.tokens, &tree, ctx);
    raws.extend(extra.iter().cloned());
    for raw in raws {
        let waiver = waivers
            .iter_mut()
            .find(|w| w.target_line == raw.line && w.codes.iter().any(|c| c == raw.code));
        if let Some(w) = waiver {
            w.used = true;
            report.waived += 1;
        } else {
            report.diags.push(Diagnostic {
                code: raw.code.into(),
                severity: raw.severity,
                file: file.into(),
                line: raw.line,
                col: raw.col,
                message: raw.message,
                hint: raw.hint.into(),
            });
        }
    }

    for w in &waivers {
        if !w.used {
            // Stale waivers are debt: advisory in single-file runs,
            // a hard error across the workspace.
            let severity = if ctx.workspace {
                Severity::Error
            } else {
                Severity::Warning
            };
            report.diags.push(Diagnostic {
                code: "W002".into(),
                severity,
                file: file.into(),
                line: w.comment_line,
                col: 0,
                message: format!("unused waiver for {}", w.codes.join(",")),
                hint: "remove the waiver, or move it onto the line it is meant to cover".into(),
            });
        }
    }

    report
        .diags
        .sort_by(|a, b| (a.line, a.col, &a.code).cmp(&(b.line, b.col, &b.code)));
    report
}

fn waiver_target(lexed: &Lexed, c: &Comment) -> u32 {
    if c.trailing {
        c.line
    } else {
        next_code_line(lexed, c.line)
    }
}

/// Builds the machine-readable report for `--json`.
pub fn json_report(diags: &[Diagnostic], files_scanned: usize, waived: u32) -> Json {
    let items: Vec<Json> = diags
        .iter()
        .map(|d| {
            Json::obj([
                ("code", Json::Str(d.code.clone())),
                ("severity", Json::Str(d.severity.as_str().into())),
                ("file", Json::Str(d.file.clone())),
                ("line", Json::UInt(u64::from(d.line))),
                ("col", Json::UInt(u64::from(d.col))),
                ("message", Json::Str(d.message.clone())),
                ("hint", Json::Str(d.hint.clone())),
            ])
        })
        .collect();
    let rules: Vec<Json> = crate::rules::RULES
        .iter()
        .map(|(code, desc)| {
            Json::obj([
                ("code", Json::Str((*code).into())),
                ("description", Json::Str((*desc).into())),
            ])
        })
        .collect();
    Json::obj([
        ("tool", Json::Str("detlint".into())),
        ("schema_version", Json::UInt(2)),
        ("files_scanned", Json::UInt(files_scanned as u64)),
        ("waived", Json::UInt(u64::from(waived))),
        ("diagnostics", Json::Arr(items)),
        ("rules", Json::Arr(rules)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::CrateClass;

    fn ctx() -> ScanCtx<'static> {
        ScanCtx {
            class: CrateClass::Critical,
            crate_name: "testcrate",
            workspace: false,
            test_file: false,
        }
    }

    fn scan(src: &str) -> FileReport {
        scan_source("t.rs", src, &ctx(), &[])
    }

    fn codes(r: &FileReport) -> Vec<&str> {
        r.diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn trailing_waiver_covers_its_line() {
        let r = scan("let t = Instant::now(); // detlint: allow(D002) -- bench timing\n");
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn standalone_waiver_covers_next_code_line() {
        let r = scan(
            "// detlint: allow(D001) -- membership only, order never read\n\
             // (more prose in between is fine)\n\
             use std::collections::HashSet;\n",
        );
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn waiver_covers_multiple_diags_on_one_line() {
        let r = scan(
            "// detlint: allow(D001,D004) -- test-only hasher comparison\n\
             use std::collections::hash_map::DefaultHasher;\n",
        );
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        assert_eq!(r.waived, 2);
    }

    #[test]
    fn waiver_for_wrong_code_does_not_suppress() {
        let r = scan("let t = Instant::now(); // detlint: allow(D001) -- wrong code\n");
        // W002 carries col 0, so it sorts ahead of the D002 at col 9.
        assert_eq!(codes(&r), vec!["W002", "D002"]);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let r = scan("// detlint: allow(D001)\nuse std::collections::HashSet;\n");
        assert_eq!(codes(&r), vec!["W001", "D001"]);
    }

    #[test]
    fn unknown_code_is_malformed() {
        let r = scan("// detlint: allow(D999) -- nope\nfn f() {}\n");
        assert_eq!(codes(&r), vec!["W001"]);
    }

    #[test]
    fn unused_waiver_is_flagged() {
        let r = scan("// detlint: allow(D002) -- stale\nfn f() {}\n");
        assert_eq!(codes(&r), vec!["W002"]);
        assert_eq!(r.diags[0].severity, Severity::Warning);
    }

    #[test]
    fn unused_waiver_is_an_error_in_workspace_mode() {
        let mut c = ctx();
        c.workspace = true;
        let r = scan_source(
            "t.rs",
            "// detlint: allow(D002) -- stale\nfn f() {}\n",
            &c,
            &[],
        );
        assert_eq!(codes(&r), vec!["W002"]);
        assert_eq!(r.diags[0].severity, Severity::Error);
    }

    #[test]
    fn new_rule_codes_are_waivable() {
        let r = scan("fn f() {} // detlint: allow(P001,A001,T001) -- exercising the parser\n");
        // Parsed fine; unused (no matching diag), so exactly one W002.
        assert_eq!(codes(&r), vec!["W002"]);
    }

    #[test]
    fn extra_raw_diags_respect_waivers() {
        let extra = [RawDiag {
            code: "T001",
            severity: Severity::Error,
            line: 2,
            col: 5,
            message: "variant `TxBegin` unhandled".into(),
            hint: "",
        }];
        let src = "fn f() {}\nfn g() {}\n";
        let r = scan_source("event.rs", src, &ctx(), &extra);
        assert_eq!(codes(&r), vec!["T001"]);

        let waived = "fn f() {}\n// detlint: allow(T001) -- audited elsewhere\nfn g() {}\n";
        let extra2 = [RawDiag {
            line: 3,
            ..extra[0].clone()
        }];
        let r2 = scan_source("event.rs", waived, &ctx(), &extra2);
        assert!(r2.diags.is_empty(), "{:?}", r2.diags);
        assert_eq!(r2.waived, 1);
    }

    #[test]
    fn diags_sorted_by_position() {
        let r = scan("use std::collections::{HashMap, HashSet};\nlet t = Instant::now();\n");
        assert_eq!(codes(&r), vec!["D001", "D001", "D002"]);
        let rendered = r.diags[0].render();
        assert!(rendered.starts_with("t.rs:1:"), "{rendered}");
        assert!(rendered.contains("[D001:error]"));
        assert!(rendered.contains("hint:"));
    }

    #[test]
    fn lex_failure_becomes_e001() {
        let r = scan("let s = \"unterminated");
        assert_eq!(codes(&r), vec!["E001"]);
    }

    #[test]
    fn json_report_shape() {
        let r = scan("use std::collections::HashMap;\n");
        let j = json_report(&r.diags, 1, r.waived);
        let text = j.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("files_scanned").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("schema_version").and_then(Json::as_u64), Some(2));
        let diags = parsed.get("diagnostics").and_then(Json::as_arr).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0].get("severity").and_then(Json::as_str),
            Some("error")
        );
    }
}
