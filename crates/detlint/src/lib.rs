//! `detlint` — the BFGTS workspace's static-analysis suite.
//!
//! Every headline number this repository reproduces (Fig. 4–6 speedups,
//! Tables 1/4) rests on `bfgts-sim` being a *deterministic, panic-free,
//! overflow-checked* discrete-event simulator: identical seeds must
//! give bit-identical conflict orderings, similarity statistics and
//! cycle counts, and a multi-million-event run must not die mid-flight
//! on an unexplained `unwrap`. The classic way those properties rot is
//! innocuous-looking code — a `HashMap` iterated in a
//! conflict-resolution path, a bare `+` on a u64 cycle counter that
//! silently wraps in release, a new trace event kind the replay audit
//! never learns about. This crate catches those classes at lint time.
//!
//! Four rule families run over the workspace:
//!
//! - **D (determinism, D001–D005):** hash-ordered collections,
//!   wall-clock reads, float-over-hash-order accumulation, hash
//!   randomisation, ambient state.
//! - **P (panic-safety, P001–P003):** `unwrap`, panic-family macros and
//!   raw indexing in the panic-audited crates, with hot-path/cold-path
//!   severity.
//! - **A (cycle arithmetic, A001):** bare `+`/`-`/`*` on
//!   cycle-flavoured values in the accounting crates must be
//!   `checked_*`/`saturating_*`/`wrapping_*` or waived.
//! - **T (trace contract, T001–T002):** every `TraceEvent` variant must
//!   be matched by the replay audit and handled by the JSONL exporter.
//!
//! The tool is std-only (the build must survive an offline registry, so
//! no `syn`): a small Rust lexer ([`lexer`]), a brace-matched item tree
//! ([`itemtree`]), per-file rules over the token stream ([`rules`]),
//! the cross-file trace-contract pass ([`contract`]), waiver handling
//! and output formats ([`engine`], [`sarif`]), workspace discovery
//! ([`workspace`]) and a fixture-driven self-test ([`selftest`]). See
//! DESIGN.md §7 for the policy the rules encode, and README.md for
//! waiver etiquette.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod engine;
pub mod itemtree;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod selftest;
pub mod workspace;
