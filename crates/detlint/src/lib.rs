//! `detlint` — the BFGTS workspace's determinism lint.
//!
//! Every headline number this repository reproduces (Fig. 4–6 speedups,
//! Tables 1/4) rests on `bfgts-sim` being a *deterministic*
//! discrete-event simulator: identical seeds must give bit-identical
//! conflict orderings, similarity statistics and cycle counts. The
//! classic way that property rots is innocuous-looking code — a
//! `HashMap` iterated in a conflict-resolution path, a float sum over
//! an unordered container, a stray wall-clock read. PR 1 caught exactly
//! one such bug (`TmStats::measured_similarity` summed floats in
//! `HashMap` order) by diffing benchmark bytes after the fact; this
//! crate catches the whole class at lint time instead.
//!
//! The tool is std-only (the build must survive an offline registry, so
//! no `syn`): a small Rust lexer ([`lexer`]), a rule set over the token
//! stream ([`rules`], D001–D005), waiver handling and output formats
//! ([`engine`]), workspace discovery ([`workspace`]) and a
//! fixture-driven self-test ([`selftest`]). See DESIGN.md §7 for the
//! policy the rules encode, and README.md for waiver etiquette.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod selftest;
pub mod workspace;
