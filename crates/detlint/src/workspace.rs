//! Workspace discovery: which files to scan and how strictly to treat
//! each crate.

use crate::rules::CrateClass;
use std::path::{Path, PathBuf};

/// Crates whose output never feeds simulation results; exempt from the
/// hash-order rules, still subject to D002. Everything else — including
/// any crate added later — defaults to critical, so a new crate must
/// opt *out* of the policy, never accidentally out of enforcement.
const TOOLING_CRATES: &[&str] = &["testkit", "bench", "detlint"];

/// Directory names never scanned.
const SKIP_DIRS: &[&str] = &["target", ".git", "results"];

/// detlint's rule fixtures contain violations on purpose; they are only
/// read by `--self-test` and the fixture tests.
const FIXTURE_DIR: &str = "crates/detlint/fixtures";

/// Classifies a workspace-relative path: `(crate name, class)`.
pub fn classify(rel_path: &str) -> (String, CrateClass) {
    let name = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("bfgts-repro")
        .to_string();
    let class = if TOOLING_CRATES.contains(&name.as_str()) {
        CrateClass::Tooling
    } else {
        CrateClass::Critical
    };
    (name, class)
}

/// True for paths under a `tests/` directory (integration tests):
/// P/A-rules are test-exempt there, matching the `#[cfg(test)]`
/// exemption inside source files.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path.split('/').any(|seg| seg == "tests")
}

/// Finds the workspace root by walking up from `start` until a
/// `Cargo.toml` declaring `[workspace]` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects every lintable `.rs` file under `root`, workspace-relative,
/// sorted (deterministic output is rather the point of this tool).
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') || rel == FIXTURE_DIR {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            files.push(PathBuf::from(rel));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_and_tooling_classification() {
        assert_eq!(
            classify("crates/htm/src/state.rs"),
            ("htm".into(), CrateClass::Critical)
        );
        assert_eq!(
            classify("crates/bench/src/runner.rs"),
            ("bench".into(), CrateClass::Tooling)
        );
        assert_eq!(
            classify("crates/detlint/src/main.rs"),
            ("detlint".into(), CrateClass::Tooling)
        );
        // Root crate and unknown future crates stay critical by default.
        assert_eq!(
            classify("src/lib.rs"),
            ("bfgts-repro".into(), CrateClass::Critical)
        );
        assert_eq!(
            classify("crates/newthing/src/lib.rs").1,
            CrateClass::Critical
        );
    }

    #[test]
    fn test_paths_are_detected() {
        assert!(is_test_path("crates/sim/tests/determinism.rs"));
        assert!(is_test_path("tests/smoke.rs"));
        assert!(!is_test_path("crates/sim/src/engine.rs"));
        assert!(!is_test_path("crates/testkit/src/lib.rs"));
    }

    #[test]
    fn workspace_walk_finds_this_crate_but_not_fixtures() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let files = collect_files(&root).expect("walk");
        assert!(files
            .iter()
            .any(|f| f.to_string_lossy() == "crates/detlint/src/main.rs"));
        assert!(files
            .iter()
            .any(|f| f.to_string_lossy() == "crates/htm/src/state.rs"));
        assert!(!files
            .iter()
            .any(|f| f.to_string_lossy().contains("detlint/fixtures")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk output must be sorted");
    }
}
