//! The rule families: determinism (D), panic-safety (P) and cycle
//! arithmetic (A). The cross-file trace-contract family (T) lives in
//! [`crate::contract`] because it reads three files at once.
//!
//! Each rule walks the token stream of one file and produces raw
//! diagnostics; waiver handling, sorting and rendering live in
//! [`crate::engine`]. The rules are lexical by design: a token scanner
//! cannot do type inference, so each rule names the *syntactic shape*
//! of a hazard and the static-analysis policy (DESIGN.md §7) decides
//! where it applies.

use crate::itemtree::{ItemTree, KEYWORDS};
use crate::lexer::{TokKind, Token};

/// How strictly a crate is held to the determinism policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// Simulation-result-affecting crates: every rule applies.
    Critical,
    /// Test/bench/lint tooling: only wall-clock (D002) applies, since
    /// tooling output never feeds simulation state.
    Tooling,
}

/// How serious a diagnostic is. Both levels fail the lint (exit 1);
/// severity is reporting metadata — it tells a reader whether the
/// finding sits on a hot path (error) or in cold setup code (warning),
/// and maps onto SARIF's `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Cold-path or advisory finding.
    Warning,
    /// Hot-path or correctness-contract finding.
    Error,
}

impl Severity {
    /// The rendered form (`warn` / `error`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warn",
            Severity::Error => "error",
        }
    }
}

/// Everything `run_rules` needs to know about the file being scanned.
#[derive(Debug, Clone, Copy)]
pub struct ScanCtx<'a> {
    /// Crate classification (critical vs. tooling).
    pub class: CrateClass,
    /// The crate the file belongs to (`sim`, `htm`, ... or a fixture
    /// name); P/A-rules gate on explicit crate lists.
    pub crate_name: &'a str,
    /// True under `--workspace`: promotes W002 (unused waiver) to an
    /// error so waiver debt cannot accumulate silently.
    pub workspace: bool,
    /// True for files under a `tests/` directory: P/A-rules are
    /// test-exempt (tests may panic and use bare arithmetic freely).
    pub test_file: bool,
}

/// A diagnostic before waiver matching.
#[derive(Debug, Clone)]
pub struct RawDiag {
    /// Rule code (`D001`...).
    pub code: &'static str,
    /// Hot-path error or cold-path warning.
    pub severity: Severity,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// One rule's code and one-line description, for `--list-rules` and the
/// JSON report.
pub const RULES: &[(&str, &str)] = &[
    (
        "D001",
        "HashMap/HashSet in a determinism-critical crate (iteration order varies per process)",
    ),
    (
        "D002",
        "wall-clock read (Instant::now / SystemTime); simulation time must come from the engine",
    ),
    (
        "D003",
        "float accumulation fed by iteration over a hash-ordered container",
    ),
    (
        "D004",
        "hash randomisation or thread identity (RandomState / DefaultHasher / thread::current)",
    ),
    (
        "D005",
        "ambient mutable or environmental state (static mut / std::env::var*) in a critical crate",
    ),
    (
        "P001",
        ".unwrap() in a panic-audited crate; name the invariant with .expect(..) instead",
    ),
    (
        "P002",
        "panic!/unreachable!/todo!/unimplemented! in a panic-audited crate",
    ),
    (
        "P003",
        "raw slice/array indexing in a hot-path fn (out-of-bounds aborts mid-run)",
    ),
    (
        "A001",
        "bare +/-/* on a cycle-flavoured value; u64 overflow wraps silently in release",
    ),
    (
        "T001",
        "TraceEvent variant not matched by the replay audit (trace/src/audit.rs)",
    ),
    (
        "T002",
        "TraceEvent variant not handled by the JSONL exporter (bench/src/trace_export.rs)",
    ),
];

/// True if `code` names a rule that may be waived.
pub fn is_waivable(code: &str) -> bool {
    RULES.iter().any(|(c, _)| *c == code)
}

/// Crates held to the panic-safety policy (P-rules). Gated by name, not
/// [`CrateClass`], so fixture crates opt in explicitly.
pub const PANIC_CRATES: &[&str] = &["sim", "htm", "core", "bloomsig", "baselines", "workloads"];

/// Crates whose cycle accounting is held to the checked-arithmetic
/// policy (A001).
pub const ARITH_CRATES: &[&str] = &["sim", "htm"];

/// Hot-path fns (`crate`, `Type::fn`): P-findings inside these are
/// errors (a panic here kills a multi-million-event run mid-flight),
/// elsewhere they are warnings. The list names the per-event code paths:
/// the engine step loop, the calendar queue, cycle accounting, the HTM
/// thread state machine, and the signature algebra.
pub const HOT_FNS: &[(&str, &str)] = &[
    ("sim", "CalendarQueue::push"),
    ("sim", "CalendarQueue::pop"),
    ("sim", "CalendarQueue::ring_insert"),
    ("sim", "CalendarQueue::clear_bit"),
    ("sim", "CalendarQueue::migrate"),
    ("sim", "CalendarQueue::find_next"),
    ("sim", "CalendarQueue::next_word"),
    ("sim", "Slot::push"),
    ("sim", "EventQueue::push"),
    ("sim", "EventQueue::pop"),
    ("sim", "Engine::run_into"),
    ("sim", "Engine::arm"),
    ("sim", "Engine::service_cpu"),
    ("sim", "Engine::wake_internal"),
    ("sim", "TimeBuckets::charge"),
    ("sim", "TimeBuckets::transfer"),
    ("sim", "Cycle::since"),
    ("htm", "TxThreadLogic::step"),
    ("htm", "TxThreadLogic::advance"),
    ("core", "Sig::intersects"),
    ("core", "Sig::intersection_estimate"),
    ("bloomsig", "BloomFilter::insert"),
    ("bloomsig", "BloomFilter::may_contain"),
    ("bloomsig", "BloomFilter::set_bit"),
    ("bloomsig", "BloomFilter::union_in_place"),
    ("bloomsig", "BloomFilter::intersects"),
    ("bloomsig", "BloomFilter::intersection_estimate"),
];

fn is_hot(crate_name: &str, qualified: &str) -> bool {
    HOT_FNS
        .iter()
        .any(|&(c, f)| c == crate_name && f == qualified)
}

/// Runs every applicable rule over one file's token stream.
pub fn run_rules(tokens: &[Token], tree: &ItemTree, ctx: &ScanCtx) -> Vec<RawDiag> {
    let mut out = Vec::new();
    if ctx.class == CrateClass::Critical {
        d001_hash_collections(tokens, ctx.crate_name, &mut out);
        d003_float_accumulation(tokens, &mut out);
        d004_hash_randomisation(tokens, &mut out);
        d005_ambient_state(tokens, ctx.crate_name, &mut out);
    }
    d002_wall_clock(tokens, &mut out);
    if PANIC_CRATES.contains(&ctx.crate_name) {
        p001_unwrap(tokens, tree, ctx, &mut out);
        p002_panic_macros(tokens, tree, ctx, &mut out);
        p003_raw_indexing(tokens, tree, ctx, &mut out);
    }
    if ARITH_CRATES.contains(&ctx.crate_name) {
        a001_bare_arithmetic(tokens, tree, ctx, &mut out);
    }
    out
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const HASH_MODULES: &[&str] = &["hash_map", "hash_set"];

fn d001_hash_collections(tokens: &[Token], crate_name: &str, out: &mut Vec<RawDiag>) {
    for t in tokens {
        if t.kind != TokKind::Ident {
            continue;
        }
        if HASH_TYPES.contains(&t.text.as_str()) || HASH_MODULES.contains(&t.text.as_str()) {
            out.push(RawDiag {
                code: "D001",
                severity: Severity::Error,
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` in determinism-critical crate `{crate_name}`: iteration order \
                     depends on per-process hash randomisation",
                    t.text
                ),
                hint: "use BTreeMap/BTreeSet, or collect into a Vec and sort before any \
                       order-sensitive use; if the order provably never escapes, waive with \
                       `// detlint: allow(D001) -- <why>`",
            });
        }
    }
}

fn d002_wall_clock(tokens: &[Token], out: &mut Vec<RawDiag>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("Instant")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            out.push(RawDiag {
                code: "D002",
                severity: Severity::Error,
                line: t.line,
                col: t.col,
                message: "`Instant::now()` reads the wall clock".into(),
                hint: D002_HINT,
            });
        }
        if t.is_ident("SystemTime") {
            out.push(RawDiag {
                code: "D002",
                severity: Severity::Error,
                line: t.line,
                col: t.col,
                message: "`SystemTime` reads the wall clock".into(),
                hint: D002_HINT,
            });
        }
    }
}

const D002_HINT: &str = "simulation time must come from the engine's `Cycle` clock; \
                         bench harness timing is the only legitimate use and must carry \
                         `// detlint: allow(D002) -- <why>`";

/// Accumulation markers searched for downstream of a hash-container
/// iteration call.
const ACCUMULATORS: &[&str] = &["sum", "fold", "product"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "values_mut",
    "keys",
    "drain",
];

/// D003 is a two-pass heuristic: first collect names bound to a
/// `HashMap`/`HashSet` (`let x: HashMap<..>` or `x = HashMap::new()`),
/// then flag iteration calls on those names whose enclosing statement
/// or loop body accumulates (`+=`, `.sum()`, `.fold(..)`).
fn d003_float_accumulation(tokens: &[Token], out: &mut Vec<RawDiag>) {
    let mut hash_names: Vec<&str> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) && i >= 2 {
            let sep = &tokens[i - 1];
            let name = &tokens[i - 2];
            if (sep.is_punct(":") || sep.is_punct("=")) && name.kind == TokKind::Ident {
                hash_names.push(name.text.as_str());
            }
        }
    }
    for (i, t) in tokens.iter().enumerate() {
        let is_source = t.kind == TokKind::Ident
            && hash_names.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("."))
            && tokens.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Ident && ITER_METHODS.contains(&n.text.as_str())
            });
        if !is_source {
            continue;
        }
        // Scan forward through the rest of the statement (or the loop
        // body it opens) for an accumulation marker.
        let mut depth = 0i32;
        for n in tokens.iter().skip(i + 3).take(120) {
            match n.text.as_str() {
                "{" if n.kind == TokKind::Punct => depth += 1,
                "}" if n.kind == TokKind::Punct => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" if depth <= 0 => break,
                "+=" => {
                    out.push(d003_diag(t));
                    break;
                }
                a if n.kind == TokKind::Ident && ACCUMULATORS.contains(&a) => {
                    out.push(d003_diag(t));
                    break;
                }
                _ => {}
            }
        }
    }
}

fn d003_diag(t: &Token) -> RawDiag {
    RawDiag {
        code: "D003",
        severity: Severity::Error,
        line: t.line,
        col: t.col,
        message: format!(
            "float accumulation over `{}`, a hash-ordered container: the sum \
             depends on iteration order",
            t.text
        ),
        hint: "iterate an ordered container (BTreeMap/BTreeSet) or sort the items \
               before accumulating; float addition is not associative",
    }
}

fn d004_hash_randomisation(tokens: &[Token], out: &mut Vec<RawDiag>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("RandomState") || t.is_ident("DefaultHasher") {
            out.push(RawDiag {
                code: "D004",
                severity: Severity::Error,
                line: t.line,
                col: t.col,
                message: format!("`{}` seeds per-process hash randomisation", t.text),
                hint: "use the fixed hash functions in `bfgts_bloomsig::hash` or an \
                       explicitly seeded hasher",
            });
        }
        if t.is_ident("thread")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("current"))
        {
            out.push(RawDiag {
                code: "D004",
                severity: Severity::Error,
                line: t.line,
                col: t.col,
                message: "`thread::current()` identity varies between runs".into(),
                hint: "thread identity must come from the simulator's `ThreadId`",
            });
        }
    }
}

fn d005_ambient_state(tokens: &[Token], crate_name: &str, out: &mut Vec<RawDiag>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("static") && tokens.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            out.push(RawDiag {
                code: "D005",
                severity: Severity::Error,
                line: t.line,
                col: t.col,
                message: format!("`static mut` in determinism-critical crate `{crate_name}`"),
                hint: "thread shared state through the simulation `World` so runs stay \
                       self-contained",
            });
        }
        if t.is_ident("env")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|n| {
                n.is_ident("var")
                    || n.is_ident("vars")
                    || n.is_ident("var_os")
                    || n.is_ident("vars_os")
            })
        {
            out.push(RawDiag {
                code: "D005",
                severity: Severity::Error,
                line: t.line,
                col: t.col,
                message: format!("environment read in determinism-critical crate `{crate_name}`"),
                hint: "plumb configuration through explicit arguments (`RunCell`, \
                       `TmRunConfig`) so a run is a pure function of its inputs",
            });
        }
    }
}

// ---------------------------------------------------------------------
// P-rules: panic safety.
// ---------------------------------------------------------------------

/// True when token `i` is exempt from P/A-rules: test files, test
/// modules and `#[test]` fns may panic and use bare arithmetic freely.
fn exempt(tree: &ItemTree, i: usize, ctx: &ScanCtx) -> bool {
    ctx.test_file || tree.in_test(i)
}

/// Severity and an optional ` (hot path: ...)` message suffix for a
/// P-finding at token `i`.
fn p_severity(tree: &ItemTree, i: usize, ctx: &ScanCtx) -> (Severity, String) {
    match tree.fn_at(i) {
        Some(f) if is_hot(ctx.crate_name, &f.qualified) => {
            (Severity::Error, format!(" (hot path: `{}`)", f.qualified))
        }
        _ => (Severity::Warning, String::new()),
    }
}

fn p001_unwrap(tokens: &[Token], tree: &ItemTree, ctx: &ScanCtx, out: &mut Vec<RawDiag>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("unwrap")
            || i == 0
            || !tokens[i - 1].is_punct(".")
            || !tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            continue;
        }
        if exempt(tree, i, ctx) {
            continue;
        }
        let (severity, hot) = p_severity(tree, i, ctx);
        out.push(RawDiag {
            code: "P001",
            severity,
            line: t.line,
            col: t.col,
            message: format!(
                "`.unwrap()` in panic-audited crate `{}`{hot}: aborts the run with no \
                 invariant message",
                ctx.crate_name
            ),
            hint: "use `.expect(\"<the invariant that guarantees Some/Ok>\")` or handle \
                   the None/Err arm; waive with `// detlint: allow(P001) -- <why>`",
        });
    }
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn p002_panic_macros(tokens: &[Token], tree: &ItemTree, ctx: &ScanCtx, out: &mut Vec<RawDiag>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !PANIC_MACROS.contains(&t.text.as_str())
            || !tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            continue;
        }
        if exempt(tree, i, ctx) {
            continue;
        }
        let (severity, hot) = p_severity(tree, i, ctx);
        out.push(RawDiag {
            code: "P002",
            severity,
            line: t.line,
            col: t.col,
            message: format!(
                "`{}!` in panic-audited crate `{}`{hot}",
                t.text, ctx.crate_name
            ),
            hint: "return an error or make the state unrepresentable; a deliberate \
                   invariant check may stay with `// detlint: allow(P002) -- <why>`",
        });
    }
}

fn p003_raw_indexing(tokens: &[Token], tree: &ItemTree, ctx: &ScanCtx, out: &mut Vec<RawDiag>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_punct("[") || i == 0 {
            continue;
        }
        let prev = &tokens[i - 1];
        let indexes_value = (prev.kind == TokKind::Ident
            && !KEYWORDS.contains(&prev.text.as_str()))
            || prev.is_punct(")")
            || prev.is_punct("]");
        if !indexes_value {
            continue;
        }
        // P003 only bites on hot paths: cold-path indexing is handled
        // by the ordinary panic policy (the audit catches it offline).
        let Some(f) = tree.fn_at(i) else { continue };
        if !is_hot(ctx.crate_name, &f.qualified) {
            continue;
        }
        if exempt(tree, i, ctx) {
            continue;
        }
        let what = if prev.kind == TokKind::Ident {
            format!("`{}[..]`", prev.text)
        } else {
            "indexing".to_string()
        };
        out.push(RawDiag {
            code: "P003",
            severity: Severity::Error,
            line: t.line,
            col: t.col,
            message: format!(
                "raw {what} on hot path `{}`: out-of-bounds aborts the run mid-flight",
                f.qualified
            ),
            hint: "use `.get()/.get_mut()` with `.expect(\"<bounds invariant>\")`, or \
                   mask/clamp the index; waive with `// detlint: allow(P003) -- <why>`",
        });
    }
}

// ---------------------------------------------------------------------
// A001: cycle arithmetic.
// ---------------------------------------------------------------------

/// Identifier vocabulary that marks a value as cycle/time/charge
/// flavoured. Exact matches are engine-local variable names; substring
/// matches catch the `*_cycles` / `*_cost` / `*_poll` families.
const A_EXACT: &[&str] = &[
    "cursor",
    "makespan",
    "extra",
    "spun",
    "left",
    "chunk",
    "moved",
    "requested",
];
const A_SUBSTR: &[&str] = &["cycle", "cost", "charge", "poll"];

fn cycle_flavoured(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    A_EXACT.contains(&lower.as_str()) || A_SUBSTR.iter().any(|s| lower.contains(s))
}

/// Collects the dotted-path identifiers of the operand ending at token
/// `op - 1` (e.g. `ctx.costs().abort_trap` → `[abort_trap, costs, ctx]`).
/// Returns an empty list when the operand is a `::` path — an
/// associated call like `Cycle::new(..)` is the sanctioned checked
/// boundary, not a bare value.
fn operand_back(tokens: &[Token], op: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut j = op as isize - 1;
    let mut steps = 0;
    while j >= 0 && steps < 48 {
        steps += 1;
        let t = &tokens[j as usize];
        if t.is_punct(")") || t.is_punct("]") {
            // Skip the balanced group backwards to its opener.
            let mut depth = 0i32;
            while j >= 0 {
                let u = &tokens[j as usize];
                if u.is_punct(")") || u.is_punct("]") {
                    depth += 1;
                } else if u.is_punct("(") || u.is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            j -= 1;
            continue;
        }
        if t.kind == TokKind::Number {
            j -= 1;
            if j >= 0 && tokens[j as usize].is_punct(".") {
                j -= 1;
                continue;
            }
            break;
        }
        if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            names.push(t.text.clone());
            j -= 1;
            if j >= 0 {
                let sep = &tokens[j as usize];
                if sep.is_punct(".") {
                    j -= 1;
                    continue;
                }
                if sep.is_punct("::") {
                    return Vec::new();
                }
            }
            break;
        }
        break;
    }
    names
}

/// Collects the dotted-path identifiers of the operand starting at
/// token `start` (after the operator). Same `::` exemption as
/// [`operand_back`].
fn operand_fwd(tokens: &[Token], start: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut j = start;
    let mut steps = 0;
    while j < tokens.len() && steps < 48 {
        steps += 1;
        let t = &tokens[j];
        // Unary prefixes and grouping.
        if t.is_punct("&") || t.is_punct("*") || t.is_punct("-") {
            j += 1;
            continue;
        }
        if t.is_punct("(") {
            let mut depth = 0i32;
            while j < tokens.len() {
                if tokens[j].is_punct("(") || tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct(")") || tokens[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
            if tokens.get(j).is_some_and(|n| n.is_punct(".")) {
                j += 1;
                continue;
            }
            break;
        }
        if t.kind == TokKind::Number {
            j += 1;
            if tokens.get(j).is_some_and(|n| n.is_punct(".")) {
                j += 1;
                continue;
            }
            break;
        }
        if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            if tokens.get(j + 1).is_some_and(|n| n.is_punct("::")) {
                return Vec::new();
            }
            names.push(t.text.clone());
            j += 1;
            // Method call: skip the argument list, keep chaining.
            if tokens.get(j).is_some_and(|n| n.is_punct("(")) {
                let mut depth = 0i32;
                while j < tokens.len() {
                    if tokens[j].is_punct("(") || tokens[j].is_punct("[") {
                        depth += 1;
                    } else if tokens[j].is_punct(")") || tokens[j].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                j += 1;
            }
            if tokens.get(j).is_some_and(|n| n.is_punct(".")) {
                j += 1;
                continue;
            }
            break;
        }
        break;
    }
    names
}

fn a001_bare_arithmetic(tokens: &[Token], tree: &ItemTree, ctx: &ScanCtx, out: &mut Vec<RawDiag>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        let (op, rhs_start): (&str, usize) = match t.text.as_str() {
            "+=" => ("+=", i + 1),
            "+" => ("+", i + 1),
            "-" => {
                if tokens.get(i + 1).is_some_and(|n| n.is_punct(">")) {
                    continue; // `->` return arrow
                }
                if tokens.get(i + 1).is_some_and(|n| n.is_punct("=")) {
                    ("-=", i + 2)
                } else {
                    ("-", i + 1)
                }
            }
            "*" => {
                if tokens.get(i + 1).is_some_and(|n| n.is_punct("=")) {
                    ("*=", i + 2)
                } else {
                    ("*", i + 1)
                }
            }
            _ => continue,
        };
        // Binary-ness: the previous token must be able to end an
        // operand, otherwise this is a unary minus / deref / generic
        // marker.
        let Some(prev) = i.checked_sub(1).map(|k| &tokens[k]) else {
            continue;
        };
        let binary = prev.kind == TokKind::Number
            || prev.is_punct(")")
            || prev.is_punct("]")
            || (prev.kind == TokKind::Ident && !KEYWORDS.contains(&prev.text.as_str()));
        if !binary {
            continue;
        }
        if exempt(tree, i, ctx) {
            continue;
        }
        let lhs = operand_back(tokens, i);
        let rhs = operand_fwd(tokens, rhs_start);
        let Some(name) = lhs.iter().chain(rhs.iter()).find(|n| cycle_flavoured(n)) else {
            continue;
        };
        out.push(RawDiag {
            code: "A001",
            severity: Severity::Error,
            line: t.line,
            col: t.col,
            message: format!(
                "bare `{op}` on cycle-flavoured value `{name}`: u64 overflow wraps \
                 silently in release and corrupts accounting",
            ),
            hint: "use checked_*/saturating_*/wrapping_* (or the `Cycle` newtype's \
                   checked operators) so the policy is explicit; waive with \
                   `// detlint: allow(A001) -- <why>`",
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemtree::ItemTree;
    use crate::lexer::lex;

    fn diags_in(src: &str, class: CrateClass, crate_name: &str) -> Vec<RawDiag> {
        let toks = lex(src).unwrap().tokens;
        let tree = ItemTree::build(&toks);
        run_rules(
            &toks,
            &tree,
            &ScanCtx {
                class,
                crate_name,
                workspace: false,
                test_file: false,
            },
        )
    }

    fn diags(src: &str, class: CrateClass) -> Vec<RawDiag> {
        diags_in(src, class, "testcrate")
    }

    fn codes(src: &str, class: CrateClass) -> Vec<&'static str> {
        diags(src, class).iter().map(|d| d.code).collect()
    }

    fn codes_in(src: &str, crate_name: &str) -> Vec<&'static str> {
        diags_in(src, CrateClass::Critical, crate_name)
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn d001_fires_on_hash_collections_in_critical_crates() {
        let src = "use std::collections::HashMap;\nfn f() -> HashSet<u64> { todo!() }";
        assert_eq!(codes(src, CrateClass::Critical), vec!["D001", "D001"]);
        assert!(codes(src, CrateClass::Tooling).is_empty());
    }

    #[test]
    fn d001_fires_on_hash_module_paths() {
        let src = "use std::collections::hash_map::Entry;";
        assert_eq!(codes(src, CrateClass::Critical), vec!["D001"]);
    }

    #[test]
    fn d001_ignores_strings_and_comments() {
        let src = "// a HashMap would be bad\nlet s = \"HashMap\";";
        assert!(codes(src, CrateClass::Critical).is_empty());
    }

    #[test]
    fn d002_fires_everywhere() {
        let src = "let t = Instant::now(); let s = SystemTime::now();";
        assert_eq!(codes(src, CrateClass::Tooling), vec!["D002", "D002"]);
        assert_eq!(codes(src, CrateClass::Critical), vec!["D002", "D002"]);
    }

    #[test]
    fn d002_ignores_bare_instant() {
        assert!(codes("use std::time::Instant;", CrateClass::Tooling).is_empty());
    }

    #[test]
    fn d003_flags_accumulation_over_hash_values() {
        let src = "let mut m: HashMap<u64, f64> = HashMap::new();\n\
                   let mut total = 0.0;\n\
                   for v in m.values() { total += v; }";
        let c = codes(src, CrateClass::Critical);
        assert!(c.contains(&"D003"), "got {c:?}");
    }

    #[test]
    fn d003_flags_sum_chains() {
        let src = "let m = HashMap::new();\nlet s: f64 = m.values().sum();";
        assert!(codes(src, CrateClass::Critical).contains(&"D003"));
    }

    #[test]
    fn d003_quiet_without_accumulation() {
        let src = "let m = HashMap::new();\nfor v in m.values() { println!(\"{v}\"); }";
        assert!(!codes(src, CrateClass::Critical).contains(&"D003"));
    }

    #[test]
    fn d004_flags_hashers_and_thread_identity() {
        let src = "let h = DefaultHasher::new();\nlet s = RandomState::new();\nlet t = thread::current();";
        assert_eq!(
            codes(src, CrateClass::Critical),
            vec!["D004", "D004", "D004"]
        );
        assert!(codes(src, CrateClass::Tooling).is_empty());
    }

    #[test]
    fn d005_flags_static_mut_and_env_reads() {
        let src = "static mut X: u64 = 0;\nfn f() { let _ = std::env::var(\"SEED\"); }";
        assert_eq!(codes(src, CrateClass::Critical), vec!["D005", "D005"]);
        assert!(codes(src, CrateClass::Tooling).is_empty());
    }

    #[test]
    fn d005_allows_env_args() {
        assert!(codes("let a = std::env::args();", CrateClass::Critical).is_empty());
    }

    #[test]
    fn plain_static_is_fine() {
        assert!(codes("static X: u64 = 0;", CrateClass::Critical).is_empty());
    }

    // --- P-rules ---

    #[test]
    fn p001_fires_only_in_panic_crates() {
        let src = "fn f() { let x = opt.unwrap(); }";
        assert_eq!(codes_in(src, "sim"), vec!["P001"]);
        assert!(codes_in(src, "trace").is_empty());
        assert!(codes(src, CrateClass::Critical).is_empty());
    }

    #[test]
    fn p001_expect_is_sanctioned() {
        let src = "fn f() { let x = opt.expect(\"queue is non-empty after len check\"); }";
        assert!(codes_in(src, "sim").is_empty());
    }

    #[test]
    fn p001_hot_path_is_an_error_cold_is_a_warning() {
        let hot = "impl CalendarQueue { fn pop(&mut self) { x.unwrap(); } }";
        let cold = "fn setup() { x.unwrap(); }";
        let hd = diags_in(hot, CrateClass::Critical, "sim");
        let cd = diags_in(cold, CrateClass::Critical, "sim");
        assert_eq!(hd[0].severity, Severity::Error);
        assert_eq!(cd[0].severity, Severity::Warning);
    }

    #[test]
    fn p002_fires_on_panic_macros() {
        let src = "fn f() { panic!(\"boom\"); unreachable!(); }";
        assert_eq!(codes_in(src, "htm"), vec!["P002", "P002"]);
    }

    #[test]
    fn p002_asserts_are_sanctioned() {
        let src = "fn f() { assert!(x > 0); debug_assert_eq!(a, b); }";
        assert!(codes_in(src, "htm").is_empty());
    }

    #[test]
    fn p_rules_skip_tests() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); panic!(); } }";
        assert!(codes_in(src, "sim").is_empty());
        let src2 = "#[test]\nfn check() { x.unwrap(); }";
        assert!(codes_in(src2, "sim").is_empty());
    }

    #[test]
    fn p003_fires_only_on_hot_paths() {
        let hot = "impl CalendarQueue { fn pop(&mut self) { let x = self.buckets[idx]; } }";
        let cold = "fn setup() { let x = buckets[idx]; }";
        assert_eq!(codes_in(hot, "sim"), vec!["P003"]);
        assert!(codes_in(cold, "sim").is_empty());
    }

    #[test]
    fn p003_ignores_attributes_types_and_patterns() {
        let src = "impl CalendarQueue {\n\
                   #[inline]\n\
                   fn pop(&mut self) -> [u64; 4] { let [a, b] = pair; let v: &[u64] = s; vec![1] }\n\
                   }";
        assert!(codes_in(src, "sim").is_empty());
    }

    // --- A001 ---

    #[test]
    fn a001_fires_on_bare_cycle_addition() {
        let src = "fn f() { let t = self.cursor + dist; }";
        assert_eq!(codes_in(src, "sim"), vec!["A001"]);
        assert!(codes_in(src, "trace").is_empty());
    }

    #[test]
    fn a001_fires_on_compound_assignment() {
        let src = "fn f() { self.tx_work += self.cfg.access_cost; }";
        assert_eq!(codes_in(src, "htm"), vec!["A001"]);
        let src2 = "fn f() { total_cycles -= spent; }";
        assert_eq!(codes_in(src2, "sim"), vec!["A001"]);
    }

    #[test]
    fn a001_method_chain_operands_are_traced() {
        let src = "fn f() { let r = ctx.costs().abort_trap + base; }";
        assert_eq!(codes_in(src, "htm"), vec!["A001"]);
    }

    #[test]
    fn a001_checked_forms_are_sanctioned() {
        let src = "fn f() { let t = cycles.checked_add(extra).expect(\"cycle overflow\"); \
                   let s = left.saturating_sub(chunk); }";
        assert!(codes_in(src, "sim").is_empty());
    }

    #[test]
    fn a001_type_paths_are_sanctioned() {
        // `Cycle::new(..)` is the checked boundary; `now + Cycle::new(x)`
        // routes through the newtype's own (checked) Add.
        let src = "fn f() { let t = now + Cycle::new(x); }";
        assert!(codes_in(src, "sim").is_empty());
    }

    #[test]
    fn a001_ignores_non_cycle_names() {
        let src = "fn f() { let n = count + 1; let m = idx * 2; seq -= 1; }";
        assert!(codes_in(src, "sim").is_empty());
    }

    #[test]
    fn a001_ignores_unary_and_arrows() {
        let src = "fn f(x: &u64) -> u64 { let v = *x; let neg = -jitter(cost_of()); v }";
        assert!(codes_in(src, "sim").is_empty());
    }

    #[test]
    fn a001_skips_tests() {
        let src = "#[cfg(test)]\nmod tests { fn f() { let t = cursor + 1; } }";
        assert!(codes_in(src, "sim").is_empty());
    }
}
