//! The determinism rules (D001–D005).
//!
//! Each rule walks the token stream of one file and produces raw
//! diagnostics; waiver handling, sorting and rendering live in
//! [`crate::engine`]. The rules are lexical by design: a token scanner
//! cannot do type inference, so each rule names the *syntactic shape*
//! of a hazard and the determinism policy (DESIGN.md §7) decides where
//! it applies.

use crate::lexer::{TokKind, Token};

/// How strictly a crate is held to the determinism policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// Simulation-result-affecting crates: every rule applies.
    Critical,
    /// Test/bench/lint tooling: only wall-clock (D002) applies, since
    /// tooling output never feeds simulation state.
    Tooling,
}

/// A diagnostic before waiver matching.
#[derive(Debug, Clone)]
pub struct RawDiag {
    /// Rule code (`D001`...).
    pub code: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// One rule's code and one-line description, for `--list-rules` and the
/// JSON report.
pub const RULES: &[(&str, &str)] = &[
    (
        "D001",
        "HashMap/HashSet in a determinism-critical crate (iteration order varies per process)",
    ),
    (
        "D002",
        "wall-clock read (Instant::now / SystemTime); simulation time must come from the engine",
    ),
    (
        "D003",
        "float accumulation fed by iteration over a hash-ordered container",
    ),
    (
        "D004",
        "hash randomisation or thread identity (RandomState / DefaultHasher / thread::current)",
    ),
    (
        "D005",
        "ambient mutable or environmental state (static mut / std::env::var*) in a critical crate",
    ),
];

/// True if `code` names a rule that may be waived.
pub fn is_waivable(code: &str) -> bool {
    RULES.iter().any(|(c, _)| *c == code)
}

/// Runs every applicable rule over one file's token stream.
pub fn run_rules(tokens: &[Token], class: CrateClass, crate_name: &str) -> Vec<RawDiag> {
    let mut out = Vec::new();
    if class == CrateClass::Critical {
        d001_hash_collections(tokens, crate_name, &mut out);
        d003_float_accumulation(tokens, &mut out);
        d004_hash_randomisation(tokens, &mut out);
        d005_ambient_state(tokens, crate_name, &mut out);
    }
    d002_wall_clock(tokens, &mut out);
    out
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const HASH_MODULES: &[&str] = &["hash_map", "hash_set"];

fn d001_hash_collections(tokens: &[Token], crate_name: &str, out: &mut Vec<RawDiag>) {
    for t in tokens {
        if t.kind != TokKind::Ident {
            continue;
        }
        if HASH_TYPES.contains(&t.text.as_str()) || HASH_MODULES.contains(&t.text.as_str()) {
            out.push(RawDiag {
                code: "D001",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` in determinism-critical crate `{crate_name}`: iteration order \
                     depends on per-process hash randomisation",
                    t.text
                ),
                hint: "use BTreeMap/BTreeSet, or collect into a Vec and sort before any \
                       order-sensitive use; if the order provably never escapes, waive with \
                       `// detlint: allow(D001) -- <why>`",
            });
        }
    }
}

fn d002_wall_clock(tokens: &[Token], out: &mut Vec<RawDiag>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("Instant")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            out.push(RawDiag {
                code: "D002",
                line: t.line,
                col: t.col,
                message: "`Instant::now()` reads the wall clock".into(),
                hint: D002_HINT,
            });
        }
        if t.is_ident("SystemTime") {
            out.push(RawDiag {
                code: "D002",
                line: t.line,
                col: t.col,
                message: "`SystemTime` reads the wall clock".into(),
                hint: D002_HINT,
            });
        }
    }
}

const D002_HINT: &str = "simulation time must come from the engine's `Cycle` clock; \
                         bench harness timing is the only legitimate use and must carry \
                         `// detlint: allow(D002) -- <why>`";

/// Accumulation markers searched for downstream of a hash-container
/// iteration call.
const ACCUMULATORS: &[&str] = &["sum", "fold", "product"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "values_mut",
    "keys",
    "drain",
];

/// D003 is a two-pass heuristic: first collect names bound to a
/// `HashMap`/`HashSet` (`let x: HashMap<..>` or `x = HashMap::new()`),
/// then flag iteration calls on those names whose enclosing statement
/// or loop body accumulates (`+=`, `.sum()`, `.fold(..)`).
fn d003_float_accumulation(tokens: &[Token], out: &mut Vec<RawDiag>) {
    let mut hash_names: Vec<&str> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) && i >= 2 {
            let sep = &tokens[i - 1];
            let name = &tokens[i - 2];
            if (sep.is_punct(":") || sep.is_punct("=")) && name.kind == TokKind::Ident {
                hash_names.push(name.text.as_str());
            }
        }
    }
    for (i, t) in tokens.iter().enumerate() {
        let is_source = t.kind == TokKind::Ident
            && hash_names.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("."))
            && tokens.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Ident && ITER_METHODS.contains(&n.text.as_str())
            });
        if !is_source {
            continue;
        }
        // Scan forward through the rest of the statement (or the loop
        // body it opens) for an accumulation marker.
        let mut depth = 0i32;
        for n in tokens.iter().skip(i + 3).take(120) {
            match n.text.as_str() {
                "{" if n.kind == TokKind::Punct => depth += 1,
                "}" if n.kind == TokKind::Punct => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" if depth <= 0 => break,
                "+=" => {
                    out.push(d003_diag(t));
                    break;
                }
                a if n.kind == TokKind::Ident && ACCUMULATORS.contains(&a) => {
                    out.push(d003_diag(t));
                    break;
                }
                _ => {}
            }
        }
    }
}

fn d003_diag(t: &Token) -> RawDiag {
    RawDiag {
        code: "D003",
        line: t.line,
        col: t.col,
        message: format!(
            "float accumulation over `{}`, a hash-ordered container: the sum \
             depends on iteration order",
            t.text
        ),
        hint: "iterate an ordered container (BTreeMap/BTreeSet) or sort the items \
               before accumulating; float addition is not associative",
    }
}

fn d004_hash_randomisation(tokens: &[Token], out: &mut Vec<RawDiag>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("RandomState") || t.is_ident("DefaultHasher") {
            out.push(RawDiag {
                code: "D004",
                line: t.line,
                col: t.col,
                message: format!("`{}` seeds per-process hash randomisation", t.text),
                hint: "use the fixed hash functions in `bfgts_bloomsig::hash` or an \
                       explicitly seeded hasher",
            });
        }
        if t.is_ident("thread")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("current"))
        {
            out.push(RawDiag {
                code: "D004",
                line: t.line,
                col: t.col,
                message: "`thread::current()` identity varies between runs".into(),
                hint: "thread identity must come from the simulator's `ThreadId`",
            });
        }
    }
}

fn d005_ambient_state(tokens: &[Token], crate_name: &str, out: &mut Vec<RawDiag>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("static") && tokens.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            out.push(RawDiag {
                code: "D005",
                line: t.line,
                col: t.col,
                message: format!("`static mut` in determinism-critical crate `{crate_name}`"),
                hint: "thread shared state through the simulation `World` so runs stay \
                       self-contained",
            });
        }
        if t.is_ident("env")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|n| {
                n.is_ident("var")
                    || n.is_ident("vars")
                    || n.is_ident("var_os")
                    || n.is_ident("vars_os")
            })
        {
            out.push(RawDiag {
                code: "D005",
                line: t.line,
                col: t.col,
                message: format!("environment read in determinism-critical crate `{crate_name}`"),
                hint: "plumb configuration through explicit arguments (`RunCell`, \
                       `TmRunConfig`) so a run is a pure function of its inputs",
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn diags(src: &str, class: CrateClass) -> Vec<RawDiag> {
        run_rules(&lex(src).unwrap().tokens, class, "testcrate")
    }

    fn codes(src: &str, class: CrateClass) -> Vec<&'static str> {
        diags(src, class).iter().map(|d| d.code).collect()
    }

    #[test]
    fn d001_fires_on_hash_collections_in_critical_crates() {
        let src = "use std::collections::HashMap;\nfn f() -> HashSet<u64> { todo!() }";
        assert_eq!(codes(src, CrateClass::Critical), vec!["D001", "D001"]);
        assert!(codes(src, CrateClass::Tooling).is_empty());
    }

    #[test]
    fn d001_fires_on_hash_module_paths() {
        let src = "use std::collections::hash_map::Entry;";
        assert_eq!(codes(src, CrateClass::Critical), vec!["D001"]);
    }

    #[test]
    fn d001_ignores_strings_and_comments() {
        let src = "// a HashMap would be bad\nlet s = \"HashMap\";";
        assert!(codes(src, CrateClass::Critical).is_empty());
    }

    #[test]
    fn d002_fires_everywhere() {
        let src = "let t = Instant::now(); let s = SystemTime::now();";
        assert_eq!(codes(src, CrateClass::Tooling), vec!["D002", "D002"]);
        assert_eq!(codes(src, CrateClass::Critical), vec!["D002", "D002"]);
    }

    #[test]
    fn d002_ignores_bare_instant() {
        assert!(codes("use std::time::Instant;", CrateClass::Tooling).is_empty());
    }

    #[test]
    fn d003_flags_accumulation_over_hash_values() {
        let src = "let mut m: HashMap<u64, f64> = HashMap::new();\n\
                   let mut total = 0.0;\n\
                   for v in m.values() { total += v; }";
        let c = codes(src, CrateClass::Critical);
        assert!(c.contains(&"D003"), "got {c:?}");
    }

    #[test]
    fn d003_flags_sum_chains() {
        let src = "let m = HashMap::new();\nlet s: f64 = m.values().sum();";
        assert!(codes(src, CrateClass::Critical).contains(&"D003"));
    }

    #[test]
    fn d003_quiet_without_accumulation() {
        let src = "let m = HashMap::new();\nfor v in m.values() { println!(\"{v}\"); }";
        assert!(!codes(src, CrateClass::Critical).contains(&"D003"));
    }

    #[test]
    fn d004_flags_hashers_and_thread_identity() {
        let src = "let h = DefaultHasher::new();\nlet s = RandomState::new();\nlet t = thread::current();";
        assert_eq!(
            codes(src, CrateClass::Critical),
            vec!["D004", "D004", "D004"]
        );
        assert!(codes(src, CrateClass::Tooling).is_empty());
    }

    #[test]
    fn d005_flags_static_mut_and_env_reads() {
        let src = "static mut X: u64 = 0;\nfn f() { let _ = std::env::var(\"SEED\"); }";
        assert_eq!(codes(src, CrateClass::Critical), vec!["D005", "D005"]);
        assert!(codes(src, CrateClass::Tooling).is_empty());
    }

    #[test]
    fn d005_allows_env_args() {
        assert!(codes("let a = std::env::args();", CrateClass::Critical).is_empty());
    }

    #[test]
    fn plain_static_is_fine() {
        assert!(codes("static X: u64 = 0;", CrateClass::Critical).is_empty());
    }
}
