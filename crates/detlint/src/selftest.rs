//! Fixture-driven self-test: every rule has positive, negative and
//! waived example files under `fixtures/`, each paired with a golden
//! diagnostic listing under `fixtures/expected/`. `detlint --self-test`
//! and `cargo test -p detlint` both run this, so the lint cannot drift
//! from its own spec silently.
//!
//! Plain fixtures are single `.rs` files scanned as a critical crate
//! named `fixture` unless a directive comment says otherwise:
//!
//! - `detlint-fixture-class: tooling` — scan as a tooling crate.
//! - `detlint-fixture-crate: sim` — scan under that crate name (the
//!   P/A-rules gate on explicit crate lists, so panic/arithmetic
//!   fixtures opt in this way).
//! - `detlint-fixture-mode: workspace` — scan with workspace-mode
//!   semantics (W002 promoted to an error).
//!
//! Trace-contract (T-rule) fixtures are three-file trios under
//! `fixtures/tcontract/<case>/{event.rs,audit.rs,trace_export.rs}`,
//! checked with [`crate::contract::check_sources`] and rendered
//! through the same waiver-aware engine; goldens live at
//! `fixtures/expected/tcontract_<case>.txt`.

use crate::contract;
use crate::engine::scan_source;
use crate::rules::{CrateClass, ScanCtx};
use std::fmt::Write as _;
use std::path::Path;

/// Outcome of a self-test run.
#[derive(Debug, Default)]
pub struct SelfTest {
    /// Number of fixture files checked.
    pub fixtures: usize,
    /// One human-readable entry per failing fixture; empty = pass.
    pub failures: Vec<String>,
}

impl SelfTest {
    /// True when every fixture matched its golden output.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.fixtures > 0
    }
}

/// Directive that marks a fixture as tooling-classed (see
/// [`CrateClass`]); everything else is scanned as critical.
const TOOLING_DIRECTIVE: &str = "detlint-fixture-class: tooling";
/// Directive prefix that sets the crate name a fixture scans under.
const CRATE_DIRECTIVE: &str = "detlint-fixture-crate:";
/// Directive that turns on workspace-mode semantics for a fixture.
const WORKSPACE_DIRECTIVE: &str = "detlint-fixture-mode: workspace";

/// Extracts the value of a `key: value` directive from fixture source.
fn directive_value<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let pos = src.find(key)?;
    src[pos + key.len()..]
        .lines()
        .next()
        .map(str::trim)?
        .split_whitespace()
        .next()
}

/// Runs every fixture and compares against its golden file.
pub fn run(fixture_dir: &Path) -> std::io::Result<SelfTest> {
    let mut result = SelfTest::default();
    let mut names: Vec<_> = std::fs::read_dir(fixture_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();

    for path in names {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<fixture>")
            .to_string();
        let stem = name.trim_end_matches(".rs");
        let src = std::fs::read_to_string(&path)?;
        let class = if src.contains(TOOLING_DIRECTIVE) {
            CrateClass::Tooling
        } else {
            CrateClass::Critical
        };
        let crate_name = directive_value(&src, CRATE_DIRECTIVE).unwrap_or("fixture");
        let ctx = ScanCtx {
            class,
            crate_name,
            workspace: src.contains(WORKSPACE_DIRECTIVE),
            test_file: false,
        };
        let report = scan_source(&name, &src, &ctx, &[]);
        let mut got = String::new();
        for d in &report.diags {
            writeln!(got, "{}", d.render()).unwrap();
        }
        check_golden(fixture_dir, stem, &name, &got, &mut result);
    }

    // Trace-contract trios.
    let tdir = fixture_dir.join("tcontract");
    if tdir.is_dir() {
        let mut cases: Vec<_> = std::fs::read_dir(&tdir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        cases.sort();
        for case in cases {
            let case_name = case
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("<case>")
                .to_string();
            let event = std::fs::read_to_string(case.join("event.rs"))?;
            let audit = std::fs::read_to_string(case.join("audit.rs"))?;
            let export = std::fs::read_to_string(case.join("trace_export.rs"))?;
            let got = match contract::check_sources(&event, &audit, &export) {
                Ok(raws) => {
                    let ctx = ScanCtx {
                        class: CrateClass::Critical,
                        crate_name: "trace",
                        workspace: true,
                        test_file: false,
                    };
                    let file = format!("tcontract/{case_name}/event.rs");
                    let report = scan_source(&file, &event, &ctx, &raws);
                    let mut s = String::new();
                    for d in &report.diags {
                        writeln!(s, "{}", d.render()).unwrap();
                    }
                    s
                }
                Err(msg) => format!("contract error: {msg}\n"),
            };
            let stem = format!("tcontract_{case_name}");
            let display = format!("tcontract/{case_name}");
            check_golden(fixture_dir, &stem, &display, &got, &mut result);
        }
    }
    Ok(result)
}

fn check_golden(fixture_dir: &Path, stem: &str, name: &str, got: &str, result: &mut SelfTest) {
    let golden_path = fixture_dir.join("expected").join(format!("{stem}.txt"));
    let want = std::fs::read_to_string(&golden_path).unwrap_or_default();
    result.fixtures += 1;
    if normalise(got) != normalise(&want) {
        result.failures.push(format!(
            "fixture {name}: diagnostics diverge from {}\n--- expected ---\n{want}\n--- got ---\n{got}",
            golden_path.display()
        ));
    }
}

fn normalise(text: &str) -> Vec<String> {
    text.lines().map(|l| l.trim_end().to_string()).collect()
}

/// The crate's own fixture directory (compile-time path; the fixtures
/// ship in-tree).
pub fn default_fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}
