//! Fixture-driven self-test: every rule has positive, negative and
//! waived example files under `fixtures/`, each paired with a golden
//! diagnostic listing under `fixtures/expected/`. `detlint --self-test`
//! and `cargo test -p detlint` both run this, so the lint cannot drift
//! from its own spec silently.

use crate::engine::scan_source;
use crate::rules::CrateClass;
use std::fmt::Write as _;
use std::path::Path;

/// Outcome of a self-test run.
#[derive(Debug, Default)]
pub struct SelfTest {
    /// Number of fixture files checked.
    pub fixtures: usize,
    /// One human-readable entry per failing fixture; empty = pass.
    pub failures: Vec<String>,
}

impl SelfTest {
    /// True when every fixture matched its golden output.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.fixtures > 0
    }
}

/// Directive that marks a fixture as tooling-classed (see
/// [`CrateClass`]); everything else is scanned as critical.
const TOOLING_DIRECTIVE: &str = "detlint-fixture-class: tooling";

/// Runs every fixture and compares against its golden file.
pub fn run(fixture_dir: &Path) -> std::io::Result<SelfTest> {
    let mut result = SelfTest::default();
    let mut names: Vec<_> = std::fs::read_dir(fixture_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();

    for path in names {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<fixture>")
            .to_string();
        let stem = name.trim_end_matches(".rs");
        let src = std::fs::read_to_string(&path)?;
        let class = if src.contains(TOOLING_DIRECTIVE) {
            CrateClass::Tooling
        } else {
            CrateClass::Critical
        };
        let report = scan_source(&name, &src, class, "fixture");
        let mut got = String::new();
        for d in &report.diags {
            writeln!(got, "{}", d.render()).unwrap();
        }
        let golden_path = fixture_dir.join("expected").join(format!("{stem}.txt"));
        let want = std::fs::read_to_string(&golden_path).unwrap_or_default();
        result.fixtures += 1;
        if normalise(&got) != normalise(&want) {
            result.failures.push(format!(
                "fixture {name}: diagnostics diverge from {}\n--- expected ---\n{want}\n--- got ---\n{got}",
                golden_path.display()
            ));
        }
    }
    Ok(result)
}

fn normalise(text: &str) -> Vec<String> {
    text.lines().map(|l| l.trim_end().to_string()).collect()
}

/// The crate's own fixture directory (compile-time path; the fixtures
/// ship in-tree).
pub fn default_fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}
