//! The `detlint` command-line interface.
//!
//! ```text
//! cargo run -p detlint -- --workspace            # lint the whole tree
//! cargo run -p detlint -- crates/htm/src/state.rs
//! cargo run -p detlint -- --workspace --json report.json --sarif report.sarif
//! cargo run -p detlint -- --self-test            # run the rule fixtures
//! cargo run -p detlint -- --list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found (or self-test failure),
//! `2` usage or I/O error.

use detlint::contract;
use detlint::engine::{json_report, scan_source, Diagnostic};
use detlint::rules::{RawDiag, ScanCtx, Severity, RULES};
use detlint::sarif::sarif_report;
use detlint::workspace::{classify, collect_files, find_root, is_test_path};
use detlint::{selftest, workspace};
use std::path::PathBuf;

const USAGE: &str = "\
detlint — static analysis for the BFGTS workspace
(determinism, panic-safety, cycle-arithmetic, trace-contract rules)

USAGE:
    detlint [--workspace | PATH...] [--json PATH] [--sarif PATH] [--quiet]
    detlint --self-test
    detlint --list-rules

OPTIONS:
    --workspace    lint every .rs file of the enclosing cargo workspace;
                   also runs the cross-file trace-contract pass (T-rules)
                   and promotes unused waivers (W002) to errors
    --json PATH    also write a machine-readable report (use `-` for stdout)
    --sarif PATH   also write a SARIF 2.1.0 report for CI code scanning
    --quiet        print only the summary line
    --self-test    check the rule fixtures against their golden output
    --list-rules   print the rule table
    -h, --help     this text

Waivers: `// detlint: allow(D00X) -- <reason>` (trailing = that line,
standalone = the next code line; the reason is mandatory).";

struct Args {
    workspace: bool,
    self_test: bool,
    list_rules: bool,
    quiet: bool,
    json: Option<String>,
    sarif: Option<String>,
    paths: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        self_test: false,
        list_rules: false,
        quiet: false,
        json: None,
        sarif: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--self-test" => args.self_test = true,
            "--list-rules" => args.list_rules = true,
            "--quiet" | "-q" => args.quiet = true,
            "--json" => {
                args.json = Some(it.next().ok_or("--json needs a path (or `-`)")?);
            }
            "--sarif" => {
                args.sarif = Some(it.next().ok_or("--sarif needs a path")?);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            s if s.starts_with('-') => return Err(format!("unknown flag `{s}`")),
            s => args.paths.push(s.to_string()),
        }
    }
    if args.workspace && !args.paths.is_empty() {
        return Err("pass either --workspace or explicit paths, not both".into());
    }
    if !args.workspace && !args.self_test && !args.list_rules && args.paths.is_empty() {
        return Err("nothing to do: pass --workspace, paths, --self-test or --list-rules".into());
    }
    Ok(args)
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return 2;
        }
    };

    if args.list_rules {
        for (code, desc) in RULES {
            println!("{code}  {desc}");
        }
        return 0;
    }

    if args.self_test {
        return run_self_test();
    }

    // Resolve the file list: workspace walk, or explicit files/dirs.
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match find_root(&cwd) {
        Some(r) => r,
        None => {
            eprintln!(
                "error: no enclosing cargo workspace found from {}",
                cwd.display()
            );
            return 2;
        }
    };
    let files: Vec<PathBuf> = if args.workspace {
        match collect_files(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot walk workspace: {e}");
                return 2;
            }
        }
    } else {
        let mut out = Vec::new();
        for p in &args.paths {
            let path = PathBuf::from(p);
            if path.is_dir() {
                match workspace::collect_files(&path) {
                    Ok(sub) => out.extend(sub.into_iter().map(|f| path.join(f))),
                    Err(e) => {
                        eprintln!("error: cannot walk {p}: {e}");
                        return 2;
                    }
                }
            } else {
                out.push(path);
            }
        }
        out
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut waived = 0u32;
    let mut scanned = 0usize;

    // The trace-contract pass (T-rules) reads three files at once, so
    // it runs once up front in workspace mode; its findings are
    // anchored at variant declarations in event.rs and injected into
    // that file's scan so waivers and W002 accounting apply normally.
    let mut contract_extras: Vec<RawDiag> = Vec::new();
    if args.workspace {
        let read = |rel: &str| std::fs::read_to_string(root.join(rel));
        let sources = (
            read(contract::EVENT_PATH),
            read(contract::AUDIT_PATH),
            read(contract::EXPORT_PATH),
        );
        let outcome = match sources {
            (Ok(ev), Ok(au), Ok(ex)) => contract::check_sources(&ev, &au, &ex),
            (Err(e), _, _) => Err(format!("cannot read {}: {e}", contract::EVENT_PATH)),
            (_, Err(e), _) => Err(format!("cannot read {}: {e}", contract::AUDIT_PATH)),
            (_, _, Err(e)) => Err(format!("cannot read {}: {e}", contract::EXPORT_PATH)),
        };
        match outcome {
            Ok(raws) => contract_extras = raws,
            Err(msg) => diags.push(Diagnostic {
                code: "T001".into(),
                severity: Severity::Error,
                file: contract::EVENT_PATH.into(),
                line: 0,
                col: 0,
                message: format!("trace contract check failed: {msg}"),
                hint: "the T-rules need a parseable `enum TraceEvent`, audit and exporter".into(),
            }),
        }
    }

    for file in &files {
        // Diagnostics use workspace-relative paths so output is stable
        // regardless of where the tool was invoked from.
        let abs = if file.is_absolute() {
            file.clone()
        } else if args.workspace {
            root.join(file)
        } else {
            cwd.join(file)
        };
        let display = abs
            .strip_prefix(&root)
            .unwrap_or(&abs)
            .to_string_lossy()
            .replace('\\', "/");
        let src = match std::fs::read_to_string(&abs) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {display}: {e}");
                return 2;
            }
        };
        let (crate_name, class) = classify(&display);
        let ctx = ScanCtx {
            class,
            crate_name: &crate_name,
            workspace: args.workspace,
            test_file: is_test_path(&display),
        };
        let extra: &[RawDiag] = if args.workspace && display == contract::EVENT_PATH {
            &contract_extras
        } else {
            &[]
        };
        let report = scan_source(&display, &src, &ctx, extra);
        scanned += 1;
        waived += report.waived;
        diags.extend(report.diags);
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.col, &a.code).cmp(&(&b.file, b.line, b.col, &b.code)));

    if !args.quiet {
        for d in &diags {
            println!("{}", d.render());
        }
    }
    println!(
        "detlint: {scanned} file(s) scanned, {} diagnostic(s), {waived} waived",
        diags.len()
    );

    if let Some(target) = &args.json {
        let report = json_report(&diags, scanned, waived).to_string();
        if target == "-" {
            println!("{report}");
        } else if let Err(e) = std::fs::write(target, report + "\n") {
            eprintln!("error: cannot write {target}: {e}");
            return 2;
        }
    }

    if let Some(target) = &args.sarif {
        let report = sarif_report(&diags).to_string();
        if let Err(e) = std::fs::write(target, report + "\n") {
            eprintln!("error: cannot write {target}: {e}");
            return 2;
        }
    }

    i32::from(!diags.is_empty())
}

fn run_self_test() -> i32 {
    match selftest::run(&selftest::default_fixture_dir()) {
        Ok(result) => {
            for failure in &result.failures {
                eprintln!("FAIL {failure}");
            }
            println!(
                "detlint self-test: {} fixture(s), {} failure(s)",
                result.fixtures,
                result.failures.len()
            );
            i32::from(!result.passed())
        }
        Err(e) => {
            eprintln!("error: cannot run self-test: {e}");
            2
        }
    }
}
