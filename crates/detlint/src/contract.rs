//! T-rules: cross-file trace-contract coverage.
//!
//! The trace vocabulary is a three-party contract: `trace/src/event.rs`
//! declares the `TraceEvent` enum, `trace/src/audit.rs` must match
//! every variant when replaying a run against the I1–I8 invariants, and
//! `bench/src/trace_export.rs` must give every variant a JSONL
//! encoding. A new event kind that the audit silently ignores is
//! exactly the hazard this pass turns into a hard lint error.
//!
//! The check is lexical, like the rest of detlint: it parses the enum
//! body out of the token stream, takes the canonical snake-case names
//! from the `name()` match arms (falling back to a camel→snake
//! derivation), and then requires a `TraceEvent::Variant` token
//! sequence in the audit and both the variant identifier and its
//! canonical name string in the exporter. Findings are anchored at the
//! variant's declaration line in `event.rs`, so the ordinary waiver
//! syntax applies there.

use crate::lexer::{lex, TokKind};
use crate::rules::{RawDiag, Severity};

/// Workspace-relative path of the enum declaration.
pub const EVENT_PATH: &str = "crates/trace/src/event.rs";
/// Workspace-relative path of the replay audit (T001 target).
pub const AUDIT_PATH: &str = "crates/trace/src/audit.rs";
/// Workspace-relative path of the JSONL exporter (T002 target).
pub const EXPORT_PATH: &str = "crates/bench/src/trace_export.rs";

/// One declared `TraceEvent` variant.
#[derive(Debug)]
pub struct Variant {
    /// The variant identifier (`TxBegin`).
    pub name: String,
    /// The canonical snake-case name (`tx_begin`).
    pub snake: String,
    /// Declaration position in `event.rs` (diagnostics anchor here).
    pub line: u32,
    /// 1-based column of the variant identifier.
    pub col: u32,
}

/// Parses the `TraceEvent` variants (names, canonical strings,
/// declaration positions) out of `event.rs` source text.
pub fn parse_variants(event_src: &str) -> Result<Vec<Variant>, String> {
    let lexed =
        lex(event_src).map_err(|(line, msg)| format!("cannot lex {EVENT_PATH}:{line}: {msg}"))?;
    let toks = &lexed.tokens;

    // Find `enum TraceEvent {` and walk its body at brace depth 1:
    // variant identifiers sit directly after the opening brace or a
    // `,`; their payload braces push the depth to 2 and are skipped.
    let start = toks
        .windows(2)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident("TraceEvent"))
        .ok_or_else(|| format!("no `enum TraceEvent` found in {EVENT_PATH}"))?;
    let open = (start..toks.len())
        .find(|&i| toks[i].is_punct("{"))
        .ok_or_else(|| format!("`enum TraceEvent` in {EVENT_PATH} has no body"))?;

    let mut variants = Vec::new();
    let mut depth = 1i32;
    let mut at_variant_position = true;
    let mut i = open + 1;
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
        } else if depth == 1 {
            if t.is_punct(",") {
                at_variant_position = true;
            } else if at_variant_position && t.kind == TokKind::Ident {
                variants.push(Variant {
                    name: t.text.clone(),
                    snake: camel_to_snake(&t.text),
                    line: t.line,
                    col: t.col,
                });
                at_variant_position = false;
            }
        }
        i += 1;
    }
    if variants.is_empty() {
        return Err(format!(
            "`enum TraceEvent` in {EVENT_PATH} declares no variants"
        ));
    }

    // The `name()` match arms are the authoritative canonical names:
    // `TraceEvent::TxBegin { .. } => "tx_begin"`.
    for i in 0..toks.len() {
        if !toks[i].is_ident("TraceEvent")
            || !toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            || !toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            continue;
        }
        let name = toks[i + 2].text.as_str();
        // Scan a short window for `=> "literal"`.
        for j in i + 3..(i + 24).min(toks.len().saturating_sub(1)) {
            if toks[j].is_punct(";") || toks[j].is_ident("TraceEvent") {
                break;
            }
            if toks[j].is_punct("=")
                && toks.get(j + 1).is_some_and(|n| n.is_punct(">"))
                && toks.get(j + 2).is_some_and(|n| n.kind == TokKind::Str)
            {
                if let Some(v) = variants.iter_mut().find(|v| v.name == name) {
                    v.snake = toks[j + 2].text.clone();
                }
                break;
            }
        }
    }
    Ok(variants)
}

fn camel_to_snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// The set of variant names referenced as `TraceEvent::X` in `src`,
/// plus every string literal (for the canonical-name check).
fn coverage(src: &str, path: &str) -> Result<(Vec<String>, Vec<String>), String> {
    let lexed = lex(src).map_err(|(line, msg)| format!("cannot lex {path}:{line}: {msg}"))?;
    let toks = &lexed.tokens;
    let mut idents = Vec::new();
    let mut strs = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("TraceEvent")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            idents.push(toks[i + 2].text.clone());
        }
        if t.kind == TokKind::Str {
            strs.push(t.text.clone());
        }
    }
    Ok((idents, strs))
}

fn variant_tokens(v: &Variant, code: &'static str, message: String, hint: &'static str) -> RawDiag {
    RawDiag {
        code,
        severity: Severity::Error,
        line: v.line,
        col: v.col,
        message,
        hint,
    }
}

/// Runs the full contract check over the three files' source text.
/// Returns raw T-diagnostics anchored at variant declarations in
/// `event.rs` (route them through [`crate::engine::scan_source`] as
/// `extra` so waivers apply), or an error when the enum or a file
/// cannot be parsed at all.
pub fn check_sources(event: &str, audit: &str, export: &str) -> Result<Vec<RawDiag>, String> {
    let variants = parse_variants(event)?;
    let (audit_idents, _) = coverage(audit, AUDIT_PATH)?;
    let (export_idents, export_strs) = coverage(export, EXPORT_PATH)?;

    let mut out = Vec::new();
    for v in &variants {
        if !audit_idents.contains(&v.name) {
            out.push(variant_tokens(
                v,
                "T001",
                format!(
                    "trace contract: variant `{}` has no `TraceEvent::{}` match in {AUDIT_PATH}",
                    v.name, v.name
                ),
                "extend the replay audit to cover the new event kind so invariant \
                 checking stays total; waive at the variant with \
                 `// detlint: allow(T001) -- <why>`",
            ));
        }
        if !export_idents.contains(&v.name) {
            out.push(variant_tokens(
                v,
                "T002",
                format!(
                    "trace contract: variant `{}` is not handled in {EXPORT_PATH}",
                    v.name
                ),
                T002_HINT,
            ));
        } else if !export_strs.contains(&v.snake) {
            out.push(variant_tokens(
                v,
                "T002",
                format!(
                    "trace contract: canonical name \"{}\" for variant `{}` never appears \
                     in {EXPORT_PATH}",
                    v.snake, v.name
                ),
                T002_HINT,
            ));
        }
    }
    Ok(out)
}

const T002_HINT: &str = "teach rec_to_json/rec_from_json the new event kind (ident match \
                         arm + canonical name string) so JSONL round-tripping stays total; \
                         waive at the variant with `// detlint: allow(T002) -- <why>`";

#[cfg(test)]
mod tests {
    use super::*;

    const EVENT: &str = r#"
pub enum TraceEvent {
    Charge { at: u64, cycles: u64 },
    TxBegin { tid: u32 },
    SchedDecision { cpu: u16 },
}
impl TraceEvent {
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Charge { .. } => "charge",
            TraceEvent::TxBegin { .. } => "tx_begin",
            TraceEvent::SchedDecision { .. } => "sched",
        }
    }
}
"#;

    #[test]
    fn parses_variants_and_canonical_names() {
        let vs = parse_variants(EVENT).unwrap();
        let names: Vec<_> = vs.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Charge", "TxBegin", "SchedDecision"]);
        // `name()` arms win over camel→snake derivation.
        assert_eq!(vs[2].snake, "sched");
        assert_eq!(vs[1].snake, "tx_begin");
    }

    #[test]
    fn camel_to_snake_fallback() {
        assert_eq!(camel_to_snake("FaultBloomCorrupt"), "fault_bloom_corrupt");
        assert_eq!(camel_to_snake("TxBegin"), "tx_begin");
    }

    #[test]
    fn complete_coverage_is_clean() {
        let audit = "fn replay(e: &TraceEvent) { match e {\
                     TraceEvent::Charge { .. } => {}\
                     TraceEvent::TxBegin { .. } => {}\
                     TraceEvent::SchedDecision { .. } => {} } }";
        let export = r#"fn to_json(e: &TraceEvent) { match e {
                     TraceEvent::Charge { .. } => j("charge"),
                     TraceEvent::TxBegin { .. } => j("tx_begin"),
                     TraceEvent::SchedDecision { .. } => j("sched"), } }"#;
        let raws = check_sources(EVENT, audit, export).unwrap();
        assert!(raws.is_empty(), "{raws:?}");
    }

    #[test]
    fn missing_audit_arm_is_t001() {
        let audit = "fn replay(e: &TraceEvent) { match e {\
                     TraceEvent::Charge { .. } => {}\
                     TraceEvent::SchedDecision { .. } => {} _ => {} } }";
        let export = r#"fn f() { let _ = (TraceEvent::Charge, "charge",
                     TraceEvent::TxBegin, "tx_begin",
                     TraceEvent::SchedDecision, "sched"); }"#;
        let raws = check_sources(EVENT, audit, export).unwrap();
        assert_eq!(raws.len(), 1);
        assert_eq!(raws[0].code, "T001");
        assert!(raws[0].message.contains("TxBegin"));
        // Anchored at the variant's declaration line in event.rs.
        assert_eq!(raws[0].line, 4);
    }

    #[test]
    fn missing_export_string_is_t002() {
        let audit = "fn f() { let _ = (TraceEvent::Charge, TraceEvent::TxBegin, \
                     TraceEvent::SchedDecision); }";
        // TxBegin ident present but canonical string misspelled.
        let export = r#"fn f() { let _ = (TraceEvent::Charge, "charge",
                     TraceEvent::TxBegin, "txbegin",
                     TraceEvent::SchedDecision, "sched"); }"#;
        let raws = check_sources(EVENT, audit, export).unwrap();
        assert_eq!(raws.len(), 1);
        assert_eq!(raws[0].code, "T002");
        assert!(raws[0].message.contains("tx_begin"), "{}", raws[0].message);
    }

    #[test]
    fn missing_enum_is_an_error() {
        assert!(check_sources("fn f() {}", "", "").is_err());
    }
}
