//! A lightweight item tree over the token stream.
//!
//! The P- and A-rules need more structure than a flat token scan: *which
//! function* a token sits in (hot-path severity), and whether it is
//! inside a `#[cfg(test)]` region or `#[test]` fn (tests may panic and
//! use bare arithmetic freely). Full parsing is out of scope — the
//! build must work against an offline registry, so no `syn` — but
//! brace-matching the token stream recovers exactly the structure the
//! rules need: `fn` bodies qualified by their enclosing `impl` type,
//! and the spans of test-only items.
//!
//! The tree is a heuristic, like every rule in this linter: pathological
//! token sequences (macros that generate item syntax, `union` fields
//! named `fn`) can confuse it, but on this workspace's style it is
//! exact, and both failure modes are benign — a missed fn span only
//! downgrades a diagnostic's severity, and a missed test span produces
//! a diagnostic that an explicit waiver can silence.

use crate::lexer::{TokKind, Token};

/// Rust keywords that can directly precede `[` or an operator without
/// being an operand (used by rules to tell `let [a, b]` from `xs[i]`).
pub const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "union", "unsafe", "use", "where", "while",
];

/// One brace-matched `fn` body.
#[derive(Debug)]
pub struct FnSpan {
    /// `Type::name` when the fn sits in an `impl Type` block, else
    /// `name`.
    pub qualified: String,
    /// Token index of the body's opening `{`.
    pub open: usize,
    /// Token index of the matching `}` (`tokens.len()` when the file
    /// ends before the brace closes — lint tolerance, not an error).
    pub close: usize,
    /// True for `#[test]` fns and fns inside `#[cfg(test)]` items.
    pub test: bool,
}

/// Brace-matched structure of one file: fn spans and test-only regions.
#[derive(Debug, Default)]
pub struct ItemTree {
    fns: Vec<FnSpan>,
    /// Token-index spans (open brace ..= close brace) of outermost
    /// `#[cfg(test)]` / `#[test]` items.
    tests: Vec<(usize, usize)>,
}

/// What kind of item a pending declaration will open.
enum Pending {
    Fn { name: String, test: bool },
    Impl { ty: String, test: bool },
    Other { test: bool },
}

enum FrameKind {
    Fn(usize),
    Impl(String),
    Other,
}

struct Frame {
    kind: FrameKind,
    open: usize,
    test: bool,
}

impl ItemTree {
    /// Builds the tree in one pass over the token stream.
    pub fn build(tokens: &[Token]) -> ItemTree {
        let mut tree = ItemTree::default();
        let mut stack: Vec<Frame> = Vec::new();
        let mut pending: Option<Pending> = None;
        let mut attr_test = false;
        let mut i = 0usize;

        while i < tokens.len() {
            let t = &tokens[i];
            // Outer attribute: scan `#[...]` for cfg(test) / test.
            if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
                let (is_test, after) = scan_attr(tokens, i + 1);
                attr_test |= is_test;
                i = after;
                continue;
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    // `fn name(...)`: only an item when a name follows
                    // (a `fn(u64) -> u64` pointer type has `(` next).
                    "fn" if tokens.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                        pending = Some(Pending::Fn {
                            name: tokens[i + 1].text.clone(),
                            test: attr_test,
                        });
                        attr_test = false;
                    }
                    // Guard: `impl` in return/argument position
                    // (`-> impl Iterator`) arrives while a fn is
                    // pending; only a bare `impl` opens an item.
                    "impl" if pending.is_none() => {
                        pending = Some(Pending::Impl {
                            ty: impl_type_name(tokens, i),
                            test: attr_test,
                        });
                        attr_test = false;
                    }
                    "mod" | "struct" | "enum" | "union" | "trait" if pending.is_none() => {
                        pending = Some(Pending::Other { test: attr_test });
                        attr_test = false;
                    }
                    _ => {}
                }
                i += 1;
                continue;
            }
            if t.is_punct(";") {
                // Trait method decl, `mod foo;`, or end of statement:
                // whatever was pending never opens a body.
                pending = None;
                attr_test = false;
                i += 1;
                continue;
            }
            if t.is_punct("{") {
                let parent_test = stack.last().is_some_and(|f| f.test);
                let frame = match pending.take() {
                    Some(Pending::Fn { name, test }) => {
                        let qualified = match innermost_impl(&stack) {
                            Some(ty) => format!("{ty}::{name}"),
                            None => name,
                        };
                        tree.fns.push(FnSpan {
                            qualified,
                            open: i,
                            close: tokens.len(),
                            test: test || parent_test,
                        });
                        Frame {
                            kind: FrameKind::Fn(tree.fns.len() - 1),
                            open: i,
                            test: test || parent_test,
                        }
                    }
                    Some(Pending::Impl { ty, test }) => Frame {
                        kind: FrameKind::Impl(ty),
                        open: i,
                        test: test || parent_test,
                    },
                    Some(Pending::Other { test }) => Frame {
                        kind: FrameKind::Other,
                        open: i,
                        test: test || parent_test,
                    },
                    None => Frame {
                        kind: FrameKind::Other,
                        open: i,
                        test: parent_test,
                    },
                };
                stack.push(frame);
                i += 1;
                continue;
            }
            if t.is_punct("}") {
                if let Some(frame) = stack.pop() {
                    if let FrameKind::Fn(idx) = frame.kind {
                        tree.fns[idx].close = i;
                    }
                    let parent_test = stack.last().is_some_and(|f| f.test);
                    if frame.test && !parent_test {
                        tree.tests.push((frame.open, i));
                    }
                }
                i += 1;
                continue;
            }
            i += 1;
        }
        // Unclosed frames at EOF (tolerated): close test spans at the
        // end of the stream so containment queries stay well-defined.
        while let Some(frame) = stack.pop() {
            let parent_test = stack.last().is_some_and(|f| f.test);
            if frame.test && !parent_test {
                tree.tests.push((frame.open, tokens.len()));
            }
        }
        tree
    }

    /// The innermost fn whose body contains token `i`, if any.
    pub fn fn_at(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.open < i && i < f.close)
            .max_by_key(|f| f.open)
    }

    /// True if token `i` sits inside a `#[cfg(test)]` item or `#[test]`
    /// fn.
    pub fn in_test(&self, i: usize) -> bool {
        self.tests
            .iter()
            .any(|&(open, close)| open < i && i < close)
            || self.fn_at(i).is_some_and(|f| f.test)
    }
}

/// Scans an attribute starting at its `[` token. Returns whether it
/// marks a test item (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ..))]`
/// — but not `#[cfg(not(test))]`) and the token index just past the
/// closing `]`.
fn scan_attr(tokens: &[Token], open: usize) -> (bool, usize) {
    let mut depth = 0i32;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if t.kind == TokKind::Ident {
            idents.push(t.text.as_str());
        }
        j += 1;
    }
    let is_test = idents.contains(&"test")
        && !idents.contains(&"not")
        && matches!(idents.first(), Some(&"test") | Some(&"cfg"));
    (is_test, j)
}

/// The self-type of an `impl` header at token `i`: the last path
/// segment at angle-depth 0 before the body brace or a `where` clause,
/// with segments after `for` winning (`impl Add for Cycle` → `Cycle`).
fn impl_type_name(tokens: &[Token], i: usize) -> String {
    let mut ty = String::new();
    let mut angle = 0i32;
    let mut j = i + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("{") || t.is_punct(";") || t.is_ident("where") {
            break;
        }
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            // `->` in an `impl Fn(..) -> T` header: not a closer.
            if !tokens.get(j - 1).is_some_and(|p| p.is_punct("-")) {
                angle = (angle - 1).max(0);
            }
        } else if angle == 0 && t.kind == TokKind::Ident {
            if t.text == "for" {
                ty.clear();
            } else if !KEYWORDS.contains(&t.text.as_str()) {
                ty = t.text.clone();
            }
        }
        j += 1;
    }
    ty
}

fn innermost_impl(stack: &[Frame]) -> Option<&str> {
    stack.iter().rev().find_map(|f| match &f.kind {
        FrameKind::Impl(ty) if !ty.is_empty() => Some(ty.as_str()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> (Vec<Token>, ItemTree) {
        let toks = lex(src).unwrap().tokens;
        let tree = ItemTree::build(&toks);
        (toks, tree)
    }

    fn fn_name_at_ident(src: &str, ident: &str) -> Option<String> {
        let (toks, tree) = tree_of(src);
        let i = toks.iter().position(|t| t.is_ident(ident)).unwrap();
        tree.fn_at(i).map(|f| f.qualified.clone())
    }

    #[test]
    fn free_fn_span() {
        assert_eq!(
            fn_name_at_ident("fn step() { let marker = 1; }", "marker").as_deref(),
            Some("step")
        );
    }

    #[test]
    fn impl_qualifies_fn_names() {
        let src = "impl<W: World> Engine<W> { fn pop(&mut self) { let marker = 1; } }";
        assert_eq!(
            fn_name_at_ident(src, "marker").as_deref(),
            Some("Engine::pop")
        );
    }

    #[test]
    fn trait_impl_uses_self_type() {
        let src = "impl fmt::Display for Cycle { fn fmt(&self) { let marker = 1; } }";
        assert_eq!(
            fn_name_at_ident(src, "marker").as_deref(),
            Some("Cycle::fmt")
        );
    }

    #[test]
    fn nested_blocks_stay_in_the_fn() {
        let src = "fn outer() { if x { match y { _ => { let marker = 1; } } } }";
        assert_eq!(fn_name_at_ident(src, "marker").as_deref(), Some("outer"));
    }

    #[test]
    fn innermost_fn_wins() {
        let src = "fn outer() { fn inner() { let marker = 1; } }";
        assert_eq!(fn_name_at_ident(src, "marker").as_deref(), Some("inner"));
    }

    #[test]
    fn trait_method_decl_without_body_is_not_a_span() {
        let src = "trait T { fn go(&self); } fn real() { let marker = 1; }";
        assert_eq!(fn_name_at_ident(src, "marker").as_deref(), Some("real"));
    }

    #[test]
    fn return_position_impl_does_not_open_a_frame() {
        let src = "fn make() -> impl Iterator<Item = u64> { let marker = 1; }";
        assert_eq!(fn_name_at_ident(src, "marker").as_deref(), Some("make"));
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() { let marker = 1; } }";
        let (toks, tree) = tree_of(src);
        let i = toks.iter().position(|t| t.is_ident("marker")).unwrap();
        assert!(tree.in_test(i));
        let j = toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!tree.in_test(j));
    }

    #[test]
    fn test_attr_fn_is_a_test_region() {
        let src = "#[test]\nfn check() { let marker = 1; }\nfn live() { let other = 2; }";
        let (toks, tree) = tree_of(src);
        let i = toks.iter().position(|t| t.is_ident("marker")).unwrap();
        assert!(tree.in_test(i));
        let j = toks.iter().position(|t| t.is_ident("other")).unwrap();
        assert!(!tree.in_test(j));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { let marker = 1; }";
        let (toks, tree) = tree_of(src);
        let i = toks.iter().position(|t| t.is_ident("marker")).unwrap();
        assert!(!tree.in_test(i));
    }

    #[test]
    fn attributes_between_items_do_not_leak() {
        let src = "#[derive(Debug)]\nstruct S { x: u64 }\nfn live() { let marker = 1; }";
        let (toks, tree) = tree_of(src);
        let i = toks.iter().position(|t| t.is_ident("marker")).unwrap();
        assert!(!tree.in_test(i));
        assert_eq!(fn_name_at_ident(src, "marker").as_deref(), Some("live"));
    }
}
