// D005 positive: ambient mutable and environmental state.
static mut COUNTER: u64 = 0;

fn seed_from_env() -> u64 {
    match std::env::var("BFGTS_SEED") {
        Ok(s) => s.parse().unwrap_or(0),
        Err(_) => 0,
    }
}
