// Waiver hygiene: waivers that match nothing must not rot in place.
// detlint: allow(D002) -- left behind after a refactor
fn f() -> u64 {
    42
}
