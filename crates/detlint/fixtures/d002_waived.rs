// detlint-fixture-class: tooling
// D002 waived: the canonical bench-harness pattern.
use std::time::Instant;

fn measure(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now(); // detlint: allow(D002) -- bench harness measures wall time by design
    f();
    t0.elapsed().as_secs_f64()
}
