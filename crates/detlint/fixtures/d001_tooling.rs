// detlint-fixture-class: tooling
// D001 does not apply to tooling crates: their output never feeds
// simulation state.
use std::collections::HashMap;

fn memoise() -> HashMap<String, u64> {
    HashMap::new()
}
