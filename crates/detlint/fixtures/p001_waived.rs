// detlint-fixture-crate: sim
// Waiver interaction: a reasoned waiver silences P001; a stale one is
// still flagged as W002.

impl Engine {
    fn service_cpu(&mut self) -> u64 {
        self.queue.peek().unwrap() // detlint: allow(P001) -- peek follows the non-empty check in step()
    }
}

// detlint: allow(P001) -- stale: nothing on the next line unwraps
fn clean() -> u64 {
    7
}
