// D001 waived: membership-only set whose order never escapes.
// detlint: allow(D001) -- membership queries only; iteration order never observed
use std::collections::HashSet;

fn dedup_len(xs: &[u64]) -> usize {
    let set: HashSet<u64> = xs.iter().copied().collect(); // detlint: allow(D001) -- only len() is read
    set.len()
}
