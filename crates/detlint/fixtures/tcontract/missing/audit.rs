pub fn replay(ev: &TraceEvent) {
    match ev {
        TraceEvent::Charge { .. } => {}
        TraceEvent::TxBegin { .. } => {}
        _ => {}
    }
}
