// Contract fixture: TxAbort is missing from the audit and its
// canonical name never reaches the exporter; CapacityAbort and
// WindowAdvance are the planted controls, uncovered everywhere.

pub enum TraceEvent {
    Charge { at: u64, cycles: u64 },
    TxBegin { tid: u32 },
    TxAbort { tid: u32 },
    CapacityAbort { tid: u32, tracked: u32, capacity: u32 },
    WindowAdvance { thread: u32, window: u64, priority: u64 },
}

impl TraceEvent {
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Charge { .. } => "charge",
            TraceEvent::TxBegin { .. } => "tx_begin",
            TraceEvent::TxAbort { .. } => "tx_abort",
            TraceEvent::CapacityAbort { .. } => "capacity_abort",
            TraceEvent::WindowAdvance { .. } => "window_advance",
        }
    }
}
