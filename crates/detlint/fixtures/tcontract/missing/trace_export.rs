pub fn rec_to_json(ev: &TraceEvent) -> &'static str {
    match ev {
        TraceEvent::Charge { .. } => "charge",
        TraceEvent::TxBegin { .. } => "tx_begin",
        // Ident is matched but the canonical name string is wrong.
        TraceEvent::TxAbort { .. } => "txabort",
    }
}
