// Contract fixture: an experimental variant is uncovered everywhere,
// but a reasoned waiver at the declaration keeps the lint clean.

pub enum TraceEvent {
    Charge { at: u64, cycles: u64 },
    // detlint: allow(T001,T002) -- experimental kind, audit lands with the capacity-abort PR
    ExperimentalProbe { at: u64 },
}

impl TraceEvent {
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Charge { .. } => "charge",
            TraceEvent::ExperimentalProbe { .. } => "experimental_probe",
        }
    }
}
