pub fn rec_to_json(ev: &TraceEvent) -> &'static str {
    match ev {
        TraceEvent::Charge { .. } => "charge",
        _ => "unknown",
    }
}
