pub fn replay(ev: &TraceEvent) {
    match ev {
        TraceEvent::Charge { .. } => {}
        TraceEvent::TxBegin { .. } => {}
        TraceEvent::FalsePositiveConflict { .. } => {}
        TraceEvent::CapacityAbort { .. } => {}
        TraceEvent::WindowAdvance { .. } => {}
    }
}
