pub fn rec_to_json(ev: &TraceEvent) -> &'static str {
    match ev {
        TraceEvent::Charge { .. } => "charge",
        TraceEvent::TxBegin { .. } => "tx_begin",
        TraceEvent::FalsePositiveConflict { .. } => "false_positive_conflict",
        TraceEvent::CapacityAbort { .. } => "capacity_abort",
        TraceEvent::WindowAdvance { .. } => "window_advance",
    }
}
