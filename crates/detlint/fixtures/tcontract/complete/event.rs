// Contract fixture: every variant is audited and exported, including
// the bounded-detection pair (false-positive and capacity aborts) and
// the window-advance announcement the I11 audit recomputes.

pub enum TraceEvent {
    Charge { at: u64, cycles: u64 },
    TxBegin { tid: u32 },
    FalsePositiveConflict { tid: u32, true_conflicts: u64 },
    CapacityAbort { tid: u32, tracked: u32, capacity: u32 },
    WindowAdvance { thread: u32, window: u64, priority: u64 },
}

impl TraceEvent {
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Charge { .. } => "charge",
            TraceEvent::TxBegin { .. } => "tx_begin",
            TraceEvent::FalsePositiveConflict { .. } => "false_positive_conflict",
            TraceEvent::CapacityAbort { .. } => "capacity_abort",
            TraceEvent::WindowAdvance { .. } => "window_advance",
        }
    }
}
