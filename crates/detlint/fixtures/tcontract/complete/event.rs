// Contract fixture: every variant is audited and exported.

pub enum TraceEvent {
    Charge { at: u64, cycles: u64 },
    TxBegin { tid: u32 },
}

impl TraceEvent {
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Charge { .. } => "charge",
            TraceEvent::TxBegin { .. } => "tx_begin",
        }
    }
}
