// D005 negative: immutable statics and argv parsing are fine even in
// critical crates (argv is an explicit input, not ambient state).
static DEFAULT_SEED: u64 = 0xB10_0F17;

fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}
