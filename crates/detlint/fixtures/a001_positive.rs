// detlint-fixture-crate: sim
// A001: bare arithmetic on cycle-flavoured values; checked forms,
// newtype boundaries and neutral names are sanctioned.

fn account(state: &mut Accounting) {
    let t = state.cursor + dist;
    state.tx_work += state.cfg.access_cost;
    let rest = left - chunk;
    let hop = base * state.costs().cross_shard_hop;
    keep(t, rest, hop);
}

fn sanctioned(now: Cycle, cycles: u64, extra: u64, count: u64) -> Cycle {
    let safe = cycles.checked_add(extra).expect("cycle overflow");
    let capped = cycles.saturating_mul(2);
    let idx = count + 1;
    keep_idx(idx);
    now + Cycle::new(safe.max(capped))
}

#[cfg(test)]
mod tests {
    fn arithmetic_in_tests_is_free(cursor: u64) -> u64 {
        cursor + 100
    }
}
