// D003 negative: accumulation over ordered containers is fine, and
// hash iteration without accumulation is D001's business, not D003's.
use std::collections::BTreeMap;

fn total(m: &BTreeMap<u64, f64>) -> f64 {
    let mut acc = 0.0;
    for v in m.values() {
        acc += v;
    }
    acc
}
