// D004 positive: per-process hash randomisation and thread identity.
use std::collections::hash_map::{DefaultHasher, RandomState};
use std::thread;

fn fingerprints() -> (u64, String) {
    let h = DefaultHasher::new();
    let s = RandomState::new();
    let _ = (h, s);
    let name = format!("{:?}", thread::current().id());
    (0, name)
}
