// detlint-fixture-crate: sim
// P001: `.unwrap()` severity splits between hot-path and cold fns;
// `.expect("...")` is the sanctioned form; tests are exempt.

impl CalendarQueue {
    fn pop(&mut self) -> u64 {
        self.overflow.first().unwrap()
    }
}

fn build_queue(input: Option<u64>) -> u64 {
    input.unwrap()
}

fn sanctioned(input: Option<u64>) -> u64 {
    input.expect("caller guarantees a value after the len check")
}

#[cfg(test)]
mod tests {
    fn in_tests(input: Option<u64>) -> u64 {
        input.unwrap()
    }
}
