// D003 positive: float accumulation fed by hash-ordered iteration.
use std::collections::HashMap;

fn total(m: &HashMap<u64, f64>) -> f64 {
    let mut weights: HashMap<u64, f64> = HashMap::new();
    weights.insert(1, 0.5);
    let mut acc = 0.0;
    for w in weights.values() {
        acc += w;
    }
    let direct: f64 = weights.values().sum();
    let folded = weights.values().fold(0.0, |a, b| a + b);
    let _ = (m, direct, folded);
    acc
}
