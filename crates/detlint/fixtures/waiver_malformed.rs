// Waiver hygiene: a reason is mandatory, and codes must be real.
// detlint: allow(D001)
use std::collections::HashSet;

// detlint: allow(D999) -- no such rule
fn f() -> HashSet<u64> {
    HashSet::new()
}
