// detlint-fixture-crate: sim
// P003: raw indexing only fires inside hot-path fns; slice patterns,
// array types, attributes and cold fns stay quiet.

impl CalendarQueue {
    #[inline]
    fn find_next(&self) -> u64 {
        self.words[self.cursor_word()]
    }
}

impl CalendarQueue {
    fn rebuild(&mut self, input: &[u64]) -> [u64; 4] {
        let [a, b] = split(input);
        let slice: &[u64] = input;
        let first = input[0];
        [a, b, first, slice.len() as u64]
    }
}
