// detlint-fixture-crate: sim
// detlint-fixture-mode: workspace
// Waiver interaction under --workspace: a reasoned waiver holds, a
// stale waiver is a hard error (W002 promoted).

fn account(extra: u64, used: u64) -> u64 {
    extra - used // detlint: allow(A001) -- saturation handled by the caller's min()
}

// detlint: allow(A001) -- stale: the next line is checked already
fn checked_path(cycles: u64) -> u64 {
    cycles.saturating_add(1)
}
