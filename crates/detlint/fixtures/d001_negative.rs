// D001 negative: ordered collections are the house style.
use std::collections::{BTreeMap, BTreeSet};

fn count(xs: &[u64]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    let mut seen = BTreeSet::new();
    for &x in xs {
        seen.insert(x);
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
