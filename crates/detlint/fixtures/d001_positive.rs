// D001 positive: hash collections in a (default) critical fixture.
use std::collections::HashMap;
use std::collections::hash_map::Entry;

fn count(xs: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
