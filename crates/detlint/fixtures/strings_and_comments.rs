// Lexer discipline: rule words inside strings, doc comments and raw
// strings must never fire. A grep-based lint fails this file.
//
// HashMap HashSet Instant::now SystemTime static mut env::var

/// Mentions HashMap and `Instant::now()` in prose, which is fine.
/// Docs may even show waiver syntax: `// detlint: allow(D001) -- example`.
fn describe() -> String {
    let a = "HashMap::new() and SystemTime::now()";
    let b = r#"HashSet<u64> via RandomState"#;
    let c = 'x';
    format!("{a}{b}{c}")
}
