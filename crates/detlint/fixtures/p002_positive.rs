// detlint-fixture-crate: htm
// P002: panic-family macros split severity on hot paths; the assert
// family is sanctioned (it names its own invariant).

impl TxThreadLogic {
    fn step(&mut self) {
        panic!("no state machine progress");
    }
}

fn configure(kind: u32) {
    match kind {
        0 => {}
        _ => unreachable!("validated upstream"),
    }
}

fn checked(cfg: &Config) {
    assert!(cfg.cpus > 0, "asserts carry their own message");
    debug_assert_eq!(cfg.shards % 2, 0);
}
