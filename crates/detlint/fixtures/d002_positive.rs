// detlint-fixture-class: tooling
// D002 positive: wall-clock reads are flagged even in tooling crates
// (they may be waived there, but must be visible).
use std::time::{Instant, SystemTime};

fn stamp() -> u128 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let _ = wall;
    t0.elapsed().as_nanos()
}
