//! Golden-file fixture suite: the same corpus `--self-test` runs.
//!
//! Each `fixtures/*.rs` file is scanned and its rendered diagnostics are
//! compared against `fixtures/expected/<stem>.txt`. A fixture without a
//! golden file (or with an empty one) is expected to be clean.

use detlint::selftest;

#[test]
fn fixture_corpus_matches_golden_output() {
    let report = selftest::run(&selftest::default_fixture_dir()).expect("fixture dir readable");
    for failure in &report.failures {
        eprintln!("{failure}");
    }
    assert!(
        report.passed(),
        "{} of {} fixtures diverged from their golden output",
        report.failures.len(),
        report.fixtures
    );
}

#[test]
fn fixture_corpus_covers_every_rule() {
    let dir = selftest::default_fixture_dir();
    let expected_dir = dir.join("expected");
    let mut goldens = String::new();
    for entry in std::fs::read_dir(&expected_dir).expect("read expected dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "txt") {
            goldens.push_str(&std::fs::read_to_string(&path).expect("read golden"));
        }
    }
    for code in [
        "D001", "D002", "D003", "D004", "D005", "P001", "P002", "P003", "A001", "T001", "T002",
        "W001", "W002",
    ] {
        assert!(
            goldens.contains(&format!("[{code}:")),
            "no fixture exercises rule {code}"
        );
    }
    // Both severities and the workspace-mode W002 escalation must be
    // pinned by at least one golden.
    for tag in ["[P001:error]", "[P001:warn]", "[W002:error]", "[W002:warn]"] {
        assert!(goldens.contains(tag), "no fixture pins {tag}");
    }
}
