//! Stall-on-abort (Zilles & Baugh / Ansari et al. "steal-on-abort"
//! family): after a conflict, wait out the *specific* enemy instead of
//! backing off blindly.

use bfgts_htm::{
    AbortPlan, BeginDecision, BeginOutcome, BeginQuery, CommitOutcome, CommitRecord, ConflictEvent,
    ContentionManager, DTxId, TmState,
};
use bfgts_sim::{CostModel, SimRng, TraceSink};
use std::collections::BTreeMap;

/// Tunables of the stall-on-abort manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallConfig {
    /// Fallback backoff window when the enemy is already gone.
    pub fallback_window: u64,
    /// Cycles to look up/record the enemy at begin/abort.
    pub bookkeeping_cost: u64,
}

impl Default for StallConfig {
    fn default() -> Self {
        Self {
            fallback_window: 400,
            bookkeeping_cost: 6,
        }
    }
}

/// The paper's §2 cites Zilles & Baugh (and Ansari's steal-on-abort) as
/// "stalling a transaction to disallow repeated conflicts": when a
/// transaction aborts, its retry waits until the transaction it lost to
/// has finished, rather than retrying into the same conflict or backing
/// off a blind random time.
///
/// This is the minimal *targeted* reactive scheme: no prediction, no
/// conflict history, just "don't run into the same wall twice in a row".
/// It sits between Backoff and the proactive schedulers in both
/// machinery and (on dense benchmarks) behaviour.
///
/// # Example
///
/// ```
/// use bfgts_baselines::StallCm;
/// use bfgts_htm::ContentionManager;
/// assert_eq!(StallCm::default().name(), "StallOnAbort");
/// ```
#[derive(Debug, Clone, Default)]
pub struct StallCm {
    cfg: StallConfig,
    /// Enemy each dTxID last aborted on, consumed at its next begin.
    grudge: BTreeMap<u64, DTxId>,
}

impl StallCm {
    /// Creates a manager with the given tunables.
    pub fn new(cfg: StallConfig) -> Self {
        Self {
            cfg,
            grudge: BTreeMap::new(),
        }
    }
}

impl ContentionManager for StallCm {
    fn name(&self) -> &'static str {
        "StallOnAbort"
    }

    fn on_begin(
        &mut self,
        q: &BeginQuery,
        tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> BeginOutcome {
        let cost = self.cfg.bookkeeping_cost;
        if let Some(enemy) = self.grudge.remove(&q.dtx.pack()) {
            if tm.is_active(enemy) {
                return BeginOutcome {
                    decision: BeginDecision::SpinUntilDone { target: enemy },
                    cost,
                };
            }
        }
        BeginOutcome {
            decision: BeginDecision::Proceed,
            cost,
        }
    }

    fn on_conflict_abort(
        &mut self,
        ev: &ConflictEvent,
        tm: &TmState,
        _costs: &CostModel,
        rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> AbortPlan {
        let backoff = if tm.is_active(ev.enemy) {
            // The begin-time stall will wait the enemy out; retry soon.
            self.grudge.insert(ev.aborter.pack(), ev.enemy);
            0
        } else {
            rng.jitter(self.cfg.fallback_window << ev.retries.min(6))
        };
        AbortPlan {
            backoff,
            cost: self.cfg.bookkeeping_cost,
        }
    }

    fn on_commit(
        &mut self,
        rec: &CommitRecord<'_>,
        _tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> CommitOutcome {
        self.grudge.remove(&rec.dtx.pack());
        CommitOutcome {
            cost: 1,
            wake: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_htm::{LineAddr, STxId};
    use bfgts_sim::{Cycle, ThreadId};

    fn dtx(t: usize, s: u32) -> DTxId {
        DTxId::new(ThreadId(t), STxId(s))
    }

    fn env() -> (TmState, CostModel, SimRng) {
        (
            TmState::new(4, 8),
            CostModel::default(),
            SimRng::seed_from(9),
        )
    }

    fn query(t: usize) -> BeginQuery {
        BeginQuery {
            thread: ThreadId(t),
            cpu: 0,
            dtx: dtx(t, 0),
            now: Cycle::ZERO,
            retries: 0,
            waits: 0,
        }
    }

    #[test]
    fn no_grudge_proceeds() {
        let (tm, costs, mut rng) = env();
        let mut cm = StallCm::default();
        let out = cm.on_begin(&query(0), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(out.decision, BeginDecision::Proceed);
    }

    #[test]
    fn retry_stalls_behind_running_enemy() {
        let (mut tm, costs, mut rng) = env();
        let mut cm = StallCm::default();
        tm.begin_tx(ThreadId(1), 1, dtx(1, 2), Cycle::ZERO);
        let ev = ConflictEvent {
            aborter: dtx(0, 0),
            enemy: dtx(1, 2),
            addr: LineAddr(0),
            now: Cycle::ZERO,
            retries: 0,
        };
        let plan = cm.on_conflict_abort(&ev, &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(plan.backoff, 0, "stalling replaces blind backoff");
        let out = cm.on_begin(&query(0), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(
            out.decision,
            BeginDecision::SpinUntilDone { target: dtx(1, 2) }
        );
        // The grudge is consumed: a second begin proceeds.
        let out = cm.on_begin(&query(0), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(out.decision, BeginDecision::Proceed);
    }

    #[test]
    fn gone_enemy_falls_back_to_backoff() {
        let (tm, costs, mut rng) = env();
        let mut cm = StallCm::default();
        let ev = ConflictEvent {
            aborter: dtx(0, 0),
            enemy: dtx(1, 2), // never began
            addr: LineAddr(0),
            now: Cycle::ZERO,
            retries: 1,
        };
        let plan = cm.on_conflict_abort(&ev, &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert!(plan.backoff <= 400 << 1);
        let out = cm.on_begin(&query(0), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(out.decision, BeginDecision::Proceed);
    }

    #[test]
    fn commit_clears_grudge() {
        let (mut tm, costs, mut rng) = env();
        let mut cm = StallCm::default();
        tm.begin_tx(ThreadId(1), 1, dtx(1, 2), Cycle::ZERO);
        let ev = ConflictEvent {
            aborter: dtx(0, 0),
            enemy: dtx(1, 2),
            addr: LineAddr(0),
            now: Cycle::ZERO,
            retries: 0,
        };
        cm.on_conflict_abort(&ev, &tm, &costs, &mut rng, &mut TraceSink::disabled());
        let rec = CommitRecord {
            dtx: dtx(0, 0),
            rw_set: &[LineAddr(0)],
            now: Cycle::ZERO,
            retries: 1,
            remaining: None,
        };
        cm.on_commit(&rec, &tm, &costs, &mut rng, &mut TraceSink::disabled());
        let out = cm.on_begin(&query(0), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(out.decision, BeginDecision::Proceed);
    }
}
