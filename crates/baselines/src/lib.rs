//! Baseline contention managers the paper compares BFGTS against.
//!
//! * [`BackoffCm`] — reactive randomised exponential backoff, the
//!   "do-nothing-clever" baseline every HTM ships with.
//! * [`AtsCm`] — *Adaptive Transaction Scheduling* (Yoo & Lee, SPAA'08):
//!   a per-thread conflict-pressure moving average; when pressure exceeds
//!   a threshold, transactions serialise on one central queue.
//! * [`PtsCm`] — *Proactive Transaction Scheduling* (Blake et al.,
//!   MICRO'09): a global dTxID×dTxID conflict-confidence graph consulted
//!   by a software scan at every transaction begin, updated at commit by
//!   intersecting saved Bloom-filter read/write sets.
//! * [`PolkaCm`] — investment-scaled reactive backoff in the spirit of
//!   Scherer & Scott's best all-round manager (paper §2).
//! * [`StallCm`] — stall-on-abort (Zilles & Baugh / Ansari et al.):
//!   a retry waits out the specific transaction it lost to.
//! * [`WindowGreedyCm`] — window-based randomized greedy (Sharma,
//!   Estrade & Busch, arXiv:1002.4182): per-window randomized priorities,
//!   the lower-priority side of a conflict yields.
//! * [`BalancedGreedyCm`] — balanced-workload greedy (Sharma & Busch,
//!   arXiv:1009.0056): conflicts won by the thread with more remaining
//!   work, randomized-priority tie-break.
//!
//! All of these implement [`bfgts_htm::ContentionManager`]; their modelled
//! cycle costs reflect their software footprint the way the paper's
//! Figure 5 breakdown does (ATS pays kernel time for its queue, PTS pays
//! scheduling time for its scans and its very large graph).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ats;
mod backoff;
mod balanced_greedy;
mod polka;
mod pts;
mod stall;
mod window_greedy;

pub use ats::{AtsCm, AtsConfig};
pub use backoff::{BackoffCm, BackoffConfig};
pub use balanced_greedy::{BalancedGreedyCm, BalancedGreedyConfig};
pub use polka::{PolkaCm, PolkaConfig};
pub use pts::{PtsCm, PtsConfig};
pub use stall::{StallCm, StallConfig};
pub use window_greedy::{WindowGreedyCm, WindowGreedyConfig};
