//! Balanced-workload greedy scheduling (Sharma & Busch, arXiv:1009.0056).

use crate::{WindowGreedyCm, WindowGreedyConfig};
use bfgts_htm::{
    AbortPlan, BeginOutcome, BeginQuery, CommitOutcome, CommitRecord, ConflictEvent,
    ContentionManager, TmState,
};
use bfgts_sim::{CostModel, SimRng, ThreadId, TraceSink};

/// Tunables of the balanced-greedy manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalancedGreedyConfig {
    /// Commits per execution window (the randomized tie-break redraws at
    /// this pace, exactly as in [`WindowGreedyConfig::window_size`]).
    pub window_size: u32,
    /// Backoff quantum in cycles for the losing side.
    pub base_delay: u64,
}

impl Default for BalancedGreedyConfig {
    fn default() -> Self {
        Self {
            window_size: 4,
            base_delay: 300,
        }
    }
}

/// The balanced-workload greedy manager: conflicts are won by the thread
/// with *more remaining work* (the load-balancing rule of
/// arXiv:1009.0056 — letting the longest pending queue proceed first
/// keeps per-thread completion times balanced, which bounds the makespan
/// against the clairvoyant schedule). Remaining work comes from the
/// commit-time [`CommitRecord::remaining`] hints; when either side has
/// never reported a hint the manager falls back to the window-greedy
/// randomized priority, so it degrades gracefully to
/// [`WindowGreedyCm`] on hint-free sources.
///
/// Window bookkeeping (positions, priority redraws, the
/// `WindowAdvance` trace announcements checked by invariant I11) is
/// delegated to an inner [`WindowGreedyCm`], so both managers share one
/// audited code path.
///
/// # Example
///
/// ```
/// use bfgts_baselines::BalancedGreedyCm;
/// use bfgts_htm::ContentionManager;
/// assert_eq!(BalancedGreedyCm::default().name(), "BalancedGreedy");
/// ```
#[derive(Debug, Clone, Default)]
pub struct BalancedGreedyCm {
    inner: WindowGreedyCm,
    /// Last remaining-work hint seen per thread (`None` until a thread
    /// commits with a counted source).
    remaining: Vec<Option<u64>>,
}

impl BalancedGreedyCm {
    /// Creates a manager with the given tunables.
    pub fn new(cfg: BalancedGreedyConfig) -> Self {
        Self {
            inner: WindowGreedyCm::new(WindowGreedyConfig {
                window_size: cfg.window_size,
                base_delay: cfg.base_delay,
            }),
            remaining: Vec::new(),
        }
    }

    fn remaining_of(&self, thread: ThreadId) -> Option<u64> {
        self.remaining.get(thread.0).copied().flatten()
    }
}

impl ContentionManager for BalancedGreedyCm {
    fn name(&self) -> &'static str {
        "BalancedGreedy"
    }

    fn on_run_start(&mut self, seed: u64, num_threads: usize) {
        self.inner.on_run_start(seed, num_threads);
        self.remaining = vec![None; num_threads];
    }

    fn window_seed(&self) -> Option<u64> {
        self.inner.window_seed()
    }

    fn window_position(&self, thread: ThreadId) -> Option<u64> {
        self.inner.window_position(thread)
    }

    fn on_begin(
        &mut self,
        q: &BeginQuery,
        tm: &TmState,
        costs: &CostModel,
        rng: &mut SimRng,
        trace: &mut TraceSink,
    ) -> BeginOutcome {
        self.inner.on_begin(q, tm, costs, rng, trace)
    }

    fn on_conflict_abort(
        &mut self,
        ev: &ConflictEvent,
        tm: &TmState,
        costs: &CostModel,
        rng: &mut SimRng,
        trace: &mut TraceSink,
    ) -> AbortPlan {
        // The balancing rule: more remaining work wins. Only when both
        // sides have reported hints is the comparison meaningful;
        // otherwise defer to the inner randomized-priority rule.
        match (
            self.remaining_of(ev.aborter.thread),
            self.remaining_of(ev.enemy.thread),
        ) {
            (Some(mine), Some(theirs)) if mine != theirs => AbortPlan {
                backoff: self.inner.greedy_backoff(mine < theirs, ev.retries, rng),
                cost: 1,
            },
            _ => self.inner.on_conflict_abort(ev, tm, costs, rng, trace),
        }
    }

    fn on_commit(
        &mut self,
        rec: &CommitRecord<'_>,
        tm: &TmState,
        costs: &CostModel,
        rng: &mut SimRng,
        trace: &mut TraceSink,
    ) -> CommitOutcome {
        if let Some(slot) = self.remaining.get_mut(rec.dtx.thread.0) {
            if rec.remaining.is_some() {
                *slot = rec.remaining;
            }
        }
        self.inner.on_commit(rec, tm, costs, rng, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_htm::{DTxId, LineAddr, STxId};
    use bfgts_sim::{window_priority, Cycle, TraceEvent, TraceMode};

    fn dtx(t: usize) -> DTxId {
        DTxId::new(ThreadId(t), STxId(0))
    }

    fn commit_rec(t: usize, remaining: Option<u64>) -> CommitRecord<'static> {
        CommitRecord {
            dtx: dtx(t),
            rw_set: &[LineAddr(1)],
            now: Cycle::ZERO,
            retries: 0,
            remaining,
        }
    }

    fn conflict(aborter: usize, enemy: usize) -> ConflictEvent {
        ConflictEvent {
            aborter: dtx(aborter),
            enemy: dtx(enemy),
            addr: LineAddr(0),
            now: Cycle::ZERO,
            retries: 0,
        }
    }

    fn env() -> (TmState, CostModel, SimRng) {
        (
            TmState::new(2, 4),
            CostModel::default(),
            SimRng::seed_from(3),
        )
    }

    fn sum_backoff(
        cm: &mut BalancedGreedyCm,
        tm: &TmState,
        costs: &CostModel,
        rng: &mut SimRng,
        a: usize,
        e: usize,
    ) -> u64 {
        (0..200)
            .map(|_| {
                cm.on_conflict_abort(&conflict(a, e), tm, costs, rng, &mut TraceSink::disabled())
                    .backoff
            })
            .sum()
    }

    #[test]
    fn thread_with_less_remaining_work_yields() {
        let (tm, costs, mut rng) = env();
        let mut cm = BalancedGreedyCm::default();
        cm.on_run_start(7, 2);
        let disabled = &mut TraceSink::disabled();
        cm.on_commit(&commit_rec(0, Some(2)), &tm, &costs, &mut rng, disabled);
        cm.on_commit(&commit_rec(1, Some(90)), &tm, &costs, &mut rng, disabled);
        let poor_loses = sum_backoff(&mut cm, &tm, &costs, &mut rng, 0, 1);
        let rich_wins = sum_backoff(&mut cm, &tm, &costs, &mut rng, 1, 0);
        assert!(
            poor_loses > rich_wins * 2,
            "the lighter-loaded thread should yield ({poor_loses} vs {rich_wins})"
        );
    }

    #[test]
    fn missing_hints_fall_back_to_window_priorities() {
        let (tm, costs, mut rng) = env();
        let seed = 7;
        let mut cm = BalancedGreedyCm::default();
        cm.on_run_start(seed, 2);
        // No hints reported yet: behaviour must match the inner
        // window-greedy rule, i.e. the lower randomized priority yields.
        let (p0, p1) = (window_priority(seed, 0, 0), window_priority(seed, 1, 0));
        let (loser, winner) = if p0 < p1 { (0, 1) } else { (1, 0) };
        let losing = sum_backoff(&mut cm, &tm, &costs, &mut rng, loser, winner);
        let winning = sum_backoff(&mut cm, &tm, &costs, &mut rng, winner, loser);
        assert!(
            losing > winning * 2,
            "hint-free conflicts use the randomized priorities ({losing} vs {winning})"
        );
    }

    #[test]
    fn windows_advance_and_announce_like_window_greedy() {
        let (tm, costs, mut rng) = env();
        let mut cm = BalancedGreedyCm::new(BalancedGreedyConfig {
            window_size: 2,
            base_delay: 300,
        });
        cm.on_run_start(9, 2);
        assert_eq!(cm.window_seed(), Some(9));
        let mut trace = TraceSink::new(TraceMode::Full);
        cm.on_commit(&commit_rec(1, Some(5)), &tm, &costs, &mut rng, &mut trace);
        cm.on_commit(&commit_rec(1, Some(4)), &tm, &costs, &mut rng, &mut trace);
        assert_eq!(cm.window_position(ThreadId(1)), Some(1));
        let rec = trace.take();
        assert_eq!(rec.events.len(), 1);
        assert_eq!(
            rec.events[0].ev,
            TraceEvent::WindowAdvance {
                thread: 1,
                window: 1,
                priority: window_priority(9, 1, 1),
            }
        );
    }

    #[test]
    fn hints_persist_across_hintless_commits() {
        let (tm, costs, mut rng) = env();
        let mut cm = BalancedGreedyCm::default();
        cm.on_run_start(7, 2);
        let disabled = &mut TraceSink::disabled();
        cm.on_commit(&commit_rec(0, Some(40)), &tm, &costs, &mut rng, disabled);
        cm.on_commit(&commit_rec(0, None), &tm, &costs, &mut rng, disabled);
        assert_eq!(cm.remaining_of(ThreadId(0)), Some(40));
    }
}
