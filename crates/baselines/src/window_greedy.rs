//! Window-based randomized greedy scheduling (Sharma, Estrade & Busch,
//! arXiv:1002.4182).

use bfgts_htm::{
    AbortPlan, BeginOutcome, BeginQuery, CommitOutcome, CommitRecord, ConflictEvent,
    ContentionManager, TmState,
};
use bfgts_sim::{window_priority, CostModel, SimRng, ThreadId, TraceEvent, TraceSink};

/// Exponential-growth cap for the losing side's backoff window.
const MAX_SHIFT: u32 = 6;

/// Tunables of the window-greedy manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowGreedyConfig {
    /// Commits per execution window: after this many commits a thread
    /// advances to its next window and redraws its priority.
    pub window_size: u32,
    /// Backoff quantum in cycles for the losing (lower-priority) side.
    pub base_delay: u64,
}

impl Default for WindowGreedyConfig {
    fn default() -> Self {
        Self {
            window_size: 4,
            base_delay: 300,
        }
    }
}

/// The window-based randomized greedy manager: each thread executes its
/// transactions in *windows* of `window_size` commits, drawing one random
/// priority per window. On a conflict the lower-priority side yields (it
/// backs off exponentially) while the higher-priority side retries almost
/// immediately — the greedy "older wins" rule with randomized ages, which
/// the analysis in arXiv:1002.4182 shows is O(s + log n)-competitive per
/// window for s-length windows.
///
/// Priorities come from [`bfgts_sim::window_priority`], a pure keyed hash
/// of (run seed, thread, window), so every draw is reproducible bit for
/// bit by the I11 trace audit. Window advances are announced via
/// [`TraceEvent::WindowAdvance`].
///
/// # Example
///
/// ```
/// use bfgts_baselines::WindowGreedyCm;
/// use bfgts_htm::ContentionManager;
/// assert_eq!(WindowGreedyCm::default().name(), "WindowGreedy");
/// ```
#[derive(Debug, Clone, Default)]
pub struct WindowGreedyCm {
    cfg: WindowGreedyConfig,
    /// The run seed, present once `on_run_start` has been called.
    seed: Option<u64>,
    /// Per-thread current window position (all threads start in 0).
    windows: Vec<u64>,
    /// Per-thread commits inside the current window.
    commits: Vec<u32>,
    /// Per-thread priority for the current window.
    priorities: Vec<u64>,
}

impl WindowGreedyCm {
    /// Creates a manager with the given tunables.
    pub fn new(cfg: WindowGreedyConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    /// The priority of `thread`'s current window, or `None` when the run
    /// has not started or the thread is unknown.
    fn priority_of(&self, thread: ThreadId) -> Option<u64> {
        self.priorities.get(thread.0).copied()
    }

    /// Shared commit-side window bookkeeping: counts the commit and, when
    /// the window fills, advances it, redraws the priority and announces
    /// the step on the trace. Also used by [`BalancedGreedyCm`].
    ///
    /// [`BalancedGreedyCm`]: crate::BalancedGreedyCm
    fn count_commit(&mut self, rec: &CommitRecord<'_>, trace: &mut TraceSink) {
        let t = rec.dtx.thread.0;
        let (Some(seed), Some(c)) = (self.seed, self.commits.get_mut(t)) else {
            return;
        };
        *c += 1;
        if *c >= self.cfg.window_size.max(1) {
            *c = 0;
            self.windows[t] += 1;
            let window = self.windows[t];
            let priority = window_priority(seed, t as u32, window);
            self.priorities[t] = priority;
            trace.emit(rec.now.as_u64(), || TraceEvent::WindowAdvance {
                thread: t as u32,
                window,
                priority,
            });
        }
    }

    /// The greedy abort rule shared with the balanced variant: the winner
    /// retries after a short jitter, the loser yields an exponentially
    /// growing window.
    pub(crate) fn greedy_backoff(&self, lost: bool, retries: u32, rng: &mut SimRng) -> u64 {
        let base = self.cfg.base_delay.max(1);
        if lost {
            rng.jitter(base << retries.min(MAX_SHIFT))
        } else {
            rng.jitter(base / 4 + 1)
        }
    }
}

impl ContentionManager for WindowGreedyCm {
    fn name(&self) -> &'static str {
        "WindowGreedy"
    }

    fn on_run_start(&mut self, seed: u64, num_threads: usize) {
        self.seed = Some(seed);
        self.windows = vec![0; num_threads];
        self.commits = vec![0; num_threads];
        self.priorities = (0..num_threads)
            .map(|t| window_priority(seed, t as u32, 0))
            .collect();
    }

    fn window_seed(&self) -> Option<u64> {
        self.seed
    }

    fn window_position(&self, thread: ThreadId) -> Option<u64> {
        self.windows.get(thread.0).copied()
    }

    fn on_begin(
        &mut self,
        _q: &BeginQuery,
        _tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> BeginOutcome {
        BeginOutcome::PROCEED_FREE
    }

    fn on_conflict_abort(
        &mut self,
        ev: &ConflictEvent,
        _tm: &TmState,
        _costs: &CostModel,
        rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> AbortPlan {
        // Higher priority wins the window; the LogTM requester aborted
        // either way, but the winner comes back almost immediately while
        // the loser leaves its enemy room to finish the window.
        let mine = self.priority_of(ev.aborter.thread);
        let theirs = self.priority_of(ev.enemy.thread);
        let lost = match (mine, theirs) {
            (Some(m), Some(e)) => m < e,
            // Before `on_run_start` (direct harness tests) nobody holds a
            // priority: treat every abort as a loss, plain backoff.
            _ => true,
        };
        AbortPlan {
            backoff: self.greedy_backoff(lost, ev.retries, rng),
            cost: 1,
        }
    }

    fn on_commit(
        &mut self,
        rec: &CommitRecord<'_>,
        _tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        trace: &mut TraceSink,
    ) -> CommitOutcome {
        self.count_commit(rec, trace);
        CommitOutcome {
            cost: 1,
            wake: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_htm::{DTxId, LineAddr, STxId};
    use bfgts_sim::{Cycle, TraceMode};

    fn dtx(t: usize) -> DTxId {
        DTxId::new(ThreadId(t), STxId(0))
    }

    fn commit_rec(t: usize) -> CommitRecord<'static> {
        CommitRecord {
            dtx: dtx(t),
            rw_set: &[LineAddr(1)],
            now: Cycle::ZERO,
            retries: 0,
            remaining: None,
        }
    }

    fn conflict(aborter: usize, enemy: usize) -> ConflictEvent {
        ConflictEvent {
            aborter: dtx(aborter),
            enemy: dtx(enemy),
            addr: LineAddr(0),
            now: Cycle::ZERO,
            retries: 0,
        }
    }

    fn env() -> (TmState, CostModel, SimRng) {
        (
            TmState::new(2, 4),
            CostModel::default(),
            SimRng::seed_from(3),
        )
    }

    #[test]
    fn begin_is_free_and_windows_appear_after_run_start() {
        let (tm, costs, mut rng) = env();
        let mut cm = WindowGreedyCm::default();
        assert_eq!(cm.window_seed(), None);
        assert_eq!(cm.window_position(ThreadId(0)), None);
        cm.on_run_start(7, 2);
        assert_eq!(cm.window_seed(), Some(7));
        assert_eq!(cm.window_position(ThreadId(0)), Some(0));
        let q = BeginQuery {
            thread: ThreadId(0),
            cpu: 0,
            dtx: dtx(0),
            now: Cycle::ZERO,
            retries: 0,
            waits: 0,
        };
        assert_eq!(
            cm.on_begin(&q, &tm, &costs, &mut rng, &mut TraceSink::disabled())
                .cost,
            0
        );
    }

    #[test]
    fn windows_advance_every_window_size_commits() {
        let (tm, costs, mut rng) = env();
        let mut cm = WindowGreedyCm::new(WindowGreedyConfig {
            window_size: 3,
            base_delay: 300,
        });
        cm.on_run_start(7, 2);
        let mut trace = TraceSink::new(TraceMode::Full);
        for _ in 0..3 {
            cm.on_commit(&commit_rec(0), &tm, &costs, &mut rng, &mut trace);
        }
        assert_eq!(cm.window_position(ThreadId(0)), Some(1));
        assert_eq!(cm.window_position(ThreadId(1)), Some(0));
        let rec = trace.take();
        assert_eq!(rec.events.len(), 1);
        assert_eq!(
            rec.events[0].ev,
            TraceEvent::WindowAdvance {
                thread: 0,
                window: 1,
                priority: window_priority(7, 0, 1),
            }
        );
    }

    #[test]
    fn lower_priority_side_backs_off_longer() {
        let (tm, costs, mut rng) = env();
        let mut cm = WindowGreedyCm::default();
        let seed = 7;
        cm.on_run_start(seed, 2);
        let (p0, p1) = (window_priority(seed, 0, 0), window_priority(seed, 1, 0));
        assert_ne!(p0, p1, "64-bit draws should differ");
        let (loser, winner) = if p0 < p1 { (0, 1) } else { (1, 0) };
        let sum = |cm: &mut WindowGreedyCm, rng: &mut SimRng, a: usize, e: usize| -> u64 {
            (0..200)
                .map(|_| {
                    cm.on_conflict_abort(
                        &conflict(a, e),
                        &tm,
                        &costs,
                        rng,
                        &mut TraceSink::disabled(),
                    )
                    .backoff
                })
                .sum()
        };
        let losing = sum(&mut cm, &mut rng, loser, winner);
        let winning = sum(&mut cm, &mut rng, winner, loser);
        assert!(
            losing > winning * 2,
            "the losing side should yield the window ({losing} vs {winning})"
        );
    }

    #[test]
    fn unknown_threads_fall_back_to_plain_backoff() {
        let (tm, costs, mut rng) = env();
        let mut cm = WindowGreedyCm::default();
        // No on_run_start: the plan must still be well-formed.
        let plan = cm.on_conflict_abort(
            &conflict(0, 1),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert!(plan.backoff <= WindowGreedyConfig::default().base_delay);
        assert_eq!(plan.cost, 1);
    }
}
