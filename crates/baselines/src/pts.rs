//! Proactive Transaction Scheduling (Blake et al., MICRO'09).

use bfgts_bloomsig::BloomFilter;
use bfgts_htm::{
    AbortPlan, BeginDecision, BeginOutcome, BeginQuery, CommitOutcome, CommitRecord, ConflictEvent,
    ContentionManager, DTxId, TmState,
};
use bfgts_sim::{CostModel, SimRng, TraceSink};
use std::collections::BTreeMap;

/// Tunables of the PTS manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtsConfig {
    /// Confidence above which a predicted conflict serialises.
    pub threshold: f64,
    /// Constant confidence increment on conflicts / justified waits.
    pub inc: f64,
    /// Constant confidence decrement on unjustified waits.
    pub dec: f64,
    /// Bloom filter size in bits for the saved read/write sets.
    pub bloom_bits: u32,
    /// Bloom hash-function count.
    pub bloom_hashes: u32,
    /// Post-abort backoff window (jittered).
    pub backoff_window: u64,
    /// Fixed begin-scan cost before per-entry lookups.
    pub scan_base_cost: u64,
    /// Per-CPU-table-entry lookup cost. PTS's conflict graph is keyed by
    /// dTxID pairs and grows to tens of megabytes, so lookups regularly
    /// leave the L1; the paper calls out "overhead of executing a scan of
    /// software structures on every transaction begin".
    pub scan_entry_cost: u64,
    /// Cost of one confidence-graph update (abort/commit paths).
    pub graph_update_cost: u64,
}

impl Default for PtsConfig {
    fn default() -> Self {
        Self {
            threshold: 50.0,
            inc: 60.0,
            dec: 40.0,
            bloom_bits: 2048,
            bloom_hashes: 4,
            backoff_window: 300,
            scan_base_cost: 40,
            scan_entry_cost: 40,
            graph_update_cost: 60,
        }
    }
}

/// *Proactive Transaction Scheduling*: profiles the pattern of conflicts
/// between *dynamic* transactions in a global conflict graph. Before each
/// transaction begins, a software scan of the currently-running
/// transactions looks up the confidence of a conflict; above the
/// threshold, the transaction serialises behind the predicted enemy. At
/// commit, the saved Bloom-filter read/write sets of the transactions it
/// waited for are intersected with its own to decide whether the wait was
/// justified (strengthen) or wasted (weaken).
///
/// Compared to BFGTS it has three structural handicaps the paper lists:
/// a dTxID×dTxID graph that is large and slow to scan, a software-only
/// begin-time scan, and constant-weight (similarity-blind) confidence
/// updates.
///
/// # Example
///
/// ```
/// use bfgts_baselines::PtsCm;
/// use bfgts_htm::ContentionManager;
/// assert_eq!(PtsCm::default().name(), "PTS");
/// ```
#[derive(Debug, Clone)]
pub struct PtsCm {
    cfg: PtsConfig,
    /// Confidence of future conflict between ordered dTxID pairs.
    confidence: BTreeMap<(u64, u64), f64>,
    /// Most recent committed read/write-set Bloom filter per dTxID.
    blooms: BTreeMap<u64, BloomFilter>,
    /// Who each dTxID serialised behind in its current attempt.
    waiting_on: BTreeMap<u64, u64>,
}

impl Default for PtsCm {
    fn default() -> Self {
        Self::new(PtsConfig::default())
    }
}

impl PtsCm {
    /// Creates a PTS manager with the given tunables.
    pub fn new(cfg: PtsConfig) -> Self {
        Self {
            cfg,
            confidence: BTreeMap::new(),
            blooms: BTreeMap::new(),
            waiting_on: BTreeMap::new(),
        }
    }

    fn conf(&self, a: DTxId, b: DTxId) -> f64 {
        self.confidence
            .get(&(a.pack(), b.pack()))
            .copied()
            .unwrap_or(0.0)
    }

    fn bump(&mut self, a: DTxId, b: DTxId, delta: f64) {
        let e = self.confidence.entry((a.pack(), b.pack())).or_insert(0.0);
        *e = (*e + delta).max(0.0);
    }

    /// Number of confidence edges learned so far (for reports/tests).
    pub fn graph_edges(&self) -> usize {
        self.confidence.len()
    }
}

impl ContentionManager for PtsCm {
    fn name(&self) -> &'static str {
        "PTS"
    }

    fn on_begin(
        &mut self,
        q: &BeginQuery,
        tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> BeginOutcome {
        let mut cost = self.cfg.scan_base_cost;
        for slot in tm.cpu_table() {
            let Some(target) = slot else { continue };
            if target.thread == q.thread {
                continue;
            }
            cost += self.cfg.scan_entry_cost;
            if self.conf(q.dtx, *target) > self.cfg.threshold && tm.is_active(*target) {
                self.waiting_on.insert(q.dtx.pack(), target.pack());
                return BeginOutcome {
                    decision: BeginDecision::YieldUntilDone { target: *target },
                    cost,
                };
            }
        }
        BeginOutcome {
            decision: BeginDecision::Proceed,
            cost,
        }
    }

    fn on_conflict_abort(
        &mut self,
        ev: &ConflictEvent,
        _tm: &TmState,
        _costs: &CostModel,
        rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> AbortPlan {
        self.bump(ev.aborter, ev.enemy, self.cfg.inc);
        self.bump(ev.enemy, ev.aborter, self.cfg.inc);
        AbortPlan {
            backoff: rng.jitter(self.cfg.backoff_window << ev.retries.min(6)),
            cost: 2 * self.cfg.graph_update_cost,
        }
    }

    fn on_commit(
        &mut self,
        rec: &CommitRecord<'_>,
        _tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> CommitOutcome {
        let mut bloom = BloomFilter::new(self.cfg.bloom_bits, self.cfg.bloom_hashes);
        for addr in rec.rw_set {
            bloom.insert(addr.get());
        }
        // Copying the hardware signature out: a couple of cycles per word.
        let mut cost = 50 + 2 * bloom.word_count() as u64;
        if let Some(target) = self.waiting_on.remove(&rec.dtx.pack()) {
            cost += self.cfg.graph_update_cost;
            let justified = self
                .blooms
                .get(&target)
                .map(|b| b.intersects(&bloom))
                .unwrap_or(false);
            cost += 2 * bloom.word_count() as u64;
            let target = DTxId::unpack(target);
            if justified {
                self.bump(rec.dtx, target, self.cfg.inc);
            } else {
                self.bump(rec.dtx, target, -self.cfg.dec);
            }
        }
        self.blooms.insert(rec.dtx.pack(), bloom);
        CommitOutcome {
            cost,
            wake: Vec::new(),
        }
    }

    fn on_wait_skipped(&mut self, dtx: DTxId) {
        self.waiting_on.remove(&dtx.pack());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_htm::{LineAddr, STxId};
    use bfgts_sim::{Cycle, ThreadId};

    fn dtx(t: usize, s: u32) -> DTxId {
        DTxId::new(ThreadId(t), STxId(s))
    }

    fn env() -> (TmState, CostModel, SimRng) {
        (
            TmState::new(4, 8),
            CostModel::default(),
            SimRng::seed_from(5),
        )
    }

    fn query(t: usize, s: u32) -> BeginQuery {
        BeginQuery {
            thread: ThreadId(t),
            cpu: 0,
            dtx: dtx(t, s),
            now: Cycle::ZERO,
            retries: 0,
            waits: 0,
        }
    }

    fn conflict(a: DTxId, b: DTxId) -> ConflictEvent {
        ConflictEvent {
            aborter: a,
            enemy: b,
            addr: LineAddr(0),
            now: Cycle::ZERO,
            retries: 0,
        }
    }

    #[test]
    fn cold_graph_proceeds() {
        let (tm, costs, mut rng) = env();
        let mut cm = PtsCm::default();
        let out = cm.on_begin(
            &query(0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(out.decision, BeginDecision::Proceed);
        assert!(out.cost >= cm.cfg.scan_base_cost);
    }

    #[test]
    fn conflicts_build_confidence_symmetrically() {
        let (tm, costs, mut rng) = env();
        let mut cm = PtsCm::default();
        cm.on_conflict_abort(
            &conflict(dtx(0, 0), dtx(1, 1)),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(cm.conf(dtx(0, 0), dtx(1, 1)), 60.0);
        assert_eq!(cm.conf(dtx(1, 1), dtx(0, 0)), 60.0);
        assert_eq!(cm.graph_edges(), 2);
    }

    #[test]
    fn hot_confidence_serializes_behind_running_tx() {
        let (mut tm, costs, mut rng) = env();
        let mut cm = PtsCm::default();
        // Learn a strong conflict between t0/sTx0 and t1/sTx1.
        for _ in 0..2 {
            cm.on_conflict_abort(
                &conflict(dtx(0, 0), dtx(1, 1)),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            );
        }
        // t1/sTx1 is running on cpu1.
        tm.begin_tx(ThreadId(1), 1, dtx(1, 1), Cycle::ZERO);
        let out = cm.on_begin(
            &query(0, 0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        assert_eq!(
            out.decision,
            BeginDecision::YieldUntilDone { target: dtx(1, 1) }
        );
    }

    #[test]
    fn scan_cost_scales_with_running_transactions() {
        let (mut tm, costs, mut rng) = env();
        let mut cm = PtsCm::default();
        let empty = cm
            .on_begin(
                &query(0, 0),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            )
            .cost;
        tm.begin_tx(ThreadId(1), 1, dtx(1, 0), Cycle::ZERO);
        tm.begin_tx(ThreadId(2), 2, dtx(2, 0), Cycle::ZERO);
        let busy = cm
            .on_begin(
                &query(0, 0),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            )
            .cost;
        assert_eq!(busy - empty, 2 * cm.cfg.scan_entry_cost);
    }

    #[test]
    fn justified_wait_strengthens_confidence() {
        let (tm, costs, mut rng) = env();
        let mut cm = PtsCm::default();
        // The enemy commits a set overlapping ours.
        let enemy_rec = CommitRecord {
            dtx: dtx(1, 1),
            rw_set: &[LineAddr(5), LineAddr(6)],
            now: Cycle::ZERO,
            retries: 0,
            remaining: None,
        };
        cm.on_commit(
            &enemy_rec,
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        // We waited behind the enemy, then commit an overlapping set.
        cm.waiting_on.insert(dtx(0, 0).pack(), dtx(1, 1).pack());
        let before = cm.conf(dtx(0, 0), dtx(1, 1));
        let my_rec = CommitRecord {
            dtx: dtx(0, 0),
            rw_set: &[LineAddr(6), LineAddr(9)],
            now: Cycle::ZERO,
            retries: 0,
            remaining: None,
        };
        cm.on_commit(&my_rec, &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert!(cm.conf(dtx(0, 0), dtx(1, 1)) > before);
    }

    #[test]
    fn unjustified_wait_weakens_confidence() {
        let (tm, costs, mut rng) = env();
        let mut cm = PtsCm::default();
        cm.bump(dtx(0, 0), dtx(1, 1), 120.0);
        let enemy_rec = CommitRecord {
            dtx: dtx(1, 1),
            rw_set: &[LineAddr(100)],
            now: Cycle::ZERO,
            retries: 0,
            remaining: None,
        };
        cm.on_commit(
            &enemy_rec,
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        cm.waiting_on.insert(dtx(0, 0).pack(), dtx(1, 1).pack());
        let my_rec = CommitRecord {
            dtx: dtx(0, 0),
            rw_set: &[LineAddr(200)],
            now: Cycle::ZERO,
            retries: 0,
            remaining: None,
        };
        cm.on_commit(&my_rec, &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert!(cm.conf(dtx(0, 0), dtx(1, 1)) < 120.0);
    }

    #[test]
    fn confidence_never_negative() {
        let (tm, costs, mut rng) = env();
        let mut cm = PtsCm::default();
        for _ in 0..10 {
            cm.waiting_on.insert(dtx(0, 0).pack(), dtx(1, 1).pack());
            let rec = CommitRecord {
                dtx: dtx(0, 0),
                rw_set: &[LineAddr(1)],
                now: Cycle::ZERO,
                retries: 0,
                remaining: None,
            };
            cm.on_commit(&rec, &tm, &costs, &mut rng, &mut TraceSink::disabled());
        }
        assert!(cm.conf(dtx(0, 0), dtx(1, 1)) >= 0.0);
    }

    #[test]
    fn wait_skipped_clears_record() {
        let mut cm = PtsCm::default();
        cm.waiting_on.insert(dtx(0, 0).pack(), dtx(1, 1).pack());
        cm.on_wait_skipped(dtx(0, 0));
        assert!(cm.waiting_on.is_empty());
    }
}
