//! Polka-style reactive backoff (Scherer & Scott, PODC'05 family).

use bfgts_htm::{
    AbortPlan, BeginOutcome, BeginQuery, CommitOutcome, CommitRecord, ConflictEvent,
    ContentionManager, TmState,
};
use bfgts_sim::{CostModel, SimRng, TraceSink};
use std::collections::BTreeMap;

/// Tunables of the Polka-style manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolkaConfig {
    /// Backoff cycles per line of investment difference.
    pub per_line: u64,
    /// Exponential growth cap (left-shift of the window per retry).
    pub max_shift: u32,
    /// Window floor in cycles.
    pub floor: u64,
}

impl Default for PolkaConfig {
    fn default() -> Self {
        Self {
            per_line: 40,
            max_shift: 6,
            floor: 400,
        }
    }
}

/// A Polka-flavoured reactive manager: the paper's §2 surveys the
/// Scherer & Scott contention managers, of which *Polka* (priorities from
/// accumulated *investment* + randomised exponential backoff) was the
/// best all-rounder. In our LogTM setting the HTM fixes who aborts
/// (timestamp order), so the Polka idea survives as investment-scaled
/// backoff: a transaction that had accumulated a large read/write set
/// when it lost waits longer before retrying, giving its (presumably
/// still-running) enemy time to finish; a cheap transaction retries
/// quickly.
///
/// # Example
///
/// ```
/// use bfgts_baselines::PolkaCm;
/// use bfgts_htm::ContentionManager;
/// assert_eq!(PolkaCm::default().name(), "Polka");
/// ```
#[derive(Debug, Clone, Default)]
pub struct PolkaCm {
    cfg: PolkaConfig,
    /// Last known investment (average set size) per dTxID.
    investment: BTreeMap<u64, f64>,
}

impl PolkaCm {
    /// Creates a manager with the given tunables.
    pub fn new(cfg: PolkaConfig) -> Self {
        Self {
            cfg,
            investment: BTreeMap::new(),
        }
    }
}

impl ContentionManager for PolkaCm {
    fn name(&self) -> &'static str {
        "Polka"
    }

    fn on_begin(
        &mut self,
        _q: &BeginQuery,
        _tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> BeginOutcome {
        BeginOutcome::PROCEED_FREE
    }

    fn on_conflict_abort(
        &mut self,
        ev: &ConflictEvent,
        _tm: &TmState,
        _costs: &CostModel,
        rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> AbortPlan {
        // Window scales with the *enemy's* investment (give a big enemy
        // room to finish) and grows exponentially with our retries.
        let enemy_investment = self
            .investment
            .get(&ev.enemy.pack())
            .copied()
            .unwrap_or(0.0);
        let base = self.cfg.floor + (enemy_investment * self.cfg.per_line as f64) as u64;
        let window = base << ev.retries.min(self.cfg.max_shift);
        AbortPlan {
            backoff: rng.jitter(window),
            cost: 2,
        }
    }

    fn on_commit(
        &mut self,
        rec: &CommitRecord<'_>,
        _tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> CommitOutcome {
        // Track investment as a smoothed set size.
        let e = self.investment.entry(rec.dtx.pack()).or_insert(0.0);
        *e = 0.5 * (*e + rec.rw_set.len() as f64);
        CommitOutcome {
            cost: 2,
            wake: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_htm::{DTxId, LineAddr, STxId};
    use bfgts_sim::{Cycle, ThreadId};

    fn dtx(t: usize) -> DTxId {
        DTxId::new(ThreadId(t), STxId(0))
    }

    fn conflict(enemy: DTxId, retries: u32) -> ConflictEvent {
        ConflictEvent {
            aborter: dtx(0),
            enemy,
            addr: LineAddr(0),
            now: Cycle::ZERO,
            retries,
        }
    }

    fn env() -> (TmState, CostModel, SimRng) {
        (
            TmState::new(2, 4),
            CostModel::default(),
            SimRng::seed_from(3),
        )
    }

    #[test]
    fn begin_is_free() {
        let (tm, costs, mut rng) = env();
        let mut cm = PolkaCm::default();
        let q = BeginQuery {
            thread: ThreadId(0),
            cpu: 0,
            dtx: dtx(0),
            now: Cycle::ZERO,
            retries: 0,
            waits: 0,
        };
        assert_eq!(
            cm.on_begin(&q, &tm, &costs, &mut rng, &mut TraceSink::disabled())
                .cost,
            0
        );
    }

    #[test]
    fn backoff_scales_with_enemy_investment() {
        let (tm, costs, mut rng) = env();
        let mut cm = PolkaCm::default();
        // Teach the manager that t1's transaction is big.
        let big: Vec<LineAddr> = (0..200).map(LineAddr).collect();
        for _ in 0..4 {
            let rec = CommitRecord {
                dtx: dtx(1),
                rw_set: &big,
                now: Cycle::ZERO,
                retries: 0,
                remaining: None,
            };
            cm.on_commit(&rec, &tm, &costs, &mut rng, &mut TraceSink::disabled());
        }
        let sum = |cm: &mut PolkaCm, rng: &mut SimRng, enemy| -> u64 {
            (0..100)
                .map(|_| {
                    cm.on_conflict_abort(
                        &conflict(enemy, 0),
                        &tm,
                        &costs,
                        rng,
                        &mut TraceSink::disabled(),
                    )
                    .backoff
                })
                .sum()
        };
        let vs_big = sum(&mut cm, &mut rng, dtx(1));
        let vs_unknown = sum(&mut cm, &mut rng, dtx(2));
        assert!(
            vs_big > vs_unknown * 2,
            "big enemies should earn longer backoff ({vs_big} vs {vs_unknown})"
        );
    }

    #[test]
    fn backoff_grows_with_retries() {
        let (tm, costs, mut rng) = env();
        let mut cm = PolkaCm::default();
        let early: u64 = (0..100)
            .map(|_| {
                cm.on_conflict_abort(
                    &conflict(dtx(1), 0),
                    &tm,
                    &costs,
                    &mut rng,
                    &mut TraceSink::disabled(),
                )
                .backoff
            })
            .sum();
        let late: u64 = (0..100)
            .map(|_| {
                cm.on_conflict_abort(
                    &conflict(dtx(1), 6),
                    &tm,
                    &costs,
                    &mut rng,
                    &mut TraceSink::disabled(),
                )
                .backoff
            })
            .sum();
        assert!(late > early * 8);
    }
}
