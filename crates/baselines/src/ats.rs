//! Adaptive Transaction Scheduling (Yoo & Lee, SPAA'08).

use bfgts_htm::{
    AbortPlan, BeginDecision, BeginOutcome, BeginQuery, CommitOutcome, CommitRecord, ConflictEvent,
    ContentionManager, TmState,
};
use bfgts_sim::{CostModel, SimRng, ThreadId, TraceSink};
use std::collections::VecDeque;

/// Tunables of the ATS manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtsConfig {
    /// Weight of past history in the contention-intensity moving average
    /// (`ci = alpha·ci + (1−alpha)·event`).
    pub alpha: f64,
    /// Intensity above which transactions serialise on the central queue.
    pub threshold: f64,
    /// Post-abort backoff window (jittered).
    pub backoff_window: u64,
    /// Cycles to check the intensity at begin.
    pub check_cost: u64,
    /// Cycles of queue manipulation (lock + enqueue/dequeue) beyond the
    /// kernel block/wake costs the OS model charges.
    pub queue_cost: u64,
}

impl Default for AtsConfig {
    fn default() -> Self {
        Self {
            alpha: 0.8,
            threshold: 0.4,
            backoff_window: 300,
            check_cost: 4,
            queue_cost: 400,
        }
    }
}

/// *Adaptive Transaction Scheduling*: each thread keeps a contention
/// intensity (a moving average that rises on aborts and decays on
/// commits). When intensity exceeds the threshold, the transaction joins
/// one central wait queue and executes serially with respect to the other
/// queued transactions.
///
/// Cheap and graceful under very high contention, but pessimistic: it
/// never asks *which* transactions conflict, so independent transactions
/// serialise too (the paper's Delaunay/Kmeans/Intruder losses, with the
/// queue's pthread operations showing up as kernel time in Figure 5).
///
/// # Example
///
/// ```
/// use bfgts_baselines::AtsCm;
/// use bfgts_htm::ContentionManager;
/// assert_eq!(AtsCm::default().name(), "ATS");
/// ```
#[derive(Debug, Clone, Default)]
pub struct AtsCm {
    cfg: AtsConfig,
    intensity: Vec<f64>,
    /// Thread currently holding the serial-execution token.
    runner: Option<ThreadId>,
    /// Thread woken at the last commit, entitled to take the token.
    designated: Option<ThreadId>,
    parked: VecDeque<ThreadId>,
}

impl AtsCm {
    /// Creates an ATS manager with the given tunables.
    pub fn new(cfg: AtsConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    fn ci(&mut self, thread: ThreadId) -> &mut f64 {
        if self.intensity.len() <= thread.index() {
            self.intensity.resize(thread.index() + 1, 0.0);
        }
        &mut self.intensity[thread.index()]
    }

    /// Current contention intensity of `thread` (for tests/reports).
    pub fn intensity_of(&self, thread: ThreadId) -> f64 {
        self.intensity.get(thread.index()).copied().unwrap_or(0.0)
    }
}

impl ContentionManager for AtsCm {
    fn name(&self) -> &'static str {
        "ATS"
    }

    fn on_begin(
        &mut self,
        q: &BeginQuery,
        _tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> BeginOutcome {
        let mut cost = self.cfg.check_cost;
        // A designated thread takes the serial token regardless of its
        // (decayed) intensity, keeping the queue draining.
        if self.designated == Some(q.thread) {
            self.designated = None;
            self.runner = Some(q.thread);
            return BeginOutcome {
                decision: BeginDecision::Proceed,
                cost: cost + self.cfg.queue_cost,
            };
        }
        // The current runner retries after an abort without re-queueing.
        if self.runner == Some(q.thread) {
            return BeginOutcome {
                decision: BeginDecision::Proceed,
                cost,
            };
        }
        if *self.ci(q.thread) <= self.cfg.threshold {
            return BeginOutcome {
                decision: BeginDecision::Proceed,
                cost,
            };
        }
        cost += self.cfg.queue_cost;
        if self.runner.is_none() && self.designated.is_none() {
            self.runner = Some(q.thread);
            BeginOutcome {
                decision: BeginDecision::Proceed,
                cost,
            }
        } else {
            self.parked.push_back(q.thread);
            BeginOutcome {
                decision: BeginDecision::Block,
                cost,
            }
        }
    }

    fn on_conflict_abort(
        &mut self,
        ev: &ConflictEvent,
        _tm: &TmState,
        _costs: &CostModel,
        rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> AbortPlan {
        let alpha = self.cfg.alpha;
        let ci = self.ci(ev.aborter.thread);
        *ci = alpha * *ci + (1.0 - alpha);
        AbortPlan {
            backoff: rng.jitter(self.cfg.backoff_window),
            cost: 2,
        }
    }

    fn on_commit(
        &mut self,
        rec: &CommitRecord<'_>,
        _tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> CommitOutcome {
        let alpha = self.cfg.alpha;
        let ci = self.ci(rec.dtx.thread);
        *ci *= alpha;
        let mut out = CommitOutcome {
            cost: 2,
            wake: Vec::new(),
        };
        if self.runner == Some(rec.dtx.thread) {
            self.runner = None;
            out.cost += self.cfg.queue_cost;
            if let Some(next) = self.parked.pop_front() {
                self.designated = Some(next);
                out.wake.push(next);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_htm::{DTxId, LineAddr, STxId};
    use bfgts_sim::Cycle;

    fn query(thread: usize) -> BeginQuery {
        BeginQuery {
            thread: ThreadId(thread),
            cpu: 0,
            dtx: DTxId::new(ThreadId(thread), STxId(0)),
            now: Cycle::ZERO,
            retries: 0,
            waits: 0,
        }
    }

    fn conflict(thread: usize) -> ConflictEvent {
        ConflictEvent {
            aborter: DTxId::new(ThreadId(thread), STxId(0)),
            enemy: DTxId::new(ThreadId(9), STxId(0)),
            addr: LineAddr(0),
            now: Cycle::ZERO,
            retries: 0,
        }
    }

    fn env() -> (TmState, CostModel, SimRng) {
        (
            TmState::new(4, 8),
            CostModel::default(),
            SimRng::seed_from(5),
        )
    }

    #[test]
    fn low_intensity_proceeds() {
        let (tm, costs, mut rng) = env();
        let mut cm = AtsCm::default();
        let out = cm.on_begin(&query(0), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(out.decision, BeginDecision::Proceed);
    }

    #[test]
    fn intensity_rises_on_abort_and_decays_on_commit() {
        let (tm, costs, mut rng) = env();
        let mut cm = AtsCm::default();
        cm.on_conflict_abort(
            &conflict(0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        let after_abort = cm.intensity_of(ThreadId(0));
        assert!(after_abort > 0.0);
        let rec = CommitRecord {
            dtx: DTxId::new(ThreadId(0), STxId(0)),
            rw_set: &[],
            now: Cycle::ZERO,
            retries: 0,
            remaining: None,
        };
        cm.on_commit(&rec, &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert!(cm.intensity_of(ThreadId(0)) < after_abort);
    }

    fn saturate(cm: &mut AtsCm, thread: usize, tm: &TmState, costs: &CostModel, rng: &mut SimRng) {
        for _ in 0..10 {
            cm.on_conflict_abort(
                &conflict(thread),
                tm,
                costs,
                rng,
                &mut TraceSink::disabled(),
            );
        }
    }

    #[test]
    fn high_intensity_threads_serialize() {
        let (tm, costs, mut rng) = env();
        let mut cm = AtsCm::default();
        saturate(&mut cm, 0, &tm, &costs, &mut rng);
        saturate(&mut cm, 1, &tm, &costs, &mut rng);
        // First hot thread becomes the runner.
        let a = cm.on_begin(&query(0), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(a.decision, BeginDecision::Proceed);
        // Second parks.
        let b = cm.on_begin(&query(1), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(b.decision, BeginDecision::Block);
    }

    #[test]
    fn commit_of_runner_wakes_next_in_queue() {
        let (tm, costs, mut rng) = env();
        let mut cm = AtsCm::default();
        saturate(&mut cm, 0, &tm, &costs, &mut rng);
        saturate(&mut cm, 1, &tm, &costs, &mut rng);
        cm.on_begin(&query(0), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        cm.on_begin(&query(1), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        let rec = CommitRecord {
            dtx: DTxId::new(ThreadId(0), STxId(0)),
            rw_set: &[],
            now: Cycle::ZERO,
            retries: 0,
            remaining: None,
        };
        let out = cm.on_commit(&rec, &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(out.wake, vec![ThreadId(1)]);
        // The woken thread claims the token even though its intensity
        // decayed in the meantime.
        let again = cm.on_begin(&query(1), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(again.decision, BeginDecision::Proceed);
    }

    #[test]
    fn runner_retries_without_requeueing() {
        let (tm, costs, mut rng) = env();
        let mut cm = AtsCm::default();
        saturate(&mut cm, 0, &tm, &costs, &mut rng);
        cm.on_begin(&query(0), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        // Abort and retry: still the runner, still proceeds.
        cm.on_conflict_abort(
            &conflict(0),
            &tm,
            &costs,
            &mut rng,
            &mut TraceSink::disabled(),
        );
        let out = cm.on_begin(&query(0), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert_eq!(out.decision, BeginDecision::Proceed);
    }

    #[test]
    fn non_runner_commit_does_not_wake() {
        let (tm, costs, mut rng) = env();
        let mut cm = AtsCm::default();
        saturate(&mut cm, 0, &tm, &costs, &mut rng);
        saturate(&mut cm, 1, &tm, &costs, &mut rng);
        cm.on_begin(&query(0), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        cm.on_begin(&query(1), &tm, &costs, &mut rng, &mut TraceSink::disabled());
        // A cool third thread commits; the queue must not drain.
        let rec = CommitRecord {
            dtx: DTxId::new(ThreadId(2), STxId(0)),
            rw_set: &[],
            now: Cycle::ZERO,
            retries: 0,
            remaining: None,
        };
        let out = cm.on_commit(&rec, &tm, &costs, &mut rng, &mut TraceSink::disabled());
        assert!(out.wake.is_empty());
    }

    #[test]
    fn intensity_converges_under_repeated_aborts() {
        let (tm, costs, mut rng) = env();
        let mut cm = AtsCm::default();
        for _ in 0..200 {
            cm.on_conflict_abort(
                &conflict(3),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            );
        }
        let ci = cm.intensity_of(ThreadId(3));
        assert!(ci > 0.95 && ci <= 1.0, "ci should converge to 1, got {ci}");
    }
}
