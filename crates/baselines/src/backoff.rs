//! Reactive randomised exponential backoff.

use bfgts_htm::{
    AbortPlan, BeginOutcome, BeginQuery, CommitOutcome, CommitRecord, ConflictEvent,
    ContentionManager, TmState,
};
use bfgts_sim::{CostModel, SimRng, TraceSink};

/// Tunables of the backoff manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// Base backoff window in cycles after the first abort.
    pub base: u64,
    /// Maximum left-shift applied to the window (caps the window at
    /// `base << max_shift`).
    pub max_shift: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self {
            base: 3000,
            max_shift: 8,
        }
    }
}

/// The classic reactive contention manager: on abort, wait a uniformly
/// random time drawn from an exponentially growing window, then retry.
/// No prediction, no bookkeeping, (almost) no overhead — ideal at low
/// contention, pathological at high contention (paper Table 4: 73.5%
/// contention on Delaunay).
///
/// # Example
///
/// ```
/// use bfgts_baselines::BackoffCm;
/// use bfgts_htm::ContentionManager;
/// let cm = BackoffCm::default();
/// assert_eq!(cm.name(), "Backoff");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BackoffCm {
    cfg: BackoffConfig,
}

impl BackoffCm {
    /// Creates a manager with the given window parameters.
    pub fn new(cfg: BackoffConfig) -> Self {
        Self { cfg }
    }
}

impl ContentionManager for BackoffCm {
    fn name(&self) -> &'static str {
        "Backoff"
    }

    fn on_begin(
        &mut self,
        _q: &BeginQuery,
        _tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> BeginOutcome {
        BeginOutcome::PROCEED_FREE
    }

    fn on_conflict_abort(
        &mut self,
        ev: &ConflictEvent,
        _tm: &TmState,
        _costs: &CostModel,
        rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> AbortPlan {
        let shift = ev.retries.min(self.cfg.max_shift);
        let window = self.cfg.base << shift;
        AbortPlan {
            backoff: rng.jitter(window),
            cost: 0,
        }
    }

    fn on_commit(
        &mut self,
        _rec: &CommitRecord<'_>,
        _tm: &TmState,
        _costs: &CostModel,
        _rng: &mut SimRng,
        _trace: &mut TraceSink,
    ) -> CommitOutcome {
        CommitOutcome::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_htm::{DTxId, LineAddr, STxId};
    use bfgts_sim::{Cycle, ThreadId};

    fn ev(retries: u32) -> ConflictEvent {
        ConflictEvent {
            aborter: DTxId::new(ThreadId(0), STxId(0)),
            enemy: DTxId::new(ThreadId(1), STxId(0)),
            addr: LineAddr(0),
            now: Cycle::ZERO,
            retries,
        }
    }

    #[test]
    fn begin_is_free() {
        let mut cm = BackoffCm::default();
        let tm = TmState::new(1, 1);
        let q = BeginQuery {
            thread: ThreadId(0),
            cpu: 0,
            dtx: DTxId::new(ThreadId(0), STxId(0)),
            now: Cycle::ZERO,
            retries: 0,
            waits: 0,
        };
        let out = cm.on_begin(
            &q,
            &tm,
            &CostModel::default(),
            &mut SimRng::seed_from(1),
            &mut TraceSink::disabled(),
        );
        assert_eq!(out.cost, 0);
    }

    #[test]
    fn backoff_is_bounded() {
        let mut cm = BackoffCm::new(BackoffConfig {
            base: 100,
            max_shift: 4,
        });
        let tm = TmState::new(1, 2);
        let mut rng = SimRng::seed_from(7);
        for r in 0..1000u32 {
            let plan = cm.on_conflict_abort(
                &ev(r),
                &tm,
                &CostModel::default(),
                &mut rng,
                &mut TraceSink::disabled(),
            );
            assert!(plan.backoff <= 100 << 4);
            assert_eq!(plan.cost, 0);
        }
    }

    #[test]
    fn backoff_varies() {
        let mut cm = BackoffCm::default();
        let tm = TmState::new(1, 2);
        let mut rng = SimRng::seed_from(7);
        let draws: Vec<u64> = (0..50)
            .map(|_| {
                cm.on_conflict_abort(
                    &ev(3),
                    &tm,
                    &CostModel::default(),
                    &mut rng,
                    &mut TraceSink::disabled(),
                )
                .backoff
            })
            .collect();
        let distinct: std::collections::BTreeSet<_> = draws.iter().collect();
        assert!(distinct.len() > 10, "backoff should be randomised");
    }
}
