//! One fuzz-campaign cell: workload × fault plan × manager pair.

use crate::plan::FaultPlan;
use bfgts_baselines::BackoffCm;
use bfgts_core::{BfgtsCm, BfgtsConfig};
use bfgts_htm::{run_workload, ContentionManager, Detection, TmRunConfig, TmRunReport};
use bfgts_sim::TraceMode;
use bfgts_workloads::AdversarialSpec;

/// Parameters shared by every cell of a campaign.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Simulated CPUs.
    pub num_cpus: usize,
    /// Worker threads.
    pub num_threads: usize,
    /// Seed of the run itself (engine + workload streams; the fault
    /// streams come from the plan's own seed).
    pub run_seed: u64,
    /// Workload scale factor (1.0 = the generator's full size).
    pub scale: f64,
    /// Graceful-degradation bound, in percent: faulted BFGTS must
    /// achieve at least this fraction of Backoff's throughput, i.e.
    /// `bfgts_makespan * min_fraction_pct <= backoff_makespan * 100`.
    pub min_fraction_pct: u64,
    /// The BFGTS flavour under test.
    pub bfgts: BfgtsConfig,
    /// Conflict-detection model of the simulated hardware. Bounded
    /// cells exercise the signature path: false-positive aborts,
    /// capacity aborts and the software-fallback latch all run under
    /// the same audit and degradation bound as perfect detection.
    pub detection: Detection,
}

impl CellConfig {
    /// A small overcommitted platform sized for CI: 4 CPUs, 8 threads,
    /// a tenth-scale workload and a 10% degradation floor (faulted
    /// BFGTS may be at most 10× slower than Backoff).
    pub fn quick(run_seed: u64) -> Self {
        Self {
            num_cpus: bfgts_htm::SMALL_CPUS,
            num_threads: bfgts_htm::SMALL_THREADS,
            run_seed,
            scale: 0.1,
            min_fraction_pct: 10,
            bfgts: BfgtsConfig::hw(),
            detection: Detection::Perfect,
        }
    }
}

/// Everything a cell execution produced, violations included. Derives
/// `PartialEq` so determinism tests can compare whole reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Workload generator name.
    pub workload: &'static str,
    /// Label of the BFGTS flavour that ran.
    pub bfgts_label: &'static str,
    /// Makespan of the faulted BFGTS run, in cycles.
    pub bfgts_makespan: u64,
    /// Makespan of the Backoff run under the same plan, in cycles.
    pub backoff_makespan: u64,
    /// Commits of the BFGTS run.
    pub bfgts_commits: u64,
    /// Commits of the Backoff run.
    pub backoff_commits: u64,
    /// Fault events the BFGTS trace recorded (0 when its audit failed
    /// outright, since the summary is then unavailable).
    pub faults_seen: u64,
    /// Every violation the cell produced: audit invariant breaks from
    /// either run, then the degradation bound if it broke. Empty means
    /// the cell passed.
    pub violations: Vec<String>,
}

impl CellReport {
    /// Whether the cell passed every check.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn audited(
    label: &str,
    report: &TmRunReport,
    violations: &mut Vec<String>,
) -> Option<bfgts_trace::AuditSummary> {
    match report.audit() {
        Ok(summary) => Some(summary),
        Err(list) => {
            for v in list {
                violations.push(format!("[{label}] {v}"));
            }
            None
        }
    }
}

fn run_config(cfg: &CellConfig, plan: &FaultPlan) -> TmRunConfig {
    let mut run_cfg = TmRunConfig::new(cfg.num_cpus, cfg.num_threads)
        .seed(cfg.run_seed)
        .trace(TraceMode::Full)
        .detection(cfg.detection);
    let pct = plan.cost_percent();
    if pct > 0 {
        run_cfg = run_cfg.perturb_costs(plan.seed, pct);
    }
    // BloomCorrupt doubles as a detection-layer fault: on bounded
    // hardware the same plan also flips bits in the live read/write
    // signatures, so the audit must hold while the conflict oracle
    // itself is being sabotaged (not just the scheduler's inputs).
    if cfg.detection.is_bounded() {
        if let Some((rate_pct, bits)) = plan.bloom_corrupt() {
            run_cfg = run_cfg.detection_fault(u64::from(rate_pct), bits, plan.seed);
        }
    }
    run_cfg
}

/// Runs only the BFGTS half of a cell, returning the full traced report.
/// This is the exact execution [`run_cell`] scores, factored out so the
/// fuzz harness can fingerprint and re-export the trace of a repro
/// without any drift between "the run that was judged" and "the run that
/// was recorded".
pub fn bfgts_run(cfg: &CellConfig, workload: &AdversarialSpec, plan: &FaultPlan) -> TmRunReport {
    let run_cfg = run_config(cfg, plan);
    let spec = workload.clone().scaled(cfg.scale);
    let cm: Box<dyn ContentionManager> = match plan.cm_faults() {
        Some(faults) => Box::new(BfgtsCm::with_faults(cfg.bfgts.clone(), faults)),
        None => Box::new(BfgtsCm::new(cfg.bfgts.clone())),
    };
    run_workload(&run_cfg, spec.sources(cfg.num_threads), cm)
}

/// Runs one cell: the configured BFGTS flavour and the Backoff baseline
/// over the same workload and fault plan, audited through invariants
/// I1–I7 and checked against the degradation bound.
///
/// Cost perturbation applies engine-wide, so both managers pay the same
/// jittered latencies; the manager-level faults (corruption, poisoning)
/// only exist inside BFGTS, which is exactly the asymmetry the
/// degradation bound is about: a scheduler whose learning inputs are
/// being sabotaged must still not lose to a scheduler that never learns
/// by more than the configured factor.
pub fn run_cell(cfg: &CellConfig, workload: &AdversarialSpec, plan: &FaultPlan) -> CellReport {
    let spec = workload.clone().scaled(cfg.scale);
    let bfgts = bfgts_run(cfg, workload, plan);
    let backoff = run_workload(
        &run_config(cfg, plan),
        spec.sources(cfg.num_threads),
        Box::new(BackoffCm::default()),
    );

    let mut violations = Vec::new();
    let bfgts_summary = audited(bfgts.cm_name, &bfgts, &mut violations);
    audited(backoff.cm_name, &backoff, &mut violations);

    let bfgts_makespan = bfgts.sim.makespan.as_u64();
    let backoff_makespan = backoff.sim.makespan.as_u64();
    if bfgts_makespan * cfg.min_fraction_pct > backoff_makespan * 100 {
        violations.push(format!(
            "degradation bound broken: {} makespan {bfgts_makespan} exceeds \
             {}% floor of Backoff's {backoff_makespan} \
             (allowed at most {})",
            bfgts.cm_name,
            cfg.min_fraction_pct,
            backoff_makespan * 100 / cfg.min_fraction_pct,
        ));
    }

    CellReport {
        workload: workload.name,
        bfgts_label: bfgts.cm_name,
        bfgts_makespan,
        backoff_makespan,
        bfgts_commits: bfgts.stats.commits(),
        backoff_commits: backoff.stats.commits(),
        faults_seen: bfgts_summary.map_or(0, |s| s.faults),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Fault;

    #[test]
    fn clean_cell_passes_and_sees_no_faults() {
        let cfg = CellConfig::quick(0xCE11);
        let spec = AdversarialSpec::hotspot_skew();
        let report = run_cell(&cfg, &spec, &FaultPlan::new(1));
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.faults_seen, 0);
        assert_eq!(report.bfgts_commits, report.backoff_commits);
        assert!(report.bfgts_makespan > 0);
    }

    #[test]
    fn faulted_cell_still_audits_clean_and_degrades_gracefully() {
        let cfg = CellConfig::quick(0xCE12);
        let spec = AdversarialSpec::contention_storm();
        let plan = FaultPlan::new(5)
            .fault(Fault::CostPerturb { max_percent: 25 })
            .fault(Fault::BloomCorrupt {
                rate_pct: 80,
                bits: 64,
            })
            .fault(Fault::ConfPoison {
                period: 30,
                saturate: true,
            });
        let report = run_cell(&cfg, &spec, &plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.faults_seen > 0, "faults must actually fire");
    }

    #[test]
    fn bounded_detection_cell_audits_clean_and_replays() {
        let mut cfg = CellConfig::quick(0xCE15);
        cfg.detection = Detection::BoundedSig {
            bits: 64,
            hashes: 1,
            capacity: 16,
        };
        let spec = AdversarialSpec::hotspot_skew();
        let plan = FaultPlan::new(7).fault(Fault::BloomCorrupt {
            rate_pct: 60,
            bits: 16,
        });
        let a = run_cell(&cfg, &spec, &plan);
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert!(
            a.faults_seen > 0,
            "detection-signature corruption must be traced"
        );
        assert_eq!(a, run_cell(&cfg, &spec, &plan), "replay");
    }

    #[test]
    fn cells_replay_byte_identically() {
        let cfg = CellConfig::quick(0xCE13);
        let spec = AdversarialSpec::phase_shift();
        let plan = FaultPlan::randomized(3);
        let a = run_cell(&cfg, &spec, &plan);
        let b = run_cell(&cfg, &spec, &plan);
        assert_eq!(a, b);
    }

    #[test]
    fn impossible_bound_is_reported_as_a_violation() {
        // A floor above 100% demands BFGTS beat Backoff outright on a
        // workload engineered against it — the seeded negative control.
        let mut cfg = CellConfig::quick(0xCE14);
        cfg.min_fraction_pct = 10_000;
        let spec = AdversarialSpec::hotspot_skew();
        let plan = FaultPlan::new(6).fault(Fault::ConfPoison {
            period: 1,
            saturate: true,
        });
        let report = run_cell(&cfg, &spec, &plan);
        assert!(!report.passed());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("degradation bound")),
            "violations: {:?}",
            report.violations
        );
    }
}
