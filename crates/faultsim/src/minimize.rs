//! Greedy fault-plan minimization.

use crate::plan::FaultPlan;

/// Shrinks `plan` to a smaller plan for which `still_fails` remains
/// true: first greedy fault removal (drop any fault whose absence keeps
/// the failure), then greedy magnitude halving per remaining fault, to
/// a fixed point.
///
/// The oracle must be deterministic — in the campaign it is "re-run the
/// cell and check whether it still violates", which is a pure function
/// of the plan. Each accepted step strictly shrinks the plan (fewer
/// faults, or a strictly weaker fault via [`crate::Fault::shrunk`]), so
/// the loop terminates.
///
/// # Panics
///
/// Panics if `still_fails(plan)` is false: minimizing a passing plan is
/// a harness bug, not a request.
pub fn minimize(plan: &FaultPlan, still_fails: impl Fn(&FaultPlan) -> bool) -> FaultPlan {
    assert!(
        still_fails(plan),
        "minimize requires a plan that reproduces the failure"
    );
    let mut current = plan.clone();
    // Phase 1: drop whole faults while the failure survives.
    loop {
        let mut dropped = false;
        for i in 0..current.faults.len() {
            let mut candidate = current.clone();
            candidate.faults.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                dropped = true;
                break;
            }
        }
        if !dropped {
            break;
        }
    }
    // Phase 2: halve magnitudes while the failure survives.
    loop {
        let mut shrank = false;
        for i in 0..current.faults.len() {
            let Some(weaker) = current.faults[i].shrunk() else {
                continue;
            };
            let mut candidate = current.clone();
            candidate.faults[i] = weaker;
            if still_fails(&candidate) {
                current = candidate;
                shrank = true;
            }
        }
        if !shrank {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Fault;
    use std::cell::Cell;

    fn noisy_plan() -> FaultPlan {
        FaultPlan::new(7)
            .fault(Fault::CostPerturb { max_percent: 40 })
            .fault(Fault::BloomCorrupt {
                rate_pct: 90,
                bits: 128,
            })
            .fault(Fault::ConfPoison {
                period: 25,
                saturate: true,
            })
    }

    #[test]
    fn removal_keeps_only_the_culprit() {
        // Failure caused by corruption with at least 16 forced bits.
        let culprit = |p: &FaultPlan| {
            p.faults
                .iter()
                .any(|f| matches!(f, Fault::BloomCorrupt { bits, .. } if *bits >= 16))
        };
        let min = minimize(&noisy_plan(), culprit);
        assert_eq!(
            min.faults,
            vec![Fault::BloomCorrupt {
                rate_pct: 90,
                bits: 16,
            }],
            "one fault left, halved 128 → 16 (8 would pass)"
        );
        assert_eq!(min.seed, 7, "the seed survives minimization");
    }

    #[test]
    fn conjunction_of_faults_is_preserved() {
        // Failure needs both poisoning and perturbation: neither can be
        // dropped.
        let both = |p: &FaultPlan| {
            let poison = p
                .faults
                .iter()
                .any(|f| matches!(f, Fault::ConfPoison { .. }));
            let perturb = p
                .faults
                .iter()
                .any(|f| matches!(f, Fault::CostPerturb { .. }));
            poison && perturb
        };
        let min = minimize(&noisy_plan(), both);
        assert_eq!(min.faults.len(), 2);
        assert!(both(&min));
    }

    #[test]
    fn already_minimal_plan_is_unchanged() {
        let plan = FaultPlan::new(1).fault(Fault::CostPerturb { max_percent: 1 });
        let min = minimize(&plan, |p: &FaultPlan| !p.is_empty());
        assert_eq!(min, plan, "nothing to drop, 1% cannot halve");
    }

    #[test]
    fn oracle_call_count_is_bounded() {
        let calls = Cell::new(0u32);
        let _ = minimize(&noisy_plan(), |p: &FaultPlan| {
            calls.set(calls.get() + 1);
            !p.is_empty()
        });
        // 3 faults: a handful of removal probes plus ~log2 magnitude
        // probes each — two orders of magnitude under a campaign budget.
        assert!(calls.get() < 64, "oracle called {} times", calls.get());
    }

    #[test]
    #[should_panic(expected = "reproduces the failure")]
    fn passing_plan_rejected() {
        let _ = minimize(&FaultPlan::new(0), |_| false);
    }
}
