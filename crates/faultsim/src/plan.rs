//! Typed, seeded fault plans.

use bfgts_core::{CmFaults, PoisonMode};
use bfgts_testkit::Gen;

/// Confidence value a saturation poisoning writes into every table
/// entry: far above the default serialisation threshold (100.0), so
/// every known pair looks certain to conflict. Kept as a single constant
/// so fault plans can stay integer-only and round-trip JSON exactly.
pub const SATURATE_VALUE: f64 = 1000.0;

/// One injected fault. All parameters are integers so a plan serialises
/// to JSON and back without any float-precision escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Jitter every cost-model latency within `±max_percent`%.
    CostPerturb {
        /// Envelope half-width in percent (1–100 is sensible).
        max_percent: u32,
    },
    /// With `rate_pct`% probability per commit signature, force `bits`
    /// random bit positions high in the freshly built Bloom filter.
    BloomCorrupt {
        /// Percent probability per commit (0–100).
        rate_pct: u32,
        /// Bit positions forced per corruption event.
        bits: u32,
    },
    /// Every `period` commits, reset the confidence table to zero or
    /// saturate it to [`SATURATE_VALUE`].
    ConfPoison {
        /// Commits between poisoning events (> 0).
        period: u64,
        /// Saturate instead of reset.
        saturate: bool,
    },
}

impl Fault {
    /// A strictly weaker version of this fault, if one exists: the
    /// magnitude-halving step of [`crate::minimize`].
    pub fn shrunk(&self) -> Option<Fault> {
        match *self {
            Fault::CostPerturb { max_percent } => {
                let half = max_percent / 2;
                (half > 0).then_some(Fault::CostPerturb { max_percent: half })
            }
            Fault::BloomCorrupt { rate_pct, bits } => {
                let half = bits / 2;
                (half > 0).then_some(Fault::BloomCorrupt {
                    rate_pct,
                    bits: half,
                })
            }
            Fault::ConfPoison { period, saturate } => {
                // Halving a poisoning fault means poisoning half as
                // often. Cap the stretch so shrinking terminates.
                let longer = period * 2;
                (longer <= 1 << 16).then_some(Fault::ConfPoison {
                    period: longer,
                    saturate,
                })
            }
        }
    }
}

/// A seeded list of faults: what to inject and the seed of every random
/// stream the injection draws from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the plan's fault RNG streams (cost jitter and the
    /// manager's private corruption/poisoning stream).
    pub seed: u64,
    /// The faults, in declaration order. At most one fault per class is
    /// meaningful: later faults of the same class override earlier ones.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan: injects nothing.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends a fault (builder style).
    pub fn fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A randomized plan for campaign cell `seed`: one to three faults
    /// with parameters drawn inside the envelopes the degradation bound
    /// is calibrated for. Deterministic in `seed` (splitmix64 via
    /// [`bfgts_testkit::Gen`]).
    pub fn randomized(seed: u64) -> Self {
        let mut g = Gen::new(seed ^ 0xFA17_B00C);
        let mut plan = Self::new(seed);
        if g.bool() {
            plan.faults.push(Fault::CostPerturb {
                max_percent: g.u32_in(5, 51),
            });
        }
        if g.bool() {
            plan.faults.push(Fault::BloomCorrupt {
                rate_pct: g.u32_in(10, 101),
                bits: g.u32_in(8, 129),
            });
        }
        if g.bool() {
            plan.faults.push(Fault::ConfPoison {
                period: g.u64_in(20, 201),
                saturate: g.bool(),
            });
        }
        if plan.faults.is_empty() {
            // Every cell injects something; an all-clean cell would
            // waste its campaign slot (the clean path is CI's job).
            plan.faults.push(Fault::BloomCorrupt {
                rate_pct: g.u32_in(10, 101),
                bits: g.u32_in(8, 129),
            });
        }
        plan
    }

    /// The cost-perturbation envelope this plan requests (0 = none;
    /// the last `CostPerturb` fault wins).
    pub fn cost_percent(&self) -> u64 {
        self.faults
            .iter()
            .rev()
            .find_map(|f| match f {
                Fault::CostPerturb { max_percent } => Some(u64::from(*max_percent)),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// The Bloom-corruption envelope this plan requests, as
    /// `(rate_pct, bits)` (`None` = no corruption; the last
    /// `BloomCorrupt` fault wins). Consumers apply it both to the
    /// scheduler's commit signatures (via [`Self::cm_faults`]) and, on
    /// capacity-limited hardware, to the live detection signatures.
    pub fn bloom_corrupt(&self) -> Option<(u32, u32)> {
        self.faults.iter().rev().find_map(|f| match f {
            Fault::BloomCorrupt { rate_pct, bits } => Some((*rate_pct, *bits)),
            _ => None,
        })
    }

    /// The manager-level fault configuration this plan folds down to,
    /// or `None` if only engine-level faults are present.
    pub fn cm_faults(&self) -> Option<CmFaults> {
        let mut cfg = CmFaults::new(self.seed);
        for f in &self.faults {
            match *f {
                Fault::CostPerturb { .. } => {}
                Fault::BloomCorrupt { rate_pct, bits } => {
                    cfg = cfg.bloom_corruption(rate_pct, bits);
                }
                Fault::ConfPoison { period, saturate } => {
                    let mode = if saturate {
                        PoisonMode::Saturate(SATURATE_VALUE)
                    } else {
                        PoisonMode::Reset
                    };
                    cfg = cfg.poisoning(period, mode);
                }
            }
        }
        cfg.is_active().then_some(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_testkit::run_cases;

    #[test]
    fn randomized_plans_are_deterministic_and_in_envelope() {
        run_cases("fault-plan-envelope", 64, |g| {
            let seed = g.u64();
            let plan = FaultPlan::randomized(seed);
            assert_eq!(plan, FaultPlan::randomized(seed), "replay");
            assert!(!plan.is_empty(), "every cell injects something");
            assert!(plan.faults.len() <= 3);
            for f in &plan.faults {
                match *f {
                    Fault::CostPerturb { max_percent } => {
                        assert!((5..=50).contains(&max_percent))
                    }
                    Fault::BloomCorrupt { rate_pct, bits } => {
                        assert!((10..=100).contains(&rate_pct));
                        assert!((8..=128).contains(&bits));
                    }
                    Fault::ConfPoison { period, .. } => {
                        assert!((20..=200).contains(&period))
                    }
                }
            }
        });
    }

    #[test]
    fn seeds_vary_the_plan() {
        let plans: Vec<_> = (0..16).map(FaultPlan::randomized).collect();
        assert!(
            plans.windows(2).any(|w| w[0].faults != w[1].faults),
            "16 consecutive seeds produced identical plans"
        );
    }

    #[test]
    fn cm_faults_folds_manager_level_faults() {
        let plan = FaultPlan::new(9)
            .fault(Fault::CostPerturb { max_percent: 20 })
            .fault(Fault::BloomCorrupt {
                rate_pct: 50,
                bits: 32,
            })
            .fault(Fault::ConfPoison {
                period: 40,
                saturate: true,
            });
        assert_eq!(plan.cost_percent(), 20);
        let cm = plan.cm_faults().expect("manager faults present");
        assert_eq!(cm.seed, 9);
        assert_eq!(cm.bloom_corrupt_pct, 50);
        assert_eq!(cm.bloom_corrupt_bits, 32);
        assert_eq!(cm.poison_period, 40);
        assert_eq!(cm.poison_mode, PoisonMode::Saturate(SATURATE_VALUE));
    }

    #[test]
    fn cost_only_plans_have_no_manager_faults() {
        let plan = FaultPlan::new(1).fault(Fault::CostPerturb { max_percent: 10 });
        assert!(plan.cm_faults().is_none());
        assert_eq!(plan.cost_percent(), 10);
        assert_eq!(FaultPlan::new(2).cost_percent(), 0);
    }

    #[test]
    fn shrinking_terminates_at_every_fault() {
        for start in [
            Fault::CostPerturb { max_percent: 50 },
            Fault::BloomCorrupt {
                rate_pct: 100,
                bits: 128,
            },
            Fault::ConfPoison {
                period: 20,
                saturate: false,
            },
        ] {
            let mut f = start;
            let mut steps = 0;
            while let Some(next) = f.shrunk() {
                f = next;
                steps += 1;
                assert!(steps < 64, "shrink chain for {start:?} does not terminate");
            }
        }
    }
}
