//! Deterministic fault injection for the BFGTS reproduction
//! (DESIGN.md §9).
//!
//! A [`FaultPlan`] is a declarative, seeded list of typed faults drawn
//! from the three classes the design document defines:
//!
//! * **cost perturbation** — every latency of the simulator's cost model
//!   jittered within a bounded envelope
//!   ([`bfgts_htm::TmRunConfig::perturb_costs`]);
//! * **Bloom corruption** — false-positive bits forced into freshly
//!   built commit signatures at a configured rate
//!   ([`bfgts_core::CmFaults::bloom_corruption`]), exercising the
//!   `intersection_estimate` clamp path;
//! * **confidence poisoning** — periodic resets or saturation of the
//!   scheduler's learned confidence table
//!   ([`bfgts_core::CmFaults::poisoning`]).
//!
//! [`run_cell`] executes one campaign cell — an adversarial workload
//! under a fault plan — for both BFGTS and the Backoff baseline, replays
//! both traces through the accounting invariant checker (I1–I7,
//! [`mod@bfgts_trace::audit`]) and checks the graceful-degradation bound:
//! faulted BFGTS must never fall below a configured fraction of
//! Backoff's throughput on the same workload and plan.
//!
//! When a cell fails, [`minimize`] greedily shrinks the plan — dropping
//! faults, then halving their magnitudes — to the smallest plan that
//! still reproduces the failure, so a repro file carries signal instead
//! of noise.
//!
//! Everything here is a pure function of its seeds: the same plan and
//! cell configuration replay byte-identically at any parallelism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod minimize;
mod plan;

pub use cell::{bfgts_run, run_cell, CellConfig, CellReport};
pub use minimize::minimize;
pub use plan::{Fault, FaultPlan, SATURATE_VALUE};
