//! End-to-end simulator throughput: whole scaled-down benchmark runs
//! under representative managers. This is the cost of one experiment
//! grid cell.

use bfgts_bench::{run_one, ManagerKind, Platform};
use bfgts_testkit::bench::Harness;
use bfgts_workloads::presets;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args();
    let platform = Platform::small();
    for (bench, kind) in [
        ("Kmeans", ManagerKind::Backoff),
        ("Kmeans", ManagerKind::BfgtsHw),
        ("Intruder", ManagerKind::Ats),
        ("Intruder", ManagerKind::BfgtsHw),
    ] {
        let spec = presets::by_name(bench).expect("preset exists").scaled(0.05);
        h.bench(&format!("workload_run/{bench}/{}", kind.label()), || {
            black_box(run_one(black_box(&spec), kind, platform));
        });
    }
    h.finish();
}
