//! End-to-end simulator throughput: whole scaled-down benchmark runs
//! under representative managers. This is the cost of one experiment
//! grid cell.

use bfgts_bench::{run_one, ManagerKind, Platform};
use bfgts_workloads::presets;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_runs(c: &mut Criterion) {
    let platform = Platform::small();
    let mut group = c.benchmark_group("workload_run");
    group.sample_size(10);
    for (bench, kind) in [
        ("Kmeans", ManagerKind::Backoff),
        ("Kmeans", ManagerKind::BfgtsHw),
        ("Intruder", ManagerKind::Ats),
        ("Intruder", ManagerKind::BfgtsHw),
    ] {
        let spec = presets::by_name(bench).expect("preset exists").scaled(0.05);
        group.bench_function(format!("{bench}/{}", kind.label()), |b| {
            b.iter(|| run_one(black_box(&spec), kind, platform))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runs);
criterion_main!(benches);
