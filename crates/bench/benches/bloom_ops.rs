//! Microbenchmarks of the Bloom signature algebra (insert, population
//! count, union, intersection estimate, similarity) across the paper's
//! filter-size sweep.

use bfgts_bloomsig::{estimate, BloomFilter, EstimateParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn filter_with(bits: u32, n: u64) -> BloomFilter {
    let mut f = BloomFilter::new(bits, 4);
    for k in 0..n {
        f.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
    f
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_insert_100");
    for bits in [512u32, 2048, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut f = BloomFilter::new(bits, 4);
                for k in 0..100u64 {
                    f.insert(black_box(k));
                }
                f
            })
        });
    }
    group.finish();
}

fn bench_count_ones(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_count_ones");
    for bits in [512u32, 2048, 8192] {
        let f = filter_with(bits, 200);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &f, |b, f| {
            b.iter(|| black_box(f).count_ones())
        });
    }
    group.finish();
}

fn bench_intersection_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_intersection_estimate");
    for bits in [512u32, 2048, 8192] {
        let a = filter_with(bits, 150);
        let b2 = filter_with(bits, 120);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| black_box(&a).intersection_estimate(black_box(&b2)))
        });
    }
    group.finish();
}

fn bench_set_size_equation(c: &mut Criterion) {
    let params = EstimateParams::new(2048, 4);
    c.bench_function("set_size_eq2", |b| {
        b.iter(|| estimate::set_size(black_box(params), black_box(700)))
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_count_ones,
    bench_intersection_estimate,
    bench_set_size_equation
);
criterion_main!(benches);
