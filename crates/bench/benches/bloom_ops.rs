//! Microbenchmarks of the Bloom signature algebra (insert, population
//! count, union, intersection estimate, similarity) across the paper's
//! filter-size sweep.

use bfgts_bloomsig::{estimate, BloomFilter, EstimateParams};
use bfgts_testkit::bench::Harness;
use std::hint::black_box;

fn filter_with(bits: u32, n: u64) -> BloomFilter {
    let mut f = BloomFilter::new(bits, 4);
    for k in 0..n {
        f.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
    f
}

fn main() {
    let mut h = Harness::from_args();

    for bits in [512u32, 2048, 8192] {
        h.bench(&format!("bloom_insert_100/{bits}"), || {
            let mut f = BloomFilter::new(bits, 4);
            for k in 0..100u64 {
                f.insert(black_box(k));
            }
            black_box(&f);
        });
    }

    for bits in [512u32, 2048, 8192] {
        let f = filter_with(bits, 200);
        h.bench(&format!("bloom_count_ones/{bits}"), || {
            black_box(black_box(&f).count_ones());
        });
    }

    for bits in [512u32, 2048, 8192] {
        let a = filter_with(bits, 150);
        let b = filter_with(bits, 120);
        h.bench(&format!("bloom_intersection_estimate/{bits}"), || {
            black_box(black_box(&a).intersection_estimate(black_box(&b)));
        });
    }

    for bits in [512u32, 2048, 8192] {
        let a = filter_with(bits, 150);
        let b = filter_with(bits, 120);
        h.bench(&format!("bloom_union/{bits}"), || {
            black_box(black_box(&a).union(black_box(&b)));
        });
        h.bench(&format!("bloom_intersects/{bits}"), || {
            black_box(black_box(&a).intersects(black_box(&b)));
        });
    }

    let params = EstimateParams::new(2048, 4);
    h.bench("set_size_eq2", || {
        black_box(estimate::set_size(black_box(params), black_box(700)));
    });

    h.finish();
}
