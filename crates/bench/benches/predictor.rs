//! Microbenchmarks of the scheduling decision paths: the hardware
//! predictor's confidence-cache lookups, and the full `on_begin` hook of
//! each manager against a populated CPU table.

use bfgts_baselines::PtsCm;
use bfgts_core::{BfgtsCm, BfgtsConfig, HwPredictor};
use bfgts_htm::{BeginQuery, ContentionManager, DTxId, STxId, TmState};
use bfgts_sim::{CostModel, Cycle, SimRng, ThreadId, TraceSink};
use bfgts_testkit::bench::Harness;
use std::hint::black_box;

fn busy_tm() -> TmState {
    let mut tm = TmState::new(16, 64);
    for cpu in 1..16usize {
        tm.begin_tx(
            ThreadId(cpu),
            cpu,
            DTxId::new(ThreadId(cpu), STxId((cpu % 4) as u32)),
            Cycle::ZERO,
        );
    }
    tm
}

fn query() -> BeginQuery {
    BeginQuery {
        thread: ThreadId(0),
        cpu: 0,
        dtx: DTxId::new(ThreadId(0), STxId(0)),
        now: Cycle::ZERO,
        retries: 0,
        waits: 0,
    }
}

fn main() {
    let mut h = Harness::from_args();
    let costs = CostModel::default();

    {
        let mut p = HwPredictor::new();
        p.lookup_cost(STxId(1), STxId(2), &costs);
        h.bench("hw_predictor_lookup_warm", || {
            black_box(p.lookup_cost(black_box(STxId(1)), black_box(STxId(2)), &costs));
        });
    }

    let tm = busy_tm();
    {
        let mut cm = BfgtsCm::new(BfgtsConfig::hw());
        let mut rng = SimRng::seed_from(1);
        let q = query();
        h.bench("on_begin_full_cpu_table/bfgts_hw", || {
            black_box(cm.on_begin(
                black_box(&q),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            ));
        });
    }
    {
        let mut cm = BfgtsCm::new(BfgtsConfig::sw());
        let mut rng = SimRng::seed_from(1);
        let q = query();
        h.bench("on_begin_full_cpu_table/bfgts_sw", || {
            black_box(cm.on_begin(
                black_box(&q),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            ));
        });
    }
    {
        let mut cm = PtsCm::default();
        let mut rng = SimRng::seed_from(1);
        let q = query();
        h.bench("on_begin_full_cpu_table/pts", || {
            black_box(cm.on_begin(
                black_box(&q),
                &tm,
                &costs,
                &mut rng,
                &mut TraceSink::disabled(),
            ));
        });
    }

    h.finish();
}
