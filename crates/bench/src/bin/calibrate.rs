//! Calibration report: measured workload statistics vs. the paper's
//! Tables 1 and 4 targets, under the plain Backoff manager.
//!
//! Each benchmark runs as its own one-cell grid so the per-benchmark
//! wall clock stays meaningful (a warm cache reports near-zero wall;
//! pass `--no-cache` to force fresh simulations).
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin calibrate [--quick] [--seed N]
//! ```

use bfgts_bench::runner::{run_grid, write_grid_json, RunCell, RunnerOptions};
use bfgts_bench::{parse_common_args, ManagerKind};
use bfgts_workloads::presets;
use std::time::Instant;

fn main() {
    let args = parse_common_args();
    let opts = RunnerOptions::from_args(&args);
    println!(
        "calibration on {} CPUs / {} threads, scale {}, seed {:#x}",
        args.platform.cpus, args.platform.threads, args.scale, args.platform.seed
    );
    let mut done: Vec<(RunCell, bfgts_bench::runner::CellSummary)> = Vec::new();
    for spec in presets::all() {
        let spec = spec.scaled(args.scale);
        let cell = RunCell::one(&spec, ManagerKind::Backoff, args.platform);
        let t0 = Instant::now(); // detlint: allow(D002) -- reports per-benchmark wall clock; simulation results never depend on it
        let summary = run_grid(std::slice::from_ref(&cell), &opts)
            .pop()
            .expect("one summary");
        let wall = t0.elapsed();
        println!(
            "\n=== {} ({} txs, {:.2}s wall) ===",
            spec.name,
            spec.total_txs,
            wall.as_secs_f64()
        );
        println!(
            "contention: measured {:.1}% vs paper {:.1}%   (commits {}, aborts {}, stalls {})",
            summary.contention_rate() * 100.0,
            spec.expected.backoff_contention * 100.0,
            summary.commits,
            summary.aborts,
            summary.stalls,
        );
        println!("  stx | paper sim | measured | paper conflicts | measured conflicts");
        for (stx, paper_sim) in &spec.expected.similarity {
            let measured = summary
                .measured_similarity(*stx)
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "--".into());
            let paper_row = spec
                .expected
                .conflict_rows
                .iter()
                .find(|(s, _)| s == stx)
                .map(|(_, row)| format!("{row:?}"))
                .unwrap_or_default();
            let measured_row = summary.conflict_row(*stx);
            println!(
                "  {stx:3} | {paper_sim:9.2} | {measured:>8} | {paper_row:15} | {measured_row:?}"
            );
        }
        println!("  makespan {} cycles", summary.makespan);
        done.push((cell, summary));
    }
    if let Some(path) = &args.json {
        let (cells, summaries): (Vec<_>, Vec<_>) = done.into_iter().unzip();
        if let Err(err) = write_grid_json(path, &cells, &summaries) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
}
