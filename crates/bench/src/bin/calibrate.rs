//! Calibration report: measured workload statistics vs. the paper's
//! Tables 1 and 4 targets, under the plain Backoff manager.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin calibrate [--quick] [--seed N]
//! ```

use bfgts_bench::{parse_common_args, run_one, ManagerKind};
use bfgts_htm::STxId;
use bfgts_workloads::presets;
use std::time::Instant;

fn main() {
    let (scale, platform) = parse_common_args();
    println!(
        "calibration on {} CPUs / {} threads, scale {scale}, seed {:#x}",
        platform.cpus, platform.threads, platform.seed
    );
    for spec in presets::all() {
        let spec = spec.scaled(scale);
        let t0 = Instant::now();
        let report = run_one(&spec, ManagerKind::Backoff, platform);
        let wall = t0.elapsed();
        println!(
            "\n=== {} ({} txs, {:.2}s wall) ===",
            spec.name,
            spec.total_txs,
            wall.as_secs_f64()
        );
        println!(
            "contention: measured {:.1}% vs paper {:.1}%   (commits {}, aborts {}, stalls {})",
            report.stats.contention_rate() * 100.0,
            spec.expected.backoff_contention * 100.0,
            report.stats.commits(),
            report.stats.aborts(),
            report.stats.stalls(),
        );
        println!("  stx | paper sim | measured | paper conflicts | measured conflicts");
        for (stx, paper_sim) in &spec.expected.similarity {
            let measured = report
                .stats
                .measured_similarity(STxId(*stx))
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "--".into());
            let paper_row = spec
                .expected
                .conflict_rows
                .iter()
                .find(|(s, _)| s == stx)
                .map(|(_, row)| format!("{row:?}"))
                .unwrap_or_default();
            let measured_row: Vec<u32> = report
                .stats
                .conflict_row(STxId(*stx))
                .iter()
                .map(|s| s.get())
                .collect();
            println!(
                "  {stx:3} | {paper_sim:9.2} | {measured:>8} | {paper_row:15} | {measured_row:?}"
            );
        }
        let makespan = report.sim.makespan.as_u64();
        println!("  makespan {makespan} cycles");
    }
}
