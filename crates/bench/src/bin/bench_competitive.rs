//! Measured competitive ratios: every online manager against the
//! clairvoyant makespan lower bound (DESIGN.md §14).
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin bench_competitive -- [options]
//! ```
//!
//! For each workload the canonical per-thread streams are drained
//! (`bfgts_workloads::drain_canonical`, mirroring the engine's RNG
//! derivation), the realized conflict graph is built, and the
//! clairvoyant lower bound is computed as the max of the work, chain and
//! hot-line floors. Each manager's measured makespan divided by that
//! bound is its competitive ratio — provably ≥ 1, smaller is better.
//! Every cell is re-run with full tracing and audited through I1–I11
//! (the window managers' priority draws are recomputed bit for bit)
//! before its numbers are recorded.
//!
//! The whole artifact is deterministic — no wall-clock fields — and
//! lands in `results/BENCH_competitive.json` by default.

use bfgts_bench::json::Json;
use bfgts_bench::runner::RunCell;
use bfgts_bench::{ManagerKind, ManagerSpec, Platform, Scenario, WorkloadSpec};
use bfgts_sim::TraceMode;
use bfgts_workloads::{
    drain_canonical, presets, AdversarialSpec, BenchmarkSpec, ConflictGraph, LbCosts, LowerBound,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: bench_competitive [options]
options:
  --quick        divide every workload's transaction count by 4
  --out PATH     artifact path (default results/BENCH_competitive.json)
  --seed N       master RNG seed (default the experiment seed)
  -h, --help     show this help";

/// One workload of the sweep: a STAMP-like preset or a PR-4 adversarial
/// generator, at the committed scale.
enum Work {
    Preset(BenchmarkSpec),
    Adversarial(AdversarialSpec),
}

impl Work {
    fn name(&self) -> &'static str {
        match self {
            Work::Preset(s) => s.name,
            Work::Adversarial(s) => s.name,
        }
    }

    fn workload_spec(&self) -> WorkloadSpec {
        match self {
            Work::Preset(s) => WorkloadSpec::from_benchmark(s),
            Work::Adversarial(s) => WorkloadSpec::from_adversarial(s),
        }
    }

    /// The canonical realized streams on `threads` threads under `seed`.
    fn streams(&self, threads: usize, seed: u64) -> Vec<Vec<bfgts_htm::TxInstance>> {
        match self {
            Work::Preset(s) => drain_canonical(s.sources(threads), seed),
            Work::Adversarial(s) => drain_canonical(s.sources(threads), seed),
        }
    }
}

/// The sweep's workloads: four STAMP presets plus two adversarial
/// generators, scaled for a committed-artifact-sized run.
fn workloads(scale: f64) -> Vec<Work> {
    vec![
        Work::Preset(presets::kmeans().scaled(scale)),
        Work::Preset(presets::genome().scaled(scale)),
        Work::Preset(presets::vacation().scaled(scale)),
        Work::Preset(presets::intruder().scaled(scale)),
        Work::Adversarial(AdversarialSpec::hotspot_skew().scaled(scale)),
        Work::Adversarial(AdversarialSpec::contention_storm().scaled(scale)),
    ]
}

/// The roster under measurement: the reactive baselines, the
/// theory-grounded greedy pair, and both BFGTS flavours.
fn managers() -> Vec<ManagerSpec> {
    vec![
        ManagerSpec::Kind {
            kind: ManagerKind::Backoff,
            bloom_bits: None,
        },
        ManagerSpec::Polka,
        ManagerSpec::WindowGreedy {
            window_size: None,
            base_delay: None,
        },
        ManagerSpec::BalancedGreedy { window_size: None },
        ManagerSpec::Kind {
            kind: ManagerKind::BfgtsSw,
            bloom_bits: None,
        },
        ManagerSpec::Kind {
            kind: ManagerKind::BfgtsHw,
            bloom_bits: None,
        },
    ]
}

struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut out = Args {
        quick: false,
        out: PathBuf::from("results/BENCH_competitive.json"),
        seed: bfgts_scenario::EXPERIMENT_SEED,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => return Ok(None),
            "--quick" => out.quick = true,
            "--out" => {
                i += 1;
                out.out = PathBuf::from(argv.get(i).ok_or("--out needs a value")?);
            }
            "--seed" => {
                i += 1;
                let v = argv.get(i).ok_or("--seed needs a value")?;
                out.seed = v
                    .parse()
                    .map_err(|_| format!("--seed needs an integer, got '{v}'"))?;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    Ok(Some(out))
}

struct Row {
    workload: &'static str,
    manager: String,
    makespan: u64,
    commits: u64,
    aborts: u64,
    window_advances: u64,
    /// Competitive ratio in milli-units (`makespan * 1000 / bound`,
    /// rounded down) — integer so the artifact diffs byte-exactly.
    ratio_milli: u64,
}

fn run_row(work: &Work, manager: ManagerSpec, platform: Platform, bound: u64) -> Row {
    let label = manager.label();
    let scenario = Scenario::new(work.workload_spec(), manager, platform);
    let cell = RunCell::from_scenario(scenario).expect("roster scenarios rebuild from data");
    let report = cell.execute_report(TraceMode::Full);
    let summary = match report.audit() {
        Ok(summary) => summary,
        Err(violations) => {
            for v in &violations {
                eprintln!("bench_competitive: audit violation: {v}");
            }
            panic!(
                "bench_competitive: {label} on {} failed its audit",
                work.name()
            );
        }
    };
    let makespan = report.sim.makespan.as_u64();
    assert!(
        makespan >= bound,
        "{label} on {} finished in {makespan} cycles, below the clairvoyant \
         bound {bound} — the bound is not a lower bound",
        work.name()
    );
    Row {
        workload: work.name(),
        manager: label,
        makespan,
        commits: report.stats.commits(),
        aborts: report.stats.aborts(),
        window_advances: summary.window_advances,
        ratio_milli: makespan * 1000 / bound,
    }
}

fn row_json(row: &Row) -> Json {
    Json::obj([
        ("workload", Json::Str(row.workload.to_string())),
        ("manager", Json::Str(row.manager.clone())),
        ("makespan", Json::UInt(row.makespan)),
        ("commits", Json::UInt(row.commits)),
        ("aborts", Json::UInt(row.aborts)),
        ("window_advances", Json::UInt(row.window_advances)),
        ("ratio_milli", Json::UInt(row.ratio_milli)),
    ])
}

fn bound_json(name: &str, lb: &LowerBound) -> Json {
    Json::obj([
        ("workload", Json::Str(name.to_string())),
        ("total_work", Json::UInt(lb.total_work)),
        ("work_bound", Json::UInt(lb.work_bound)),
        ("chain_bound", Json::UInt(lb.chain_bound)),
        ("hotline_bound", Json::UInt(lb.hotline_bound)),
        ("bound", Json::UInt(lb.bound)),
    ])
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut platform = Platform::small();
    platform.seed = args.seed;
    let scale = if args.quick { 0.0625 } else { 0.25 };

    let mut bounds = Vec::new();
    let mut rows = Vec::new();
    for work in workloads(scale) {
        let streams = work.streams(platform.threads, platform.seed);
        let graph = ConflictGraph::build(&streams, LbCosts::htm());
        let lb = graph.lower_bound(platform.cpus);
        println!(
            "bench_competitive: {:<20} bound {:>9} (work {}, chain {}, hotline {}; \
             {} nodes, {} edges)",
            work.name(),
            lb.bound,
            lb.work_bound,
            lb.chain_bound,
            lb.hotline_bound,
            graph.nodes().len(),
            graph.edges().len()
        );
        for manager in managers() {
            let row = run_row(&work, manager, platform, lb.bound);
            println!(
                "bench_competitive:   {:<18} ratio {}.{:03} (makespan {:>9}, {} commits, \
                 {} aborts, {} window advances)",
                row.manager,
                row.ratio_milli / 1000,
                row.ratio_milli % 1000,
                row.makespan,
                row.commits,
                row.aborts,
                row.window_advances
            );
            rows.push(row);
        }
        bounds.push(bound_json(work.name(), &lb));
    }

    // Shape checks: the acceptance contract of the sweep.
    assert!(
        rows.iter().all(|r| r.ratio_milli >= 1000),
        "a measured ratio fell below 1.0"
    );
    assert!(
        rows.iter()
            .any(|r| r.manager.starts_with("WindowGreedy") && r.window_advances > 0),
        "window managers never advanced a window — I11 has nothing to audit"
    );

    let doc = Json::obj([
        ("bin", Json::Str("bench_competitive".to_string())),
        ("version", Json::UInt(1)),
        ("seed", Json::UInt(args.seed)),
        ("quick", Json::Bool(args.quick)),
        ("cpus", Json::UInt(platform.cpus as u64)),
        ("threads", Json::UInt(platform.threads as u64)),
        ("bounds", Json::Arr(bounds)),
        ("rows", Json::Arr(rows.iter().map(row_json).collect())),
    ]);
    if let Some(parent) = args.out.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(err) = std::fs::create_dir_all(parent) {
            eprintln!("error: could not create {}: {err}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(err) = std::fs::write(&args.out, doc.to_string() + "\n") {
        eprintln!("error: could not write {}: {err}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("bench_competitive: wrote {}", args.out.display());
    ExitCode::SUCCESS
}
