//! Regenerates **Figure 6**: speedup sensitivity to Bloom filter size
//! (512–8192 bits) for (a) BFGTS-HW and (b) BFGTS-HW/Backoff.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin fig6_bloom_sweep [--quick] [--jobs N]
//! ```

use bfgts_bench::runner::{run_grid_with_args, RunCell};
use bfgts_bench::{parse_common_args, ManagerKind};
use bfgts_workloads::presets;

const SIZES: [u32; 5] = [512, 1024, 2048, 4096, 8192];
const KINDS: [ManagerKind; 2] = [ManagerKind::BfgtsHw, ManagerKind::BfgtsHwBackoff];

fn main() {
    let args = parse_common_args();
    let specs: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(args.scale))
        .collect();

    // Both sweeps share one grid; each benchmark's serial baseline cell
    // appears twice but is simulated once (identical cache key).
    let mut cells = Vec::new();
    for kind in KINDS {
        for spec in &specs {
            cells.push(RunCell::serial(spec, args.platform));
            for size in SIZES {
                cells.push(RunCell::with_bloom(spec, kind, args.platform, size));
            }
        }
    }
    let results = run_grid_with_args(&cells, &args);

    let mut rows = results.iter();
    for kind in KINDS {
        println!(
            "\nFigure 6 ({}): speedup vs Bloom filter size\n",
            kind.label()
        );
        print!("{:<10}", "Benchmark");
        for size in SIZES {
            print!(" {:>9}", format!("{size}b"));
        }
        println!();
        for spec in &specs {
            let serial = rows.next().expect("serial cell").makespan;
            print!("{:<10}", spec.name);
            for _ in SIZES {
                let summary = rows.next().expect("sweep cell");
                print!(" {:>9.2}", summary.speedup_over(serial));
            }
            println!();
        }
    }
}
