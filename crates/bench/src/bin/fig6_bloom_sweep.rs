//! Regenerates **Figure 6**: speedup sensitivity to Bloom filter size
//! (512–8192 bits) for (a) BFGTS-HW and (b) BFGTS-HW/Backoff.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin fig6_bloom_sweep [--quick]
//! ```

use bfgts_bench::{parse_common_args, run_one_with_bloom, serial_baseline, speedup, ManagerKind};
use bfgts_workloads::presets;

const SIZES: [u32; 5] = [512, 1024, 2048, 4096, 8192];

fn sweep(kind: ManagerKind, scale: f64, platform: bfgts_bench::Platform) {
    println!(
        "\nFigure 6 ({}): speedup vs Bloom filter size\n",
        kind.label()
    );
    print!("{:<10}", "Benchmark");
    for size in SIZES {
        print!(" {:>9}", format!("{size}b"));
    }
    println!();
    for spec in presets::all() {
        let spec = spec.scaled(scale);
        let serial = serial_baseline(&spec, platform.seed);
        print!("{:<10}", spec.name);
        for size in SIZES {
            let report = run_one_with_bloom(&spec, kind, platform, size);
            print!(" {:>9.2}", speedup(&report, serial));
        }
        println!();
    }
}

fn main() {
    let (scale, platform) = parse_common_args();
    sweep(ManagerKind::BfgtsHw, scale, platform);
    sweep(ManagerKind::BfgtsHwBackoff, scale, platform);
}
