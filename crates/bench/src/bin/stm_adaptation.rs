//! STM adaptation study: reruns the manager comparison with the cost
//! model re-targeted at a *software* TM (per-access instrumentation,
//! descriptor setup at begin, validation at commit).
//!
//! The paper's related-work section observes that for STM systems
//! "scheduling overheads are less important" (Dragojević et al. do
//! PTS-style scheduling there without hardware help). This binary tests
//! that observation in our framework: under STM costs the gap between
//! BFGTS-SW and BFGTS-HW should shrink, because the software begin-scan
//! is amortised by fatter transactions.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin stm_adaptation [--quick] [--jobs N]
//! ```

use bfgts_bench::runner::{run_grid_with_args, RunCell};
use bfgts_bench::{parse_common_args, ManagerKind};
use bfgts_workloads::presets;

fn main() {
    let args = parse_common_args();
    let specs: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(args.scale))
        .collect();

    // Per benchmark: the STM serial baseline and all managers under STM
    // costs, plus the HTM-cost reference cells (serial, BFGTS-HW,
    // BFGTS-SW) the closing ratio needs. The HTM cells are the same as
    // fig4's, so a warm cache makes them free.
    let mut cells = Vec::new();
    for spec in &specs {
        cells.push(RunCell::serial(spec, args.platform).stm());
        for kind in ManagerKind::ALL {
            cells.push(RunCell::one(spec, kind, args.platform).stm());
        }
        cells.push(RunCell::serial(spec, args.platform));
        cells.push(RunCell::one(spec, ManagerKind::BfgtsHw, args.platform));
        cells.push(RunCell::one(spec, ManagerKind::BfgtsSw, args.platform));
    }
    let results = run_grid_with_args(&cells, &args);
    let stride = 1 + ManagerKind::ALL.len() + 3;

    println!(
        "STM adaptation: manager comparison under software-TM costs\n\
         ({} CPUs / {} threads)\n",
        args.platform.cpus, args.platform.threads
    );
    print!("{:<10} {:>10}", "Benchmark", "serial-ish");
    for kind in ManagerKind::ALL {
        print!(" {:>16}", kind.label());
    }
    println!();

    let mut sw_gap_htm = Vec::new();
    let mut sw_gap_stm = Vec::new();
    for (b, spec) in specs.iter().enumerate() {
        let row = &results[b * stride..(b + 1) * stride];
        let serial = row[0].makespan;
        print!("{:<10} {:>10}", spec.name, serial);
        let mut per_kind = Vec::new();
        for (m, kind) in ManagerKind::ALL.into_iter().enumerate() {
            let s = row[1 + m].speedup_over(serial);
            per_kind.push((kind, s));
            print!(" {:>16.2}", s);
        }
        println!();

        let get = |k: ManagerKind| {
            per_kind
                .iter()
                .find(|(kind, _)| *kind == k)
                .map(|(_, s)| *s)
                .expect("kind present")
        };
        let htm_serial = row[stride - 3].makespan;
        let htm_hw = row[stride - 2].speedup_over(htm_serial);
        let htm_sw = row[stride - 1].speedup_over(htm_serial);
        if htm_sw > 0.0 {
            sw_gap_htm.push(htm_hw / htm_sw);
        }
        let (stm_hw, stm_sw) = (get(ManagerKind::BfgtsHw), get(ManagerKind::BfgtsSw));
        if stm_sw > 0.0 {
            sw_gap_stm.push(stm_hw / stm_sw);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nBFGTS-HW / BFGTS-SW ratio: {:.2}x under HTM costs vs {:.2}x under STM costs",
        mean(&sw_gap_htm),
        mean(&sw_gap_stm)
    );
    println!(
        "(paper related work: hardware acceleration matters less for STM, where\n\
         per-access instrumentation dwarfs the scheduling software)"
    );
}
