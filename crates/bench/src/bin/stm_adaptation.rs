//! STM adaptation study: reruns the manager comparison with the cost
//! model re-targeted at a *software* TM (per-access instrumentation,
//! descriptor setup at begin, validation at commit).
//!
//! The paper's related-work section observes that for STM systems
//! "scheduling overheads are less important" (Dragojević et al. do
//! PTS-style scheduling there without hardware help). This binary tests
//! that observation in our framework: under STM costs the gap between
//! BFGTS-SW and BFGTS-HW should shrink, because the software begin-scan
//! is amortised by fatter transactions.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin stm_adaptation [--quick]
//! ```

use bfgts_baselines::BackoffCm;
use bfgts_bench::{parse_common_args, speedup, ManagerKind};
use bfgts_htm::{run_workload, TmRunConfig};
use bfgts_workloads::presets;

fn main() {
    let (scale, platform) = parse_common_args();
    println!(
        "STM adaptation: manager comparison under software-TM costs\n\
         ({} CPUs / {} threads)\n",
        platform.cpus, platform.threads
    );
    print!("{:<10} {:>10}", "Benchmark", "serial-ish");
    for kind in ManagerKind::ALL {
        print!(" {:>16}", kind.label());
    }
    println!();

    let mut sw_gap_htm = Vec::new();
    let mut sw_gap_stm = Vec::new();
    for spec in presets::all() {
        let spec = spec.scaled(scale);
        // STM serial baseline.
        let serial = {
            let cfg = TmRunConfig::stm_like(1, 1).seed(platform.seed);
            run_workload(&cfg, spec.sources(1), Box::new(BackoffCm::default()))
                .sim
                .makespan
                .as_u64()
        };
        print!("{:<10} {:>10}", spec.name, serial);
        let mut per_kind = Vec::new();
        for kind in ManagerKind::ALL {
            let cfg =
                TmRunConfig::stm_like(platform.cpus, platform.threads).seed(platform.seed);
            let bits = kind.optimal_bloom_bits(spec.name);
            let report = run_workload(&cfg, spec.sources(platform.threads), kind.build(bits));
            let s = speedup(&report, serial);
            per_kind.push((kind, s));
            print!(" {:>16.2}", s);
        }
        println!();

        let get = |k: ManagerKind| {
            per_kind
                .iter()
                .find(|(kind, _)| *kind == k)
                .map(|(_, s)| *s)
                .expect("kind present")
        };
        // HTM-cost reference gap comes from the fig4 data; recompute here
        // so the binary is self-contained.
        let htm_serial = {
            let cfg = TmRunConfig::new(1, 1).seed(platform.seed);
            run_workload(&cfg, spec.sources(1), Box::new(BackoffCm::default()))
                .sim
                .makespan
                .as_u64()
        };
        let htm_speed = |k: ManagerKind| {
            let cfg =
                TmRunConfig::new(platform.cpus, platform.threads).seed(platform.seed);
            let bits = k.optimal_bloom_bits(spec.name);
            let report = run_workload(&cfg, spec.sources(platform.threads), k.build(bits));
            speedup(&report, htm_serial)
        };
        let htm_hw = htm_speed(ManagerKind::BfgtsHw);
        let htm_sw = htm_speed(ManagerKind::BfgtsSw);
        if htm_sw > 0.0 {
            sw_gap_htm.push(htm_hw / htm_sw);
        }
        let (stm_hw, stm_sw) = (get(ManagerKind::BfgtsHw), get(ManagerKind::BfgtsSw));
        if stm_sw > 0.0 {
            sw_gap_stm.push(stm_hw / stm_sw);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nBFGTS-HW / BFGTS-SW ratio: {:.2}x under HTM costs vs {:.2}x under STM costs",
        mean(&sw_gap_htm),
        mean(&sw_gap_stm)
    );
    println!(
        "(paper related work: hardware acceleration matters less for STM, where\n\
         per-access instrumentation dwarfs the scheduling software)"
    );
}
