//! Regenerates **Table 1**: the observed conflict-graph matrix and the
//! measured similarity of every static transaction in each STAMP
//! benchmark.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin table1_conflict_graphs [--quick]
//! ```
//!
//! The paper gathers this with a plain backoff manager (the measurement
//! is manager-independent; contention management only changes how often
//! conflicts repeat, not which pairs can conflict).

use bfgts_bench::runner::{run_grid_with_args, RunCell};
use bfgts_bench::{parse_common_args, ManagerKind};
use bfgts_workloads::presets;

fn main() {
    let args = parse_common_args();
    let specs: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(args.scale))
        .collect();
    let cells: Vec<RunCell> = specs
        .iter()
        .map(|spec| RunCell::one(spec, ManagerKind::Backoff, args.platform))
        .collect();
    let results = run_grid_with_args(&cells, &args);

    println!("Table 1: conflict graph and measured similarity per static transaction");
    println!(
        "(platform: {} CPUs / {} threads; paper values in parentheses)\n",
        args.platform.cpus, args.platform.threads
    );
    println!(
        "{:<10} {:>4} | {:<24} | {:>9} {:>9}",
        "Benchmark", "Tx", "Conflict graph (measured)", "similarity", "(paper)"
    );
    println!("{}", "-".repeat(70));
    for (spec, summary) in specs.iter().zip(&results) {
        for (stx, paper_sim) in &spec.expected.similarity {
            let row_str = summary
                .conflict_row(*stx)
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            let measured = summary
                .measured_similarity(*stx)
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "--".into());
            println!(
                "{:<10} {:>4} | {:<24} | {:>9} {:>9}",
                spec.name,
                stx,
                row_str,
                measured,
                format!("({paper_sim:.2})")
            );
        }
        println!("{}", "-".repeat(70));
    }
}
