//! Regenerates **Table 1**: the observed conflict-graph matrix and the
//! measured similarity of every static transaction in each STAMP
//! benchmark.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin table1_conflict_graphs [--quick]
//! ```
//!
//! The paper gathers this with a plain backoff manager (the measurement
//! is manager-independent; contention management only changes how often
//! conflicts repeat, not which pairs can conflict).

use bfgts_bench::{parse_common_args, run_one, ManagerKind};
use bfgts_htm::STxId;
use bfgts_workloads::presets;

fn main() {
    let (scale, platform) = parse_common_args();
    println!("Table 1: conflict graph and measured similarity per static transaction");
    println!(
        "(platform: {} CPUs / {} threads; paper values in parentheses)\n",
        platform.cpus, platform.threads
    );
    println!(
        "{:<10} {:>4} | {:<24} | {:>9} {:>9}",
        "Benchmark", "Tx", "Conflict graph (measured)", "similarity", "(paper)"
    );
    println!("{}", "-".repeat(70));
    for spec in presets::all() {
        let spec = spec.scaled(scale);
        let report = run_one(&spec, ManagerKind::Backoff, platform);
        for (stx, paper_sim) in &spec.expected.similarity {
            let row: Vec<u32> = report
                .stats
                .conflict_row(STxId(*stx))
                .iter()
                .map(|s| s.get())
                .collect();
            let row_str = row
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            let measured = report
                .stats
                .measured_similarity(STxId(*stx))
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "--".into());
            println!(
                "{:<10} {:>4} | {:<24} | {:>9} {:>9}",
                spec.name,
                stx,
                row_str,
                measured,
                format!("({paper_sim:.2})")
            );
        }
        println!("{}", "-".repeat(70));
    }
}
