//! Extended manager roster: adds the related-work reactive managers the
//! paper surveys but does not plot (Polka-style investment backoff,
//! Zilles/Ansari stall-on-abort) to the Figure 4 comparison.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin extended_roster [--quick]
//! ```

use bfgts_baselines::{BackoffCm, PolkaCm, StallCm};
use bfgts_bench::{parse_common_args, run_custom, serial_baseline, speedup, ManagerKind};
use bfgts_core::{BfgtsCm, BfgtsConfig};
use bfgts_htm::ContentionManager;
use bfgts_workloads::presets;

fn main() {
    let (scale, platform) = parse_common_args();
    println!(
        "Extended roster: related-work reactive managers vs Backoff and BFGTS-HW\n\
         ({} CPUs / {} threads)\n",
        platform.cpus, platform.threads
    );
    let roster: Vec<(&str, fn(&str) -> Box<dyn ContentionManager>)> = vec![
        ("Backoff", |_| Box::new(BackoffCm::default())),
        ("Polka", |_| Box::new(PolkaCm::default())),
        ("StallOnAbort", |_| Box::new(StallCm::default())),
        ("BFGTS-HW", |bench| {
            Box::new(BfgtsCm::new(
                BfgtsConfig::hw()
                    .bloom_bits(ManagerKind::BfgtsHw.optimal_bloom_bits(bench)),
            ))
        }),
    ];
    print!("{:<10}", "Benchmark");
    for (label, _) in &roster {
        print!(" {:>14}", label);
    }
    println!("   (speedup over one core; contention in parentheses)");
    for spec in presets::all() {
        let spec = spec.scaled(scale);
        let serial = serial_baseline(&spec, platform.seed);
        print!("{:<10}", spec.name);
        for (_, build) in &roster {
            let report = run_custom(&spec, platform, build(spec.name));
            print!(
                " {:>6.2} ({:>4.1}%)",
                speedup(&report, serial),
                report.stats.contention_rate() * 100.0
            );
        }
        println!();
    }
    println!(
        "\nStall-on-abort targets the *specific* enemy, sitting between blind\n\
         Backoff and predictive BFGTS; Polka's investment scaling helps where\n\
         big transactions lose to small ones."
    );
}
