//! Extended manager roster: adds the related-work managers the paper
//! surveys but does not plot — Polka-style investment backoff,
//! Zilles/Ansari stall-on-abort, and the theory-grounded greedy pair
//! (window-based randomized greedy, balanced-workload greedy; DESIGN.md
//! §14) — to the Figure 4 comparison.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin extended_roster [--quick] [--jobs N]
//! ```

use bfgts_bench::runner::{run_grid_with_args, RunCell};
use bfgts_bench::{parse_common_args, ManagerKind, ManagerSpec};
use bfgts_workloads::presets;

const LABELS: [&str; 6] = [
    "Backoff",
    "Polka",
    "StallOnAbort",
    "WindowGreedy",
    "BalancedGreedy",
    "BFGTS-HW",
];

fn main() {
    let args = parse_common_args();
    let specs: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(args.scale))
        .collect();

    // Per benchmark: serial baseline then the four roster managers, in
    // LABELS order.
    let mut cells = Vec::new();
    for spec in &specs {
        cells.push(RunCell::serial(spec, args.platform));
        cells.push(RunCell::one(spec, ManagerKind::Backoff, args.platform));
        cells.push(RunCell::with_manager(
            spec,
            args.platform,
            ManagerSpec::Polka,
        ));
        cells.push(RunCell::with_manager(
            spec,
            args.platform,
            ManagerSpec::Stall,
        ));
        cells.push(RunCell::with_manager(
            spec,
            args.platform,
            ManagerSpec::WindowGreedy {
                window_size: None,
                base_delay: None,
            },
        ));
        cells.push(RunCell::with_manager(
            spec,
            args.platform,
            ManagerSpec::BalancedGreedy { window_size: None },
        ));
        cells.push(RunCell::one(spec, ManagerKind::BfgtsHw, args.platform));
    }
    let results = run_grid_with_args(&cells, &args);
    let stride = 1 + LABELS.len();

    println!(
        "Extended roster: related-work reactive managers vs Backoff and BFGTS-HW\n\
         ({} CPUs / {} threads)\n",
        args.platform.cpus, args.platform.threads
    );
    print!("{:<10}", "Benchmark");
    for label in LABELS {
        print!(" {:>15}", label);
    }
    println!("   (speedup over one core; contention in parentheses)");
    for (b, spec) in specs.iter().enumerate() {
        let serial = results[b * stride].makespan;
        print!("{:<10}", spec.name);
        for k in 0..LABELS.len() {
            let summary = &results[b * stride + 1 + k];
            print!(
                " {:>7.2} ({:>4.1}%)",
                summary.speedup_over(serial),
                summary.contention_rate() * 100.0
            );
        }
        println!();
    }
    println!(
        "\nStall-on-abort targets the *specific* enemy, sitting between blind\n\
         Backoff and predictive BFGTS; Polka's investment scaling helps where\n\
         big transactions lose to small ones. The greedy pair brings the\n\
         theory line: windowed randomized priorities (arXiv:1002.4182) and\n\
         remaining-work balancing (arXiv:1009.0056), both audited through\n\
         invariant I11."
    );
}
