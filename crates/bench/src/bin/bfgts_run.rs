//! Executes scenario files (DESIGN.md §10).
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin bfgts_run -- FILE... [options]
//! ```
//!
//! A scenario file is the JSON written by any experiment binary's
//! `--emit PATH` flag (or by hand): a single scenario object or an array
//! of them, each a complete run description — platform, cost model,
//! workload, manager, optional fault plan. Every entry is executed
//! through the same grid runner the experiment binaries use, with the
//! same cache keys, so a scenario file replays a binary's cells
//! byte-identically and shares its `results/cache` entries.

use bfgts_bench::json::Json;
use bfgts_bench::runner::{
    self, audit_cells, chrome_trace_path, export_cell_trace, run_grid, write_grid_json, RunCell,
    RunnerOptions,
};
use bfgts_bench::ManagerSpec;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: bfgts_run FILE... [options]
  FILE           scenario file: one JSON scenario object or an array of
                 them (the format --emit writes)
options:
  --jobs N       worker threads for the grid
                 (default: available parallelism)
  --no-cache     ignore and bypass results/cache
  --json PATH    also write per-cell results as JSON to PATH
  --trace PATH   re-run the first parallel cell with full event tracing
                 and write it as JSONL to PATH (plus a Chrome trace
                 next to it)
  --audit        re-run every distinct cell with full tracing and
                 verify the accounting invariants (exits 1 on the
                 first violation)
  --bench-json PATH
                 write a machine-readable benchmark record (scenario ids,
                 makespans, wall-clock) to PATH
  -h, --help     show this help";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}

struct Args {
    files: Vec<PathBuf>,
    jobs: usize,
    use_cache: bool,
    json: Option<PathBuf>,
    trace: Option<PathBuf>,
    audit: bool,
    bench_json: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut out = Args {
        files: Vec::new(),
        jobs: runner::default_jobs(),
        use_cache: true,
        json: None,
        trace: None,
        audit: false,
        bench_json: None,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => return Ok(None),
            "--jobs" => {
                let v = value(&mut i, "--jobs")?;
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => out.jobs = n,
                    _ => return Err(format!("--jobs needs a positive integer, got '{v}'")),
                }
            }
            "--no-cache" => out.use_cache = false,
            "--json" => out.json = Some(PathBuf::from(value(&mut i, "--json")?)),
            "--trace" => out.trace = Some(PathBuf::from(value(&mut i, "--trace")?)),
            "--audit" => out.audit = true,
            "--bench-json" => out.bench_json = Some(PathBuf::from(value(&mut i, "--bench-json")?)),
            flag if flag.starts_with('-') => return Err(format!("unknown argument '{flag}'")),
            file => out.files.push(PathBuf::from(file)),
        }
        i += 1;
    }
    if out.files.is_empty() {
        return Err("at least one scenario FILE is required".to_string());
    }
    Ok(Some(out))
}

/// Loads every scenario in `path` as an executable cell, with the file
/// and entry index in any error.
fn load_cells(path: &std::path::Path) -> Result<Vec<RunCell>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let scenarios = bfgts_scenario::scenarios_from_str(&text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    scenarios
        .into_iter()
        .enumerate()
        .map(|(i, scenario)| {
            RunCell::from_scenario(scenario)
                .map_err(|e| format!("{}: scenario {i}: {e}", path.display()))
        })
        .collect()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => return fail(&msg),
    };

    let mut cells = Vec::new();
    for file in &args.files {
        match load_cells(file) {
            Ok(mut loaded) => cells.append(&mut loaded),
            Err(msg) => return fail(&msg),
        }
    }
    let unique: std::collections::BTreeSet<String> = cells.iter().map(RunCell::cache_key).collect();
    println!(
        "bfgts_run: {} scenario(s) from {} file(s), {} unique",
        cells.len(),
        args.files.len(),
        unique.len()
    );

    let opts = RunnerOptions {
        jobs: args.jobs,
        cache_dir: args
            .use_cache
            .then(|| PathBuf::from(runner::DEFAULT_CACHE_DIR)),
    };
    // Wall-clock is reported only in the --bench-json artifact, never on
    // stdout: the printed table must stay byte-identical across runs.
    let (results, wall_ms) = bfgts_bench::timed_ms(|| run_grid(&cells, &opts));

    println!(
        "{:<12} {:<18} {:<14} {:>12} {:>10} {:>8} {:>8}",
        "scenario", "manager", "workload", "makespan", "commits", "aborts", "stalls"
    );
    for (cell, summary) in cells.iter().zip(&results) {
        println!(
            "{:<12} {:<18} {:<14} {:>12} {:>10} {:>8} {:>8}",
            &cell.scenario.id()[..12],
            cell.scenario.manager.label(),
            cell.scenario.workload.name(),
            summary.makespan,
            summary.commits,
            summary.aborts,
            summary.stalls
        );
    }

    if let Some(path) = &args.json {
        if let Err(err) = write_grid_json(path, &cells, &results) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
    if let Some(path) = &args.bench_json {
        let doc = Json::obj([
            ("version", Json::UInt(1)),
            ("bin", Json::Str("bfgts_run".to_string())),
            ("cells", Json::UInt(cells.len() as u64)),
            ("unique", Json::UInt(unique.len() as u64)),
            ("wall_ms", Json::UInt(wall_ms)),
            (
                "scenarios",
                Json::Arr(
                    cells
                        .iter()
                        .zip(&results)
                        .map(|(cell, summary)| {
                            Json::obj([
                                ("id", Json::Str(cell.scenario.id())),
                                ("makespan", Json::UInt(summary.makespan)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(path, doc.to_string() + "\n")
        };
        if let Err(err) = write() {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
    if args.audit {
        match audit_cells(&cells) {
            Ok(totals) => eprintln!("audit: {totals}"),
            Err(violations) => {
                for v in violations.iter().take(10) {
                    eprintln!("audit violation: {v}");
                }
                eprintln!(
                    "error: accounting audit failed with {} violation(s)",
                    violations.len()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.trace {
        let cell = cells
            .iter()
            .find(|c| !matches!(c.scenario.manager, ManagerSpec::Serial))
            .or_else(|| cells.first());
        match cell {
            Some(cell) => {
                if let Err(err) = export_cell_trace(cell, path) {
                    eprintln!("warning: could not write {}: {err}", path.display());
                } else {
                    eprintln!(
                        "trace: wrote {} and {}",
                        path.display(),
                        chrome_trace_path(path).display()
                    );
                }
            }
            None => eprintln!("warning: --trace given but no scenarios loaded"),
        }
    }
    ExitCode::SUCCESS
}
