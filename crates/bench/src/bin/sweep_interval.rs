//! Regenerates the **§5.3.2** sensitivity study: the small-transaction
//! similarity-update interval (every 1 / 10 / 20 commits) for BFGTS-HW,
//! reported as average improvement over PTS.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin sweep_interval [--quick] [--jobs N]
//! ```

use bfgts_bench::runner::{run_grid_with_args, RunCell};
use bfgts_bench::{
    arithmetic_mean, parse_common_args, percent_improvement, BfgtsTunables, ManagerKind,
    ManagerSpec,
};
use bfgts_core::BfgtsVariant;
use bfgts_workloads::presets;

const INTERVALS: [u32; 3] = [1, 10, 20];

fn main() {
    let args = parse_common_args();
    let specs: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(args.scale))
        .collect();

    // Per benchmark: serial baseline, PTS reference, one BFGTS-HW cell
    // per update interval.
    let mut cells = Vec::new();
    for spec in &specs {
        cells.push(RunCell::serial(spec, args.platform));
        cells.push(RunCell::one(spec, ManagerKind::Pts, args.platform));
        let bits = ManagerKind::BfgtsHw.optimal_bloom_bits(spec.name);
        for interval in INTERVALS {
            cells.push(RunCell::with_manager(
                spec,
                args.platform,
                ManagerSpec::Bfgts(
                    BfgtsTunables::new(BfgtsVariant::Hw)
                        .bloom_bits(bits)
                        .small_tx_interval(interval),
                ),
            ));
        }
    }
    let results = run_grid_with_args(&cells, &args);
    let stride = 2 + INTERVALS.len();
    let serial = |b: usize| results[b * stride].makespan;
    let pts: Vec<f64> = (0..specs.len())
        .map(|b| results[b * stride + 1].speedup_over(serial(b)))
        .collect();

    println!("Section 5.3.2: small-transaction similarity update interval (BFGTS-HW)\n");
    println!(
        "{:<10} {}",
        "interval",
        specs
            .iter()
            .map(|s| format!("{:>9}", s.name))
            .collect::<String>()
    );
    for (k, interval) in INTERVALS.into_iter().enumerate() {
        let mut imps = Vec::new();
        print!("every {interval:<3} ");
        for b in 0..specs.len() {
            let s = results[b * stride + 2 + k].speedup_over(serial(b));
            imps.push(percent_improvement(s, pts[b]));
            print!(" {:>8.2}", s);
        }
        println!(
            "   avg improvement over PTS: {:+.0}%",
            arithmetic_mean(&imps)
        );
    }
    println!("\npaper: every commit ≈ +20%, every 10 ≈ +23%, every 20 ≈ +25% over PTS");
}
