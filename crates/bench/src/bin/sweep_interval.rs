//! Regenerates the **§5.3.2** sensitivity study: the small-transaction
//! similarity-update interval (every 1 / 10 / 20 commits) for BFGTS-HW,
//! reported as average improvement over PTS.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin sweep_interval [--quick]
//! ```

use bfgts_bench::{
    arithmetic_mean, parse_common_args, percent_improvement, run_custom, run_one,
    serial_baseline, speedup, ManagerKind,
};
use bfgts_core::{BfgtsCm, BfgtsConfig};
use bfgts_workloads::presets;

const INTERVALS: [u32; 3] = [1, 10, 20];

fn main() {
    let (scale, platform) = parse_common_args();
    let specs: Vec<_> = presets::all().into_iter().map(|s| s.scaled(scale)).collect();

    // PTS reference speedups.
    let mut pts = Vec::new();
    let mut serials = Vec::new();
    for spec in &specs {
        let serial = serial_baseline(spec, platform.seed);
        let report = run_one(spec, ManagerKind::Pts, platform);
        pts.push(speedup(&report, serial));
        serials.push(serial);
    }

    println!(
        "Section 5.3.2: small-transaction similarity update interval (BFGTS-HW)\n"
    );
    println!(
        "{:<10} {}",
        "interval",
        specs
            .iter()
            .map(|s| format!("{:>9}", s.name))
            .collect::<String>()
    );
    for interval in INTERVALS {
        let mut imps = Vec::new();
        print!("every {interval:<3} ");
        for (b, spec) in specs.iter().enumerate() {
            let bits = ManagerKind::BfgtsHw.optimal_bloom_bits(spec.name);
            let cm = BfgtsCm::new(
                BfgtsConfig::hw()
                    .bloom_bits(bits)
                    .small_tx_interval(interval),
            );
            let report = run_custom(spec, platform, Box::new(cm));
            let s = speedup(&report, serials[b]);
            let imp = percent_improvement(s, pts[b]);
            imps.push(imp);
            print!(" {:>8.2}", s);
        }
        println!("   avg improvement over PTS: {:+.0}%", arithmetic_mean(&imps));
    }
    println!("\npaper: every commit ≈ +20%, every 10 ≈ +23%, every 20 ≈ +25% over PTS");
}
