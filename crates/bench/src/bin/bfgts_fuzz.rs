//! Seeded fault-injection fuzz campaign driver (DESIGN.md §9).
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin bfgts_fuzz -- [options]
//! ```
//!
//! Runs one cell per seed in the range: an adversarial workload, a BFGTS
//! flavour and a randomized fault plan, all derived from the seed. Every
//! cell is audited through the accounting invariants I1–I7 and checked
//! against the graceful-degradation bound versus Backoff. Violating
//! cells are auto-minimized and written as replayable repro JSON;
//! `--repro PATH` re-executes such a file and verifies both that the
//! violation still reproduces and that the event trace is byte-identical
//! (fingerprint match). `--seeded-violation` runs a control cell that is
//! guaranteed to violate, proving the harness catches failures.

use bfgts_bench::fuzz;
use bfgts_bench::runner;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: bfgts_fuzz [options]
options:
  --seeds A..B        half-open campaign seed range (default 0..32)
  --jobs N            worker threads (default: available parallelism)
  --out DIR           directory for repro JSON files
                      (default results/repros)
  --repro PATH        replay a repro file instead of running a campaign;
                      exit 0 only if it still violates with a
                      byte-identical trace
  --seeded-violation  run the known-violating control cell; it must be
                      caught (exit 1) and leave a minimized repro
  -h, --help          show this help";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn parse_seed_range(text: &str) -> Option<(u64, u64)> {
    let (lo, hi) = text.split_once("..")?;
    let lo: u64 = lo.parse().ok()?;
    let hi: u64 = hi.parse().ok()?;
    (lo < hi).then_some((lo, hi))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds = (0u64, 32u64);
    let mut jobs = runner::default_jobs();
    let mut out = PathBuf::from("results/repros");
    let mut repro_path: Option<PathBuf> = None;
    let mut control = false;
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match args[i].as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--seeds" => match value(&mut i, "--seeds") {
                Ok(v) => match parse_seed_range(&v) {
                    Some(range) => seeds = range,
                    None => return fail(&format!("--seeds needs A..B with A < B, got '{v}'")),
                },
                Err(msg) => return fail(&msg),
            },
            "--jobs" => match value(&mut i, "--jobs") {
                Ok(v) => match v.parse::<usize>() {
                    Ok(n) if n > 0 => jobs = n,
                    _ => return fail(&format!("--jobs needs a positive integer, got '{v}'")),
                },
                Err(msg) => return fail(&msg),
            },
            "--out" => match value(&mut i, "--out") {
                Ok(v) => out = PathBuf::from(v),
                Err(msg) => return fail(&msg),
            },
            "--repro" => match value(&mut i, "--repro") {
                Ok(v) => repro_path = Some(PathBuf::from(v)),
                Err(msg) => return fail(&msg),
            },
            "--seeded-violation" => control = true,
            other => return fail(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    if let Some(path) = repro_path {
        return replay(&path);
    }
    if control {
        return seeded_violation(&out);
    }
    campaign(seeds, jobs, &out)
}

fn replay(path: &std::path::Path) -> ExitCode {
    let repro = match fuzz::load_repro(path) {
        Ok(repro) => repro,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match fuzz::replay(&repro) {
        Ok(report) => {
            println!(
                "repro {} confirmed: {} on {} still violates with a \
                 byte-identical trace (fingerprint {:016x})",
                path.display(),
                repro.bfgts_key(),
                repro.scenario.workload.name(),
                repro.fingerprint,
            );
            for v in &report.violations {
                println!("  {v}");
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("repro {} did NOT reproduce: {msg}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn seeded_violation(out: &std::path::Path) -> ExitCode {
    let (cfg, workload, plan) = fuzz::violating_control();
    let report = fuzz::run_cell(&cfg, &workload, &plan);
    if report.passed() {
        // Exit 0 here: CI inverts this command's status, so a missed
        // control comes out as a red job.
        println!("seeded violation was NOT caught — the harness is broken");
        return ExitCode::SUCCESS;
    }
    println!(
        "seeded violation caught ({} finding(s)):",
        report.violations.len()
    );
    for v in &report.violations {
        println!("  {v}");
    }
    let minimized = fuzz::minimize_failure(&cfg, &workload, &plan);
    let scored = fuzz::run_cell(&cfg, &workload, &minimized);
    let repro = fuzz::make_repro(cfg.run_seed, &cfg, &workload, &minimized, scored.violations);
    match fuzz::write_repro(out, &repro) {
        Ok(path) => println!(
            "minimized to {} fault(s); repro written to {}",
            minimized.faults.len(),
            path.display()
        ),
        Err(err) => eprintln!("warning: could not write repro: {err}"),
    }
    ExitCode::FAILURE
}

fn campaign(seeds: (u64, u64), jobs: usize, out: &std::path::Path) -> ExitCode {
    let seed_list: Vec<u64> = (seeds.0..seeds.1).collect();
    // The worker count is deliberately not echoed: stdout must be
    // byte-identical at any --jobs value.
    println!(
        "fuzz campaign: seeds {}..{} ({} cells)",
        seeds.0,
        seeds.1,
        seed_list.len()
    );
    let results = fuzz::run_campaign(&seed_list, jobs);
    let mut failures = Vec::new();
    for result in &results {
        let status = if result.report.passed() {
            "pass"
        } else {
            "FAIL"
        };
        println!(
            "  seed {:>4}  {:<20} {:<11} {} faults  bfgts {:>9}c  backoff {:>9}c  {status}",
            result.seed,
            result.workload,
            result.bfgts,
            result.plan.faults.len(),
            result.report.bfgts_makespan,
            result.report.backoff_makespan,
        );
        if !result.report.passed() {
            failures.push(result);
        }
    }
    if failures.is_empty() {
        println!(
            "campaign clean: {} cells passed the audit and the degradation bound",
            results.len()
        );
        return ExitCode::SUCCESS;
    }
    for result in &failures {
        for v in &result.report.violations {
            println!("seed {}: {v}", result.seed);
        }
        let cell = fuzz::campaign_cell(result.seed);
        let minimized = fuzz::minimize_failure(&cell.cfg, &cell.workload, &result.plan);
        let scored = fuzz::run_cell(&cell.cfg, &cell.workload, &minimized);
        let repro = fuzz::make_repro(
            result.seed,
            &cell.cfg,
            &cell.workload,
            &minimized,
            scored.violations,
        );
        match fuzz::write_repro(out, &repro) {
            Ok(path) => println!(
                "seed {}: minimized {} -> {} fault(s); repro written to {}",
                result.seed,
                result.plan.faults.len(),
                minimized.faults.len(),
                path.display()
            ),
            Err(err) => eprintln!(
                "warning: could not write repro for seed {}: {err}",
                result.seed
            ),
        }
    }
    println!(
        "campaign FAILED: {} of {} cells violated",
        failures.len(),
        results.len()
    );
    ExitCode::FAILURE
}
