//! Regenerates **Figure 5**: the runtime breakdown (non-transactional /
//! kernel / transactional / abort / scheduling) for PTS, ATS and the
//! BFGTS variants, normalised per benchmark.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin fig5_breakdown [--quick]
//! ```

use bfgts_bench::{parse_common_args, run_one, ManagerKind};
use bfgts_sim::Bucket;
use bfgts_workloads::presets;

/// The managers Figure 5 shows, bottom-to-top per benchmark group.
const FIG5_MANAGERS: [ManagerKind; 5] = [
    ManagerKind::Pts,
    ManagerKind::Ats,
    ManagerKind::BfgtsSw,
    ManagerKind::BfgtsHw,
    ManagerKind::BfgtsHwBackoff,
];

fn main() {
    let (scale, platform) = parse_common_args();
    println!(
        "Figure 5: normalized runtime breakdown ({} CPUs / {} threads)\n",
        platform.cpus, platform.threads
    );
    println!(
        "{:<10} {:<17} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Benchmark", "Manager", "non-tx", "kernel", "tx", "abort", "sched"
    );
    println!("{}", "-".repeat(72));
    for spec in presets::all() {
        let spec = spec.scaled(scale);
        for kind in FIG5_MANAGERS {
            let report = run_one(&spec, kind, platform);
            let total = report.sim.total();
            print!("{:<10} {:<17}", spec.name, kind.label());
            for bucket in Bucket::ALL {
                print!(" {:>7.1}%", total.fraction(bucket) * 100.0);
            }
            println!();
        }
        println!("{}", "-".repeat(72));
    }
}
