//! Regenerates **Figure 5**: the runtime breakdown (non-transactional /
//! kernel / transactional / abort / scheduling) for PTS, ATS and the
//! BFGTS variants, normalised per benchmark.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin fig5_breakdown [--quick] [--jobs N]
//! ```

use bfgts_bench::runner::{audit_cells, run_grid_with_args, RunCell};
use bfgts_bench::{parse_common_args, ManagerKind};
use bfgts_sim::Bucket;
use bfgts_workloads::presets;

/// The managers Figure 5 shows, bottom-to-top per benchmark group.
const FIG5_MANAGERS: [ManagerKind; 5] = [
    ManagerKind::Pts,
    ManagerKind::Ats,
    ManagerKind::BfgtsSw,
    ManagerKind::BfgtsHw,
    ManagerKind::BfgtsHwBackoff,
];

fn main() {
    let args = parse_common_args();
    let specs: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(args.scale))
        .collect();
    let cells: Vec<RunCell> = specs
        .iter()
        .flat_map(|spec| {
            FIG5_MANAGERS
                .iter()
                .map(|&kind| RunCell::one(spec, kind, args.platform))
        })
        .collect();
    let results = run_grid_with_args(&cells, &args);

    // Every Figure 5 number is a cycle-accounting claim, so this binary
    // always replays each cell's event trace through the invariant
    // checker (DESIGN.md §8) before printing — not just under --audit.
    if !args.audit {
        match audit_cells(&cells) {
            Ok(totals) => eprintln!("audit: {totals}"),
            Err(violations) => {
                for v in violations.iter().take(10) {
                    eprintln!("audit violation: {v}");
                }
                eprintln!("error: the Figure 5 accounting failed its audit");
                std::process::exit(1);
            }
        }
    }

    println!(
        "Figure 5: normalized runtime breakdown ({} CPUs / {} threads)\n",
        args.platform.cpus, args.platform.threads
    );
    println!(
        "{:<10} {:<17} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Benchmark", "Manager", "non-tx", "kernel", "tx", "abort", "sched"
    );
    println!("{}", "-".repeat(72));
    let mut rows = results.iter();
    for spec in &specs {
        for kind in FIG5_MANAGERS {
            let summary = rows.next().expect("one summary per cell");
            print!("{:<10} {:<17}", spec.name, kind.label());
            for bucket in Bucket::ALL {
                print!(" {:>7.1}%", summary.fraction(bucket) * 100.0);
            }
            println!();
        }
        println!("{}", "-".repeat(72));
    }
}
