//! Long-lived scenario server: streams transactions through the
//! scheduler and per-interval stats out as JSONL (DESIGN.md §12).
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin bfgts_serve -- [FILE...] [options]
//! ```
//!
//! Where `bfgts_run` executes a scenario file once and prints a summary
//! table, `bfgts_serve` runs a serving loop: scenario files arrive over
//! a watch directory (or stdin, or the command line), every scenario is
//! executed with full event tracing, and the recording is folded into a
//! stream of per-interval rows — arrivals, commits, aborts, peak queue
//! depth per slice of *simulated* time — followed by one summary row
//! with the open-system latency digest (sojourn p50/p95/p99, sustained
//! tx/sec). All stats derive from the deterministic recording, never
//! from wall clock, so serving the same scenario twice emits
//! byte-identical JSONL and the output can be diffed against a
//! `bfgts_run` replay of the same file.

use bfgts_bench::json::Json;
use bfgts_bench::runner::RunCell;
use bfgts_sim::TraceMode;
use bfgts_trace::{TraceEvent, TraceRecording};
use std::collections::BTreeSet;
use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: bfgts_serve [FILE...] [options]
  FILE           scenario file(s) to serve immediately, in order (the
                 format any experiment binary's --emit writes)
options:
  --watch DIR    poll DIR for *.json scenario files and serve each one
                 as it appears (names sorted per scan, served once)
  --stdin        read scenario documents from stdin, one complete JSON
                 document (object or array) per line
  --once         with --watch: serve what is present, then exit instead
                 of polling forever (the CI mode)
  --interval N   stats interval in simulated cycles (default 100000)
  --poll-ms N    watch-directory poll period in milliseconds
                 (default 200)
  --audit        replay every recording through the trace audit —
                 including the I9 arrival-causality invariant — and
                 exit 1 on a violation
  -h, --help     show this help";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}

struct Args {
    files: Vec<PathBuf>,
    watch: Option<PathBuf>,
    stdin: bool,
    once: bool,
    interval: u64,
    poll_ms: u64,
    audit: bool,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut out = Args {
        files: Vec::new(),
        watch: None,
        stdin: false,
        once: false,
        interval: 100_000,
        poll_ms: 200,
        audit: false,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => return Ok(None),
            "--watch" => out.watch = Some(PathBuf::from(value(&mut i, "--watch")?)),
            "--stdin" => out.stdin = true,
            "--once" => out.once = true,
            "--interval" => {
                let v = value(&mut i, "--interval")?;
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => out.interval = n,
                    _ => return Err(format!("--interval needs a positive integer, got '{v}'")),
                }
            }
            "--poll-ms" => {
                let v = value(&mut i, "--poll-ms")?;
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => out.poll_ms = n,
                    _ => return Err(format!("--poll-ms needs a positive integer, got '{v}'")),
                }
            }
            "--audit" => out.audit = true,
            flag if flag.starts_with('-') => return Err(format!("unknown argument '{flag}'")),
            file => out.files.push(PathBuf::from(file)),
        }
        i += 1;
    }
    if out.files.is_empty() && out.watch.is_none() && !out.stdin {
        return Err("nothing to serve: give FILE arguments, --watch DIR or --stdin".to_string());
    }
    Ok(Some(out))
}

/// One slice of simulated time, folded from the recording.
#[derive(Debug, Default, Clone, Copy)]
struct IntervalRow {
    arrivals: u64,
    commits: u64,
    aborts: u64,
    max_depth: u64,
}

/// Folds a full recording into per-interval rows. Arrivals are counted
/// at their *arrival* stamp (when they entered the queue), commits and
/// aborts at their event instant, so a row shows offered load against
/// completed work for the same slice of simulated time.
fn fold_intervals(recording: &TraceRecording, makespan: u64, interval: u64) -> Vec<IntervalRow> {
    let buckets = (makespan / interval) as usize + 1;
    let mut rows = vec![IntervalRow::default(); buckets];
    let slot = |at: u64| (at / interval) as usize;
    for rec in &recording.events {
        match rec.ev {
            TraceEvent::TxArrival { arrival, .. } => {
                let i = slot(arrival).min(buckets - 1);
                rows[i].arrivals += 1;
            }
            TraceEvent::TxCommit { .. } => {
                let i = slot(rec.at).min(buckets - 1);
                rows[i].commits += 1;
            }
            TraceEvent::TxAbort { .. } => {
                let i = slot(rec.at).min(buckets - 1);
                rows[i].aborts += 1;
            }
            TraceEvent::QueueDepth { depth, .. } => {
                let i = slot(rec.at).min(buckets - 1);
                rows[i].max_depth = rows[i].max_depth.max(depth);
            }
            _ => {}
        }
    }
    rows
}

/// Serves one scenario: executes it with full tracing, streams interval
/// rows plus a summary row to `out`, and audits the recording when
/// asked. Returns `Err` (with the violations already printed) on an
/// audit failure.
fn serve_scenario(
    cell: &RunCell,
    interval: u64,
    audit: bool,
    out: &mut impl std::io::Write,
) -> Result<(), ()> {
    let report = cell.execute_report(TraceMode::Full);
    let id = cell.scenario.id();
    let makespan = report.sim.makespan.as_u64();
    if audit {
        if let Err(violations) = report.audit() {
            for v in violations.iter().take(10) {
                eprintln!("audit violation: {id}: {v}");
            }
            eprintln!(
                "error: audit failed for scenario {id} with {} violation(s)",
                violations.len()
            );
            return Err(());
        }
    }
    let rows = fold_intervals(&report.sim.trace, makespan, interval);
    for (i, row) in rows.iter().enumerate() {
        let t0 = i as u64 * interval;
        let line = Json::obj([
            ("aborts", Json::UInt(row.aborts)),
            ("arrivals", Json::UInt(row.arrivals)),
            ("commits", Json::UInt(row.commits)),
            ("kind", Json::Str("interval".into())),
            ("max_depth", Json::UInt(row.max_depth)),
            ("scenario", Json::Str(id.clone())),
            ("t0", Json::UInt(t0)),
            ("t1", Json::UInt(t0 + interval)),
        ]);
        let _ = writeln!(out, "{line}");
    }
    let mut pairs = vec![
        ("aborts", Json::UInt(report.stats.aborts())),
        ("commits", Json::UInt(report.stats.commits())),
        ("kind", Json::Str("summary".into())),
        ("makespan", Json::UInt(makespan)),
        ("manager", Json::Str(cell.scenario.manager.label())),
        ("scenario", Json::Str(id)),
        ("stalls", Json::UInt(report.stats.stalls())),
        ("workload", Json::Str(cell.scenario.workload.name().into())),
    ];
    if let Some(latency) = report.latency() {
        pairs.push((
            "latency",
            Json::obj([
                ("count", Json::UInt(latency.count)),
                ("p50", Json::UInt(latency.p50)),
                ("p95", Json::UInt(latency.p95)),
                ("p99", Json::UInt(latency.p99)),
                ("total_cycles", Json::UInt(latency.total_cycles)),
                // Bit pattern, like the cell cache: replay-diffable.
                ("tx_per_sec_bits", Json::UInt(latency.tx_per_sec.to_bits())),
            ]),
        ));
        pairs.push((
            // Human-facing view of the same number; {:?}-formatted f64s
            // are shortest-round-trip, so equal bits print equal text.
            "tx_per_sec",
            Json::Float(latency.tx_per_sec),
        ));
    }
    let _ = writeln!(out, "{}", Json::obj(pairs));
    Ok(())
}

/// Loads and serves every scenario in `text`. Returns how many scenarios
/// were served, or the error message of the first bad entry / the marker
/// of an audit failure.
fn serve_document(
    label: &str,
    text: &str,
    args: &Args,
    out: &mut impl std::io::Write,
) -> Result<usize, String> {
    let scenarios =
        bfgts_scenario::scenarios_from_str(text).map_err(|e| format!("{label}: {e}"))?;
    let cells = scenarios
        .into_iter()
        .enumerate()
        .map(|(i, s)| RunCell::from_scenario(s).map_err(|e| format!("{label}: scenario {i}: {e}")))
        .collect::<Result<Vec<_>, _>>()?;
    let served = cells.len();
    for cell in &cells {
        serve_scenario(cell, args.interval, args.audit, out)
            .map_err(|()| format!("{label}: audit failed"))?;
    }
    out.flush().map_err(|e| format!("{label}: {e}"))?;
    Ok(served)
}

fn serve_file(path: &Path, args: &Args, out: &mut impl std::io::Write) -> Result<usize, String> {
    let label = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{label}: {e}"))?;
    serve_document(&label, &text, args, out)
}

/// The *.json files currently in `dir`, sorted by name.
fn scan_dir(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    files
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => return fail(&msg),
    };

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut failed = false;

    for file in &args.files {
        match serve_file(file, &args, &mut out) {
            Ok(served) => eprintln!("serve: {}: {served} scenario(s)", file.display()),
            Err(msg) => {
                eprintln!("error: {msg}");
                failed = true;
            }
        }
    }

    if args.stdin {
        let stdin = std::io::stdin();
        for (n, line) in stdin.lock().lines().enumerate() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match serve_document(&format!("stdin:{}", n + 1), &line, &args, &mut out) {
                Ok(served) => eprintln!("serve: stdin:{}: {served} scenario(s)", n + 1),
                Err(msg) => {
                    eprintln!("error: {msg}");
                    failed = true;
                }
            }
        }
    }

    if let Some(dir) = &args.watch {
        let mut seen: BTreeSet<PathBuf> = BTreeSet::new();
        loop {
            let mut fresh = 0usize;
            for path in scan_dir(dir) {
                if !seen.insert(path.clone()) {
                    continue;
                }
                fresh += 1;
                match serve_file(&path, &args, &mut out) {
                    Ok(served) => eprintln!("serve: {}: {served} scenario(s)", path.display()),
                    Err(msg) => {
                        eprintln!("error: {msg}");
                        failed = true;
                    }
                }
            }
            if args.once {
                break;
            }
            if fresh == 0 {
                std::thread::sleep(std::time::Duration::from_millis(args.poll_ms));
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
