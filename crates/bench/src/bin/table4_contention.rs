//! Regenerates **Table 4**: contention rates for every contention
//! manager on every STAMP benchmark (16-processor system).
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin table4_contention [--quick]
//! ```

use bfgts_bench::{parse_common_args, run_one, ManagerKind};
use bfgts_workloads::presets;

fn main() {
    let (scale, platform) = parse_common_args();
    println!(
        "Table 4: contention rates (aborted attempts / all attempts), {} CPUs / {} threads\n",
        platform.cpus, platform.threads
    );
    print!("{:<10}", "Benchmark");
    for kind in ManagerKind::ALL {
        print!(" {:>16}", kind.label());
    }
    println!(" {:>16}", "(paper Backoff)");
    for spec in presets::all() {
        let spec = spec.scaled(scale);
        print!("{:<10}", spec.name);
        for kind in ManagerKind::ALL {
            let report = run_one(&spec, kind, platform);
            print!(" {:>15.1}%", report.stats.contention_rate() * 100.0);
        }
        println!(
            " {:>15.1}%",
            spec.expected.backoff_contention * 100.0
        );
    }
}
