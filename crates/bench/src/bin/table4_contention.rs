//! Regenerates **Table 4**: contention rates for every contention
//! manager on every STAMP benchmark (16-processor system).
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin table4_contention [--quick] [--jobs N]
//! ```

use bfgts_bench::runner::{run_grid_with_args, RunCell};
use bfgts_bench::{parse_common_args, ManagerKind};
use bfgts_workloads::presets;

fn main() {
    let args = parse_common_args();
    let specs: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(args.scale))
        .collect();
    let cells: Vec<RunCell> = specs
        .iter()
        .flat_map(|spec| {
            ManagerKind::ALL
                .iter()
                .map(|&kind| RunCell::one(spec, kind, args.platform))
        })
        .collect();
    let results = run_grid_with_args(&cells, &args);

    println!(
        "Table 4: contention rates (aborted attempts / all attempts), {} CPUs / {} threads\n",
        args.platform.cpus, args.platform.threads
    );
    print!("{:<10}", "Benchmark");
    for kind in ManagerKind::ALL {
        print!(" {:>16}", kind.label());
    }
    println!(" {:>16}", "(paper Backoff)");
    let mut rows = results.iter();
    for spec in &specs {
        print!("{:<10}", spec.name);
        for _ in ManagerKind::ALL {
            let summary = rows.next().expect("one summary per cell");
            print!(" {:>15.1}%", summary.contention_rate() * 100.0);
        }
        println!(" {:>15.1}%", spec.expected.backoff_contention * 100.0);
    }
}
