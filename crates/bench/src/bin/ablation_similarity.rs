//! Ablation of the paper's central design choice: similarity-weighted
//! confidence updates vs. constant (PTS-style) updates, everything else
//! held equal (BFGTS-HW machinery in both arms).
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin ablation_similarity [--quick]
//! ```

use bfgts_bench::{
    arithmetic_mean, parse_common_args, percent_improvement, run_custom, serial_baseline,
    speedup, ManagerKind,
};
use bfgts_core::{BfgtsCm, BfgtsConfig};
use bfgts_workloads::presets;

fn main() {
    let (scale, platform) = parse_common_args();
    println!("Ablation: similarity-weighted vs constant confidence updates (BFGTS-HW)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "Benchmark", "weighted", "constant", "delta"
    );
    let mut deltas = Vec::new();
    for spec in presets::all() {
        let spec = spec.scaled(scale);
        let serial = serial_baseline(&spec, platform.seed);
        let bits = ManagerKind::BfgtsHw.optimal_bloom_bits(spec.name);
        let weighted = {
            let cm = BfgtsCm::new(BfgtsConfig::hw().bloom_bits(bits));
            speedup(&run_custom(&spec, platform, Box::new(cm)), serial)
        };
        let constant = {
            let cm = BfgtsCm::new(
                BfgtsConfig::hw()
                    .bloom_bits(bits)
                    .without_similarity_weighting(),
            );
            speedup(&run_custom(&spec, platform, Box::new(cm)), serial)
        };
        let delta = percent_improvement(weighted, constant);
        deltas.push(delta);
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>+11.0}%",
            spec.name, weighted, constant, delta
        );
    }
    println!(
        "\naverage gain from similarity weighting: {:+.0}%",
        arithmetic_mean(&deltas)
    );
}
