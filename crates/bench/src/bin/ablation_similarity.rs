//! Ablation of the paper's central design choice: similarity-weighted
//! confidence updates vs. constant (PTS-style) updates, everything else
//! held equal (BFGTS-HW machinery in both arms).
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin ablation_similarity [--quick] [--jobs N]
//! ```

use bfgts_bench::runner::{run_grid_with_args, RunCell};
use bfgts_bench::{
    arithmetic_mean, parse_common_args, percent_improvement, BfgtsTunables, ManagerKind,
    ManagerSpec,
};
use bfgts_core::BfgtsVariant;
use bfgts_workloads::presets;

fn main() {
    let args = parse_common_args();
    let specs: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(args.scale))
        .collect();

    // Per benchmark: serial baseline, the weighted (stock BFGTS-HW) arm,
    // the constant-update arm.
    let mut cells = Vec::new();
    for spec in &specs {
        cells.push(RunCell::serial(spec, args.platform));
        cells.push(RunCell::one(spec, ManagerKind::BfgtsHw, args.platform));
        let bits = ManagerKind::BfgtsHw.optimal_bloom_bits(spec.name);
        cells.push(RunCell::with_manager(
            spec,
            args.platform,
            ManagerSpec::Bfgts(
                BfgtsTunables::new(BfgtsVariant::Hw)
                    .bloom_bits(bits)
                    .without_similarity_weighting(),
            ),
        ));
    }
    let results = run_grid_with_args(&cells, &args);

    println!("Ablation: similarity-weighted vs constant confidence updates (BFGTS-HW)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "Benchmark", "weighted", "constant", "delta"
    );
    let mut deltas = Vec::new();
    for (b, spec) in specs.iter().enumerate() {
        let serial = results[b * 3].makespan;
        let weighted = results[b * 3 + 1].speedup_over(serial);
        let constant = results[b * 3 + 2].speedup_over(serial);
        let delta = percent_improvement(weighted, constant);
        deltas.push(delta);
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>+11.0}%",
            spec.name, weighted, constant, delta
        );
    }
    println!(
        "\naverage gain from similarity weighting: {:+.0}%",
        arithmetic_mean(&deltas)
    );
}
