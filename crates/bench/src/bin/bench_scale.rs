//! Scale-out sweep: the same fig4-style cell at 16 → 1024 CPUs
//! (DESIGN.md §11).
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin bench_scale -- [options]
//! ```
//!
//! Each row runs one BFGTS-HW cell on an N-CPU platform (4 threads per
//! CPU, conflict detection sharded at one shard per 16 CPUs) with the
//! workload rescaled into the 10⁵–10⁶ transaction band, and records
//! makespan, commits, aborts and wall-clock. At 256 CPUs the identical
//! cell is run once more with the legacy binary-heap event queue: both
//! queues must produce byte-identical simulation results (asserted), so
//! the two wall-clocks isolate the calendar queue's speedup.
//!
//! Simulation results in the artifact are deterministic; only the
//! `wall_ms` fields vary run to run. The artifact lands in
//! `results/BENCH_scale.json` by default.

use bfgts_bench::json::Json;
use bfgts_bench::{timed_ms, ManagerKind};
use bfgts_htm::{run_workload, TmRunConfig, TmRunReport};
use bfgts_scenario::EXPERIMENT_SEED;
use bfgts_sim::EventQueueKind;
use bfgts_workloads::presets;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: bench_scale [options]
options:
  --quick        divide every row's transaction count by 20
  --out PATH     artifact path (default results/BENCH_scale.json)
  --seed N       master RNG seed (default 0xB16B00B5)
  -h, --help     show this help";

/// CPUs per conflict-detection shard: the paper's 16-CPU platform maps
/// to one shard, 1024 CPUs to 64.
const CPUS_PER_SHARD: usize = 16;

/// The swept platform widths.
const CPU_POINTS: [usize; 4] = [16, 64, 256, 1024];

/// The width where the old heap is raced against the calendar queue.
const QUEUE_RACE_CPUS: usize = 256;

struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut out = Args {
        quick: false,
        out: PathBuf::from("results/BENCH_scale.json"),
        seed: EXPERIMENT_SEED,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => return Ok(None),
            "--quick" => out.quick = true,
            "--out" => {
                i += 1;
                out.out = PathBuf::from(argv.get(i).ok_or("--out needs a value")?);
            }
            "--seed" => {
                i += 1;
                let v = argv.get(i).ok_or("--seed needs a value")?;
                out.seed = v
                    .parse()
                    .map_err(|_| format!("--seed needs an integer, got '{v}'"))?;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    Ok(Some(out))
}

/// Total dynamic transactions for an N-CPU row: 6250 per CPU, capped at
/// the top of the 10⁵–10⁶ band (16 → 100k, 64 → 400k, 256+ → 1M).
fn txns_for(cpus: usize, quick: bool) -> u64 {
    let full = (cpus as u64 * 6_250).min(1_000_000);
    if quick {
        full / 20
    } else {
        full
    }
}

fn run_row(cpus: usize, txns: u64, seed: u64, queue: EventQueueKind) -> TmRunReport {
    let mut spec = presets::kmeans();
    spec.total_txs = txns;
    let threads = cpus * 4;
    let shards = (cpus / CPUS_PER_SHARD).max(1) as u32;
    let cfg = TmRunConfig::new(cpus, threads)
        .seed(seed)
        .shards(shards)
        .queue(queue);
    run_workload(&cfg, spec.sources(threads), ManagerKind::BfgtsHw.build(512))
}

fn row_json(cpus: usize, txns: u64, queue: &str, report: &TmRunReport, wall_ms: u64) -> Json {
    Json::obj([
        ("cpus", Json::UInt(cpus as u64)),
        ("threads", Json::UInt(cpus as u64 * 4)),
        ("shards", Json::UInt((cpus / CPUS_PER_SHARD).max(1) as u64)),
        ("txns", Json::UInt(txns)),
        ("queue", Json::Str(queue.to_string())),
        ("makespan", Json::UInt(report.sim.makespan.as_u64())),
        ("commits", Json::UInt(report.stats.commits())),
        ("aborts", Json::UInt(report.stats.aborts())),
        ("wall_ms", Json::UInt(wall_ms)),
    ])
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut rows = Vec::new();
    let mut race: Option<(u64, u64)> = None;
    for cpus in CPU_POINTS {
        let txns = txns_for(cpus, args.quick);
        let (report, wall_ms) =
            timed_ms(|| run_row(cpus, txns, args.seed, EventQueueKind::Calendar));
        println!(
            "bench_scale: {cpus:>4} cpus, {txns:>7} txns: makespan {} ({} commits, {wall_ms} ms)",
            report.sim.makespan.as_u64(),
            report.stats.commits()
        );
        rows.push(row_json(cpus, txns, "calendar", &report, wall_ms));
        if cpus == QUEUE_RACE_CPUS {
            let (heap, heap_ms) = timed_ms(|| run_row(cpus, txns, args.seed, EventQueueKind::Heap));
            // The queue is a pure wall-clock knob: any divergence here is
            // an ordering bug, not a measurement.
            assert_eq!(
                heap.sim.makespan, report.sim.makespan,
                "queue changed makespan"
            );
            assert_eq!(heap.stats.commits(), report.stats.commits());
            assert_eq!(heap.stats.aborts(), report.stats.aborts());
            println!(
                "bench_scale: {cpus:>4} cpus, legacy heap queue: identical results, {heap_ms} ms \
                 (calendar {wall_ms} ms)"
            );
            rows.push(row_json(cpus, txns, "heap", &heap, heap_ms));
            race = Some((heap_ms, wall_ms));
        }
    }

    let mut pairs = vec![
        ("bin", Json::Str("bench_scale".to_string())),
        ("version", Json::UInt(1)),
        ("workload", Json::Str("Kmeans".to_string())),
        (
            "manager",
            Json::Str(ManagerKind::BfgtsHw.label().to_string()),
        ),
        ("seed", Json::UInt(args.seed)),
        ("quick", Json::Bool(args.quick)),
        ("rows", Json::Arr(rows)),
    ];
    if let Some((heap_ms, calendar_ms)) = race {
        pairs.push((
            "queue_race_256",
            Json::obj([
                ("heap_wall_ms", Json::UInt(heap_ms)),
                ("calendar_wall_ms", Json::UInt(calendar_ms)),
            ]),
        ));
    }
    let doc = Json::obj(pairs);
    if let Some(parent) = args.out.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(err) = std::fs::create_dir_all(parent) {
            eprintln!("error: could not create {}: {err}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(err) = std::fs::write(&args.out, doc.to_string() + "\n") {
        eprintln!("error: could not write {}: {err}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("bench_scale: wrote {}", args.out.display());
    ExitCode::SUCCESS
}
