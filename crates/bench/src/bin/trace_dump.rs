//! Inspects a JSONL event trace written by `--trace PATH`.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin trace_dump -- FILE [options]
//! ```
//!
//! By default prints a summary: the run shape from the header and the
//! event counts by type. `--audit` replays the file through the
//! accounting invariant checker (DESIGN.md §8) and exits 1 on any
//! violation. `--tamper` is the checker's negative control: it perturbs
//! the first charge by one cycle before auditing and *succeeds only if
//! the audit fails* — a checker that accepts a corrupted trace is
//! broken. `--tamper-capacity` is the same control for invariant I10:
//! it lowers the first capacity abort's recorded set size to the
//! configured bound (so the abort no longer exceeded it) and requires
//! the audit to reject. `--tamper-window` is the control for I11: it
//! flips one bit in the first window advance's announced priority —
//! the audit recomputes every draw from the declared seed and must
//! notice. `--chrome PATH` converts the file for `chrome://tracing`.

use bfgts_bench::trace_export::{parse_jsonl_full, to_chrome};
use bfgts_trace::{audit, TraceEvent};
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "\
usage: trace_dump FILE [options]
options:
  --audit        replay the trace through the accounting invariant
                 checker; exit 1 on any violation
  --tamper       negative control: corrupt the first charge by one
                 cycle, then require the audit to fail
  --tamper-capacity
                 negative control for I10: lower the first capacity
                 abort's set size to the configured bound, then
                 require the audit to fail
  --tamper-window
                 negative control for I11: flip one bit in the first
                 window advance's announced priority, then require
                 the audit to fail
  --chrome PATH  also convert the trace to Chrome trace_event JSON
  -h, --help     show this help";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut do_audit = false;
    let mut tamper = false;
    let mut tamper_capacity = false;
    let mut tamper_window = false;
    let mut chrome_out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--audit" => do_audit = true,
            "--tamper" => tamper = true,
            "--tamper-capacity" => tamper_capacity = true,
            "--tamper-window" => tamper_window = true,
            "--chrome" => {
                i += 1;
                match args.get(i) {
                    Some(path) => chrome_out = Some(path.clone()),
                    None => return fail("--chrome needs a value"),
                }
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => return fail(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    let Some(file) = file else {
        return fail("missing trace FILE");
    };

    let text = match std::fs::read_to_string(&file) {
        Ok(text) => text,
        Err(err) => return fail(&format!("cannot read {file}: {err}")),
    };
    let (mut recording, inputs, scenario) = match parse_jsonl_full(&text) {
        Ok(parsed) => parsed,
        Err(err) => return fail(&format!("{file}: {err}")),
    };

    println!(
        "{file}: {} events ({} dropped), makespan {} cycles, {} CPUs, {} threads",
        recording.events.len(),
        recording.dropped,
        inputs.makespan,
        inputs.num_cpus,
        inputs.per_thread.len()
    );
    if let Some(scenario) = &scenario {
        println!(
            "  scenario {}: {} on {} (replay with bfgts_run)",
            scenario.id(),
            scenario.manager.label(),
            scenario.workload.name()
        );
    }
    let mut by_name: BTreeMap<&'static str, u64> = BTreeMap::new();
    for rec in &recording.events {
        *by_name.entry(rec.ev.name()).or_insert(0) += 1;
    }
    for (name, count) in &by_name {
        println!("  {name:<16} {count}");
    }

    if let Some(path) = chrome_out {
        if let Err(err) = std::fs::write(&path, to_chrome(&recording, &inputs)) {
            return fail(&format!("cannot write {path}: {err}"));
        }
        println!("wrote {path}");
    }

    if tamper {
        // Corrupt the cheapest thing that must break invariant I1: one
        // extra cycle in the first charge.
        let Some(rec) = recording.events.iter_mut().find_map(|rec| match rec.ev {
            TraceEvent::Charge { .. } => Some(rec),
            _ => None,
        }) else {
            return fail("--tamper: trace has no charge events to corrupt");
        };
        if let TraceEvent::Charge { ref mut cycles, .. } = rec.ev {
            *cycles += 1;
        }
        return match audit(&recording, &inputs) {
            Err(violations) => {
                println!(
                    "tamper control: audit correctly rejected the corrupted trace ({} violations)",
                    violations.len()
                );
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!("error: audit ACCEPTED a corrupted trace — the checker is broken");
                ExitCode::FAILURE
            }
        };
    }

    if tamper_capacity {
        // The I10 control: rewrite the first capacity abort so its
        // recorded set size no longer exceeds the configured bound. A
        // checker that still accepts the trace would also accept a
        // simulator whose capacity aborts fire below the bound.
        let Some(rec) = recording.events.iter_mut().find_map(|rec| match rec.ev {
            TraceEvent::CapacityAbort { .. } => Some(rec),
            _ => None,
        }) else {
            return fail("--tamper-capacity: trace has no capacity aborts to corrupt");
        };
        if let TraceEvent::CapacityAbort {
            ref mut tracked,
            capacity,
            ..
        } = rec.ev
        {
            *tracked = capacity;
        }
        return match audit(&recording, &inputs) {
            Err(violations) => {
                println!(
                    "tamper-capacity control: audit correctly rejected the corrupted trace \
                     ({} violations)",
                    violations.len()
                );
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!("error: audit ACCEPTED a corrupted trace — the I10 checker is broken");
                ExitCode::FAILURE
            }
        };
    }

    if tamper_window {
        // The I11 control: flip one bit in the first announced window
        // priority. The checker recomputes every draw from the declared
        // seed, so any divergence — a manager rolling its own RNG, a
        // doctored trace — must surface as a violation.
        let Some(rec) = recording.events.iter_mut().find_map(|rec| match rec.ev {
            TraceEvent::WindowAdvance { .. } => Some(rec),
            _ => None,
        }) else {
            return fail("--tamper-window: trace has no window advances to corrupt");
        };
        if let TraceEvent::WindowAdvance {
            ref mut priority, ..
        } = rec.ev
        {
            *priority ^= 1;
        }
        return match audit(&recording, &inputs) {
            Err(violations) => {
                println!(
                    "tamper-window control: audit correctly rejected the corrupted trace \
                     ({} violations)",
                    violations.len()
                );
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!("error: audit ACCEPTED a corrupted trace — the I11 checker is broken");
                ExitCode::FAILURE
            }
        };
    }

    if do_audit {
        return match audit(&recording, &inputs) {
            Ok(summary) => {
                println!(
                    "audit: clean — {} confidence updates and {} bloom samples verified bit-for-bit",
                    summary.conf_updates, summary.bloom_samples
                );
                for (cpu, (busy, idle)) in summary
                    .per_cpu_busy
                    .iter()
                    .zip(&summary.per_cpu_idle)
                    .enumerate()
                {
                    println!("  cpu{cpu}: busy {busy} + idle {idle} = {}", busy + idle);
                }
                ExitCode::SUCCESS
            }
            Err(violations) => {
                for v in violations.iter().take(20) {
                    eprintln!("audit violation: {v}");
                }
                eprintln!("error: audit failed with {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        };
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}
