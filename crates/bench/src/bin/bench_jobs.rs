//! Grid-parallelism benchmark: one fixed scenario grid, run at
//! `--jobs` 1/2/4/8, wall-clock recorded per setting.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin bench_jobs -- [options]
//! ```
//!
//! The grid is a fig4-style smoke slice (four managers × two STAMP
//! presets on the paper's 16-CPU platform) chosen to be wide enough
//! that worker parallelism matters and small enough to finish in
//! seconds. Every jobs setting must produce identical summaries —
//! asserted cell by cell, which is the determinism contract `--jobs`
//! carries everywhere else. Only the `wall_ms` fields of the artifact
//! vary run to run; it lands in `results/BENCH_jobs.json` by default.

use bfgts_bench::json::Json;
use bfgts_bench::runner::{self, run_grid, RunCell, RunnerOptions};
use bfgts_bench::{timed_ms, ManagerKind, ManagerSpec, Platform, Scenario, WorkloadSpec};
use bfgts_scenario::EXPERIMENT_SEED;
use bfgts_workloads::presets;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: bench_jobs [options]
options:
  --scale F      workload scale factor of the fixed grid (default 0.1)
  --out PATH     artifact path (default results/BENCH_jobs.json)
  --seed N       master RNG seed (default 0xB16B00B5)
  -h, --help     show this help";

/// The swept worker counts (ROADMAP item 5).
const JOB_POINTS: [usize; 4] = [1, 2, 4, 8];

struct Args {
    scale: f64,
    out: PathBuf,
    seed: u64,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut out = Args {
        scale: 0.1,
        out: PathBuf::from("results/BENCH_jobs.json"),
        seed: EXPERIMENT_SEED,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => return Ok(None),
            "--scale" => {
                i += 1;
                let v = argv.get(i).ok_or("--scale needs a value")?;
                out.scale = v
                    .parse()
                    .map_err(|_| format!("--scale needs a number, got '{v}'"))?;
            }
            "--out" => {
                i += 1;
                out.out = PathBuf::from(argv.get(i).ok_or("--out needs a value")?);
            }
            "--seed" => {
                i += 1;
                let v = argv.get(i).ok_or("--seed needs a value")?;
                out.seed = v
                    .parse()
                    .map_err(|_| format!("--seed needs an integer, got '{v}'"))?;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    Ok(Some(out))
}

/// The fixed grid: every (manager × preset) cell, all distinct, so every
/// jobs setting does the same real work (no cache, no dedup shortcut).
fn grid(scale: f64, seed: u64) -> Vec<RunCell> {
    let managers = [
        ManagerKind::Backoff,
        ManagerKind::Ats,
        ManagerKind::BfgtsHw,
        ManagerKind::BfgtsHwBackoff,
    ];
    let workloads = [
        presets::kmeans().scaled(scale),
        presets::vacation().scaled(scale),
    ];
    let mut platform = Platform::paper();
    platform.seed = seed;
    let mut cells = Vec::new();
    for kind in managers {
        for spec in &workloads {
            let scenario = Scenario::new(
                WorkloadSpec::from_benchmark(spec),
                ManagerSpec::Kind {
                    kind,
                    bloom_bits: None,
                },
                platform,
            );
            cells.push(RunCell::from_scenario(scenario).expect("grid scenarios are executable"));
        }
    }
    cells
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let cells = grid(args.scale, args.seed);
    println!(
        "bench_jobs: {} cells, jobs swept over {JOB_POINTS:?}",
        cells.len()
    );
    let mut baseline = None;
    let mut rows = Vec::new();
    for jobs in JOB_POINTS {
        let opts = RunnerOptions {
            jobs,
            cache_dir: None,
        };
        let (results, wall_ms) = timed_ms(|| run_grid(&cells, &opts));
        match &baseline {
            None => baseline = Some(results),
            Some(expected) => assert_eq!(
                &results, expected,
                "--jobs {jobs} changed grid results — worker count must be invisible"
            ),
        }
        println!("bench_jobs: --jobs {jobs}: {wall_ms} ms");
        rows.push(Json::obj([
            ("jobs", Json::UInt(jobs as u64)),
            ("wall_ms", Json::UInt(wall_ms)),
        ]));
    }

    let doc = Json::obj([
        ("bin", Json::Str("bench_jobs".to_string())),
        ("version", Json::UInt(1)),
        ("cells", Json::UInt(cells.len() as u64)),
        // Wall-clock context: on a 1-core host every jobs setting is
        // expected to be flat; the determinism assertion above is the
        // load-bearing part either way.
        (
            "host_parallelism",
            Json::UInt(runner::default_jobs() as u64),
        ),
        ("scale_bits", Json::UInt(args.scale.to_bits())),
        ("seed", Json::UInt(args.seed)),
        ("rows", Json::Arr(rows)),
    ]);
    if let Some(parent) = args.out.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(err) = std::fs::create_dir_all(parent) {
            eprintln!("error: could not create {}: {err}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(err) = std::fs::write(&args.out, doc.to_string() + "\n") {
        eprintln!("error: could not write {}: {err}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("bench_jobs: wrote {}", args.out.display());
    ExitCode::SUCCESS
}
