//! Capacity sweep: BFGTS-HW vs Backoff on capacity-limited signature
//! hardware (DESIGN.md §13).
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin bench_capacity -- [options]
//! ```
//!
//! Each row runs one cell on the small platform with bounded detection:
//! per-thread read/write Bloom signatures of the given width, a tracked-
//! address bound of the given capacity, and the software-fallback latch
//! beyond it. Conflict checks run on signature intersection, so aliases
//! become real aborts (`false_positive_conflict` events) and overflows
//! become `capacity_abort` events; every run is audited through I1–I10
//! before its numbers are recorded. A perfect-detection reference row
//! per manager anchors the sweep.
//!
//! The whole artifact is deterministic — no wall-clock fields — and
//! lands in `results/BENCH_capacity.json` by default.

use bfgts_bench::json::Json;
use bfgts_bench::runner::RunCell;
use bfgts_bench::ManagerKind;
use bfgts_scenario::Platform;
use bfgts_sim::TraceMode;
use bfgts_workloads::presets;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: bench_capacity [options]
options:
  --quick        divide the workload's transaction count by 4
  --out PATH     artifact path (default results/BENCH_capacity.json)
  --seed N       master RNG seed (default the experiment seed)
  -h, --help     show this help";

/// Swept signature widths, in bits per filter.
const BITS_POINTS: [u32; 3] = [64, 256, 1024];

/// Swept tracked-address bounds.
const CAPACITY_POINTS: [u32; 4] = [8, 16, 32, 64];

/// Hash functions per signature, fixed across the sweep.
const HASHES: u32 = 2;

/// The managers under comparison: the scheduler whose learning the
/// noisy oracle feeds, and the baseline that never learns.
const KINDS: [ManagerKind; 2] = [ManagerKind::BfgtsHw, ManagerKind::Backoff];

struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut out = Args {
        quick: false,
        out: PathBuf::from("results/BENCH_capacity.json"),
        seed: bfgts_scenario::EXPERIMENT_SEED,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => return Ok(None),
            "--quick" => out.quick = true,
            "--out" => {
                i += 1;
                out.out = PathBuf::from(argv.get(i).ok_or("--out needs a value")?);
            }
            "--seed" => {
                i += 1;
                let v = argv.get(i).ok_or("--seed needs a value")?;
                out.seed = v
                    .parse()
                    .map_err(|_| format!("--seed needs an integer, got '{v}'"))?;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    Ok(Some(out))
}

struct Row {
    kind: ManagerKind,
    detection: &'static str,
    bits: u32,
    capacity: u32,
    makespan: u64,
    commits: u64,
    aborts: u64,
    false_positives: u64,
    capacity_aborts: u64,
}

fn run_row(
    kind: ManagerKind,
    platform: Platform,
    detection: &'static str,
    bits: u32,
    capacity: u32,
    quick: bool,
) -> Row {
    let spec = presets::kmeans().scaled(if quick { 0.0625 } else { 0.25 });
    let report = RunCell::one(&spec, kind, platform).execute_report(TraceMode::Full);
    let summary = match report.audit() {
        Ok(summary) => summary,
        Err(violations) => {
            for v in &violations {
                eprintln!("bench_capacity: audit violation: {v}");
            }
            panic!(
                "bench_capacity: {} at {bits}b/cap{capacity} failed its audit",
                kind.label()
            );
        }
    };
    Row {
        kind,
        detection,
        bits,
        capacity,
        makespan: report.sim.makespan.as_u64(),
        commits: report.stats.commits(),
        aborts: report.stats.aborts(),
        false_positives: summary.false_positive_conflicts,
        capacity_aborts: summary.capacity_aborts,
    }
}

fn row_json(row: &Row) -> Json {
    Json::obj([
        ("manager", Json::Str(row.kind.label().to_string())),
        ("detection", Json::Str(row.detection.to_string())),
        ("bits", Json::UInt(u64::from(row.bits))),
        ("capacity", Json::UInt(u64::from(row.capacity))),
        ("makespan", Json::UInt(row.makespan)),
        ("commits", Json::UInt(row.commits)),
        ("aborts", Json::UInt(row.aborts)),
        ("false_positive_conflicts", Json::UInt(row.false_positives)),
        ("capacity_aborts", Json::UInt(row.capacity_aborts)),
    ])
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut platform = Platform::small();
    platform.seed = args.seed;

    let mut rows = Vec::new();
    for kind in KINDS {
        let perfect = run_row(kind, platform, "perfect", 0, 0, args.quick);
        println!(
            "bench_capacity: {:<10} perfect:          makespan {:>9} ({} commits, {} aborts)",
            kind.label(),
            perfect.makespan,
            perfect.commits,
            perfect.aborts
        );
        rows.push(perfect);
        for bits in BITS_POINTS {
            for capacity in CAPACITY_POINTS {
                let row = run_row(
                    kind,
                    platform.bounded(bits, HASHES, capacity),
                    "bounded",
                    bits,
                    capacity,
                    args.quick,
                );
                println!(
                    "bench_capacity: {:<10} {bits:>4}b cap {capacity:>3}: makespan {:>9} \
                     ({} commits, {} aborts, {} fp, {} cap)",
                    row.kind.label(),
                    row.makespan,
                    row.commits,
                    row.aborts,
                    row.false_positives,
                    row.capacity_aborts
                );
                rows.push(row);
            }
        }
    }

    // Sanity on the sweep's shape: the bounded axis has to actually
    // bite somewhere, or the artifact is a table of noise.
    assert!(
        rows.iter().any(|r| r.capacity_aborts > 0),
        "no swept cell ever overflowed — capacities are too generous to measure anything"
    );

    let doc = Json::obj([
        ("bin", Json::Str("bench_capacity".to_string())),
        ("version", Json::UInt(1)),
        ("workload", Json::Str("Kmeans".to_string())),
        ("hashes", Json::UInt(u64::from(HASHES))),
        ("seed", Json::UInt(args.seed)),
        ("quick", Json::Bool(args.quick)),
        ("rows", Json::Arr(rows.iter().map(row_json).collect())),
    ]);
    if let Some(parent) = args.out.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(err) = std::fs::create_dir_all(parent) {
            eprintln!("error: could not create {}: {err}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(err) = std::fs::write(&args.out, doc.to_string() + "\n") {
        eprintln!("error: could not write {}: {err}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("bench_capacity: wrote {}", args.out.display());
    ExitCode::SUCCESS
}
