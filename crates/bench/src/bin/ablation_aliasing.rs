//! Evaluates the paper's §4.2.1 *future work*: bounding the confidence
//! table with sTxID aliasing so prediction state stays fixed-size for
//! programs with very many static transactions. Sweeps the slot count
//! and reports the performance cost of the aliasing collisions.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin ablation_aliasing [--quick]
//! ```

use bfgts_bench::{parse_common_args, run_custom, serial_baseline, speedup, ManagerKind};
use bfgts_core::{BfgtsCm, BfgtsConfig};
use bfgts_workloads::presets;

const SLOTS: [u32; 3] = [1, 2, 4];

fn main() {
    let (scale, platform) = parse_common_args();
    println!(
        "Aliasing extension (paper §4.2.1 future work): BFGTS-HW speedup with a\n\
         bounded, sTxID-hashed confidence table vs the exact table\n"
    );
    print!("{:<10} {:>9}", "Benchmark", "exact");
    for s in SLOTS {
        print!(" {:>9}", format!("{s} slot(s)"));
    }
    println!();
    for spec in presets::all() {
        let spec = spec.scaled(scale);
        let serial = serial_baseline(&spec, platform.seed);
        let bits = ManagerKind::BfgtsHw.optimal_bloom_bits(spec.name);
        let exact = {
            let cm = BfgtsCm::new(BfgtsConfig::hw().bloom_bits(bits));
            speedup(&run_custom(&spec, platform, Box::new(cm)), serial)
        };
        print!("{:<10} {:>9.2}", spec.name, exact);
        for slots in SLOTS {
            let cm = BfgtsCm::new(
                BfgtsConfig::hw()
                    .bloom_bits(bits)
                    .with_alias_slots(slots),
            );
            let aliased = speedup(&run_custom(&spec, platform, Box::new(cm)), serial);
            print!(" {:>9.2}", aliased);
        }
        println!();
    }
    println!(
        "\nWith few slots, unrelated transactions share conflict reputations\n\
         (a single slot makes every transaction pair look alike); the exact\n\
         table is the paper's evaluated configuration."
    );
}
