//! Evaluates the paper's §4.2.1 *future work*: bounding the confidence
//! table with sTxID aliasing so prediction state stays fixed-size for
//! programs with very many static transactions. Sweeps the slot count
//! and reports the performance cost of the aliasing collisions.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin ablation_aliasing [--quick] [--jobs N]
//! ```

use bfgts_bench::runner::{run_grid_with_args, RunCell};
use bfgts_bench::{parse_common_args, BfgtsTunables, ManagerKind, ManagerSpec};
use bfgts_core::BfgtsVariant;
use bfgts_workloads::presets;

const SLOTS: [u32; 3] = [1, 2, 4];

fn main() {
    let args = parse_common_args();
    let specs: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(args.scale))
        .collect();

    // Per benchmark: serial baseline, the exact (unaliased) table, one
    // cell per bounded slot count.
    let mut cells = Vec::new();
    for spec in &specs {
        cells.push(RunCell::serial(spec, args.platform));
        cells.push(RunCell::one(spec, ManagerKind::BfgtsHw, args.platform));
        let bits = ManagerKind::BfgtsHw.optimal_bloom_bits(spec.name);
        for slots in SLOTS {
            cells.push(RunCell::with_manager(
                spec,
                args.platform,
                ManagerSpec::Bfgts(
                    BfgtsTunables::new(BfgtsVariant::Hw)
                        .bloom_bits(bits)
                        .with_alias_slots(slots),
                ),
            ));
        }
    }
    let results = run_grid_with_args(&cells, &args);
    let stride = 2 + SLOTS.len();

    println!(
        "Aliasing extension (paper §4.2.1 future work): BFGTS-HW speedup with a\n\
         bounded, sTxID-hashed confidence table vs the exact table\n"
    );
    print!("{:<10} {:>9}", "Benchmark", "exact");
    for s in SLOTS {
        print!(" {:>9}", format!("{s} slot(s)"));
    }
    println!();
    for (b, spec) in specs.iter().enumerate() {
        let serial = results[b * stride].makespan;
        let exact = results[b * stride + 1].speedup_over(serial);
        print!("{:<10} {:>9.2}", spec.name, exact);
        for k in 0..SLOTS.len() {
            let aliased = results[b * stride + 2 + k].speedup_over(serial);
            print!(" {:>9.2}", aliased);
        }
        println!();
    }
    println!(
        "\nWith few slots, unrelated transactions share conflict reputations\n\
         (a single slot makes every transaction pair look alike); the exact\n\
         table is the paper's evaluated configuration."
    );
}
