//! Regenerates **Figure 4**: (a) speedup over one core for every
//! contention manager on every benchmark plus the average, and
//! (b) percent improvement over PTS.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin fig4_speedup [--quick]
//! ```

use bfgts_bench::{
    arithmetic_mean, parse_common_args, percent_improvement, run_one, serial_baseline,
    speedup, ManagerKind,
};
use bfgts_workloads::presets;

fn main() {
    let (scale, platform) = parse_common_args();
    let specs: Vec<_> = presets::all().into_iter().map(|s| s.scaled(scale)).collect();

    // speedups[m][b]
    let mut speedups = vec![vec![0.0f64; specs.len()]; ManagerKind::ALL.len()];
    for (b, spec) in specs.iter().enumerate() {
        let serial = serial_baseline(spec, platform.seed);
        for (m, kind) in ManagerKind::ALL.into_iter().enumerate() {
            let report = run_one(spec, kind, platform);
            speedups[m][b] = speedup(&report, serial);
        }
    }

    println!(
        "Figure 4(a): speedup over one core ({} CPUs / {} threads)\n",
        platform.cpus, platform.threads
    );
    print!("{:<17}", "Manager");
    for spec in &specs {
        print!(" {:>9}", spec.name);
    }
    println!(" {:>9}", "AVG");
    for (m, kind) in ManagerKind::ALL.into_iter().enumerate() {
        print!("{:<17}", kind.label());
        for b in 0..specs.len() {
            print!(" {:>9.2}", speedups[m][b]);
        }
        println!(" {:>9.2}", arithmetic_mean(&speedups[m]));
    }

    let pts_index = ManagerKind::ALL
        .iter()
        .position(|k| *k == ManagerKind::Pts)
        .expect("PTS is in the roster");
    println!("\nFigure 4(b): percent improvement over PTS\n");
    print!("{:<17}", "Manager");
    for spec in &specs {
        print!(" {:>9}", spec.name);
    }
    println!(" {:>9}", "AVG");
    for (m, kind) in ManagerKind::ALL.into_iter().enumerate() {
        if m == pts_index {
            continue;
        }
        print!("{:<17}", kind.label());
        let mut imps = Vec::new();
        for b in 0..specs.len() {
            let imp = percent_improvement(speedups[m][b], speedups[pts_index][b]);
            imps.push(imp);
            print!(" {:>8.0}%", imp);
        }
        println!(" {:>8.0}%", arithmetic_mean(&imps));
    }

    // Headline comparisons the paper's abstract quotes: the mean of
    // per-benchmark improvements (the AVG bar of Figure 4(b)), plus the
    // best single-benchmark ratio ("up to ...x on high contention").
    let row = |k: ManagerKind| {
        let m = ManagerKind::ALL.iter().position(|x| *x == k).unwrap();
        &speedups[m]
    };
    let vs = |a: ManagerKind, b: ManagerKind| {
        let (ra, rb) = (row(a), row(b));
        let imps: Vec<f64> = ra
            .iter()
            .zip(rb)
            .map(|(x, y)| percent_improvement(*x, *y))
            .collect();
        let max = imps.iter().cloned().fold(f64::MIN, f64::max);
        (arithmetic_mean(&imps), max)
    };
    let (hw_pts, hw_pts_max) = vs(ManagerKind::BfgtsHw, ManagerKind::Pts);
    let (hw_ats, hw_ats_max) = vs(ManagerKind::BfgtsHw, ManagerKind::Ats);
    let (hyb_pts, _) = vs(ManagerKind::BfgtsHwBackoff, ManagerKind::Pts);
    let (hyb_ats, _) = vs(ManagerKind::BfgtsHwBackoff, ManagerKind::Ats);
    println!(
        "\nheadline (paper): BFGTS-HW vs PTS {hw_pts:+.0}% avg, up to {:.1}x (+25%, 1.7x) | \
         vs ATS {hw_ats:+.0}% avg, up to {:.1}x (+35%, 4.6x)",
        1.0 + hw_pts_max / 100.0,
        1.0 + hw_ats_max / 100.0,
    );
    println!(
        "                  BFGTS-HW/Backoff vs PTS {hyb_pts:+.0}% (paper +30%), \
         vs ATS {hyb_ats:+.0}% (paper +40%)"
    );
}
