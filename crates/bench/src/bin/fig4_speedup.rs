//! Regenerates **Figure 4**: (a) speedup over one core for every
//! contention manager on every benchmark plus the average, and
//! (b) percent improvement over PTS.
//!
//! ```text
//! cargo run -p bfgts-bench --release --bin fig4_speedup [--quick] [--jobs N]
//! ```

use bfgts_bench::runner::speedup_grid;
use bfgts_bench::{arithmetic_mean, parse_common_args, percent_improvement, ManagerKind};
use bfgts_workloads::presets;

fn main() {
    let args = parse_common_args();
    let specs: Vec<_> = presets::all()
        .into_iter()
        .map(|s| s.scaled(args.scale))
        .collect();

    // One grid: every serial baseline plus every (manager, benchmark)
    // cell, executed across the worker pool. speedups[m][b].
    let (serials, per_manager) = speedup_grid(&specs, &ManagerKind::ALL, &args);
    let speedups: Vec<Vec<f64>> = per_manager
        .iter()
        .map(|row| {
            row.iter()
                .zip(&serials)
                .map(|(cell, &serial)| cell.speedup_over(serial))
                .collect()
        })
        .collect();

    println!(
        "Figure 4(a): speedup over one core ({} CPUs / {} threads)\n",
        args.platform.cpus, args.platform.threads
    );
    print!("{:<17}", "Manager");
    for spec in &specs {
        print!(" {:>9}", spec.name);
    }
    println!(" {:>9}", "AVG");
    for (m, kind) in ManagerKind::ALL.into_iter().enumerate() {
        print!("{:<17}", kind.label());
        for s in &speedups[m] {
            print!(" {s:>9.2}");
        }
        println!(" {:>9.2}", arithmetic_mean(&speedups[m]));
    }

    let pts_index = ManagerKind::ALL
        .iter()
        .position(|k| *k == ManagerKind::Pts)
        .expect("PTS is in the roster");
    println!("\nFigure 4(b): percent improvement over PTS\n");
    print!("{:<17}", "Manager");
    for spec in &specs {
        print!(" {:>9}", spec.name);
    }
    println!(" {:>9}", "AVG");
    for (m, kind) in ManagerKind::ALL.into_iter().enumerate() {
        if m == pts_index {
            continue;
        }
        print!("{:<17}", kind.label());
        let mut imps = Vec::new();
        for (s, pts) in speedups[m].iter().zip(&speedups[pts_index]) {
            let imp = percent_improvement(*s, *pts);
            imps.push(imp);
            print!(" {imp:>8.0}%");
        }
        println!(" {:>8.0}%", arithmetic_mean(&imps));
    }

    // Headline comparisons the paper's abstract quotes: the mean of
    // per-benchmark improvements (the AVG bar of Figure 4(b)), plus the
    // best single-benchmark ratio ("up to ...x on high contention").
    let row = |k: ManagerKind| {
        let m = ManagerKind::ALL.iter().position(|x| *x == k).unwrap();
        &speedups[m]
    };
    let vs = |a: ManagerKind, b: ManagerKind| {
        let (ra, rb) = (row(a), row(b));
        let imps: Vec<f64> = ra
            .iter()
            .zip(rb)
            .map(|(x, y)| percent_improvement(*x, *y))
            .collect();
        let max = imps.iter().cloned().fold(f64::MIN, f64::max);
        (arithmetic_mean(&imps), max)
    };
    let (hw_pts, hw_pts_max) = vs(ManagerKind::BfgtsHw, ManagerKind::Pts);
    let (hw_ats, hw_ats_max) = vs(ManagerKind::BfgtsHw, ManagerKind::Ats);
    let (hyb_pts, _) = vs(ManagerKind::BfgtsHwBackoff, ManagerKind::Pts);
    let (hyb_ats, _) = vs(ManagerKind::BfgtsHwBackoff, ManagerKind::Ats);
    println!(
        "\nheadline (paper): BFGTS-HW vs PTS {hw_pts:+.0}% avg, up to {:.1}x (+25%, 1.7x) | \
         vs ATS {hw_ats:+.0}% avg, up to {:.1}x (+35%, 4.6x)",
        1.0 + hw_pts_max / 100.0,
        1.0 + hw_ats_max / 100.0,
    );
    println!(
        "                  BFGTS-HW/Backoff vs PTS {hyb_pts:+.0}% (paper +30%), \
         vs ATS {hyb_ats:+.0}% (paper +40%)"
    );
}
