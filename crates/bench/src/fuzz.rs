//! Seeded fault-injection fuzz campaigns (DESIGN.md §9).
//!
//! A campaign runs a grid of cells, each fully derived from a single
//! `u64` seed: an adversarial workload, a BFGTS flavour and a randomized
//! [`FaultPlan`]. Every cell is executed through
//! [`bfgts_faultsim::run_cell`], which audits the accounting invariants
//! I1–I7 and checks the graceful-degradation bound against the Backoff
//! baseline. Violating cells are auto-minimized (greedy fault removal,
//! then magnitude halving) and written as replayable repro JSON that
//! `bfgts_fuzz --repro PATH` re-executes byte-identically, verified by a
//! fingerprint over the run's JSONL event trace.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use bfgts_core::BfgtsConfig;
pub use bfgts_faultsim::run_cell;
use bfgts_faultsim::{bfgts_run, minimize, CellConfig, CellReport, Fault, FaultPlan};
use bfgts_testkit::Gen;
use bfgts_workloads::AdversarialSpec;

use crate::json::Json;
use crate::runner::fnv1a;
use crate::trace_export;

/// Format version of a repro file; bump on any schema change.
pub const REPRO_VERSION: u64 = 1;

/// BFGTS flavours the campaign rotates through, as stable repro keys.
pub const BFGTS_KEYS: [&str; 4] = ["sw", "hw", "hw_backoff", "no_overhead"];

fn bfgts_config(key: &str) -> Option<BfgtsConfig> {
    match key {
        "sw" => Some(BfgtsConfig::sw()),
        "hw" => Some(BfgtsConfig::hw()),
        "hw_backoff" => Some(BfgtsConfig::hw_backoff()),
        "no_overhead" => Some(BfgtsConfig::no_overhead()),
        _ => None,
    }
}

/// One campaign cell, fully derived from its seed.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// The seed everything below is derived from.
    pub seed: u64,
    /// Platform, bound and BFGTS flavour for the cell.
    pub cfg: CellConfig,
    /// Stable key of the BFGTS flavour (see [`BFGTS_KEYS`]).
    pub bfgts_key: &'static str,
    /// The adversarial workload under test.
    pub workload: AdversarialSpec,
    /// The randomized fault plan.
    pub plan: FaultPlan,
}

/// Derives campaign cell `seed`: workload, BFGTS flavour and fault plan
/// all come from the seed through independent splitmix64 draws, so a
/// seed range covers the (workload × flavour × plan) space without any
/// cell depending on which others ran.
pub fn campaign_cell(seed: u64) -> CampaignCell {
    let mut g = Gen::new(seed ^ 0xF022_CA3B);
    let workloads = AdversarialSpec::all();
    let workload = g.choose(&workloads).clone();
    let bfgts_key = *g.choose(&BFGTS_KEYS);
    let mut cfg = CellConfig::quick(seed);
    cfg.bfgts = bfgts_config(bfgts_key).expect("BFGTS_KEYS entries are all mapped");
    CampaignCell {
        seed,
        cfg,
        bfgts_key,
        workload,
        plan: FaultPlan::randomized(seed),
    }
}

/// The outcome of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The cell's seed.
    pub seed: u64,
    /// Workload generator name.
    pub workload: &'static str,
    /// BFGTS flavour key.
    pub bfgts: &'static str,
    /// The fault plan that was injected.
    pub plan: FaultPlan,
    /// Scores, audit counts and violations.
    pub report: CellReport,
}

/// Runs one campaign cell per seed, `jobs`-wide. Each cell is an
/// independent deterministic simulation and results are reassembled in
/// seed order, so the returned vector is identical for every `jobs`
/// value — the same contract as `runner::run_grid`.
pub fn run_campaign(seeds: &[u64], jobs: usize) -> Vec<CampaignResult> {
    let slots: Vec<OnceLock<CampaignResult>> = (0..seeds.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.max(1).min(seeds.len().max(1));
    let run_one = |i: usize| {
        let cell = campaign_cell(seeds[i]);
        let report = run_cell(&cell.cfg, &cell.workload, &cell.plan);
        slots[i]
            .set(CampaignResult {
                seed: cell.seed,
                workload: cell.workload.name,
                bfgts: cell.bfgts_key,
                plan: cell.plan,
                report,
            })
            .expect("each slot is filled exactly once");
    };
    if workers <= 1 {
        for i in 0..seeds.len() {
            run_one(i);
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= seeds.len() {
                        break;
                    }
                    run_one(i);
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot was filled"))
        .collect()
}

/// Minimizes a violating plan by re-running the cell as the oracle:
/// a candidate plan "still fails" iff the re-run produces any violation.
pub fn minimize_failure(
    cfg: &CellConfig,
    workload: &AdversarialSpec,
    plan: &FaultPlan,
) -> FaultPlan {
    minimize(plan, |candidate| {
        !run_cell(cfg, workload, candidate).passed()
    })
}

/// The JSONL event trace of the cell's BFGTS run — the byte string a
/// repro fingerprint commits to.
pub fn trace_jsonl(cfg: &CellConfig, workload: &AdversarialSpec, plan: &FaultPlan) -> String {
    let report = bfgts_run(cfg, workload, plan);
    let inputs = report.sim.audit_inputs();
    trace_export::to_jsonl(&report.sim.trace, &inputs)
}

/// FNV-1a fingerprint of [`trace_jsonl`]: equal fingerprints mean the
/// replay produced a byte-identical event trace.
pub fn fingerprint(cfg: &CellConfig, workload: &AdversarialSpec, plan: &FaultPlan) -> u64 {
    fnv1a(&trace_jsonl(cfg, workload, plan), 0)
}

/// A self-contained, replayable record of a violating cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Campaign seed the cell came from (or a label seed for controls).
    pub seed: u64,
    /// Workload generator name (resolved via [`AdversarialSpec::all`]).
    pub workload: String,
    /// BFGTS flavour key (see [`BFGTS_KEYS`]).
    pub bfgts: String,
    /// Simulated CPUs.
    pub num_cpus: u64,
    /// Worker threads.
    pub num_threads: u64,
    /// Engine/workload seed of the run.
    pub run_seed: u64,
    /// Workload scale factor as an `f64` bit pattern (exact round trip).
    pub scale_bits: u64,
    /// Degradation floor in percent.
    pub min_fraction_pct: u64,
    /// The (minimized) fault plan.
    pub plan: FaultPlan,
    /// Fingerprint of the BFGTS trace under this plan.
    pub fingerprint: u64,
    /// The violations the recorded run produced.
    pub violations: Vec<String>,
}

impl Repro {
    /// Reconstructs the cell configuration this repro describes.
    pub fn cell_config(&self) -> Result<CellConfig, String> {
        let bfgts = bfgts_config(&self.bfgts)
            .ok_or_else(|| format!("unknown bfgts flavour '{}'", self.bfgts))?;
        Ok(CellConfig {
            num_cpus: self.num_cpus as usize,
            num_threads: self.num_threads as usize,
            run_seed: self.run_seed,
            scale: f64::from_bits(self.scale_bits),
            min_fraction_pct: self.min_fraction_pct,
            bfgts,
        })
    }

    /// Resolves the workload generator by name.
    pub fn workload_spec(&self) -> Result<AdversarialSpec, String> {
        AdversarialSpec::all()
            .into_iter()
            .find(|w| w.name == self.workload)
            .ok_or_else(|| format!("unknown workload '{}'", self.workload))
    }

    /// Serialises to the canonical repro JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::UInt(REPRO_VERSION)),
            ("seed", Json::UInt(self.seed)),
            ("workload", Json::Str(self.workload.clone())),
            ("bfgts", Json::Str(self.bfgts.clone())),
            ("num_cpus", Json::UInt(self.num_cpus)),
            ("num_threads", Json::UInt(self.num_threads)),
            ("run_seed", Json::UInt(self.run_seed)),
            ("scale_bits", Json::UInt(self.scale_bits)),
            ("min_fraction_pct", Json::UInt(self.min_fraction_pct)),
            ("plan", plan_to_json(&self.plan)),
            ("fingerprint", Json::UInt(self.fingerprint)),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a repro from its JSON document.
    pub fn from_json(value: &Json) -> Result<Repro, String> {
        let field = |key: &str| value.get(key).ok_or_else(|| format!("missing '{key}'"));
        let uint = |key: &str| {
            field(key)?
                .as_u64()
                .ok_or_else(|| format!("'{key}' must be an unsigned integer"))
        };
        let string = |key: &str| {
            Ok::<_, String>(
                field(key)?
                    .as_str()
                    .ok_or_else(|| format!("'{key}' must be a string"))?
                    .to_string(),
            )
        };
        let version = uint("version")?;
        if version != REPRO_VERSION {
            return Err(format!(
                "repro version {version} unsupported (expected {REPRO_VERSION})"
            ));
        }
        let violations = field("violations")?
            .as_arr()
            .ok_or("'violations' must be an array")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or("violations must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Repro {
            seed: uint("seed")?,
            workload: string("workload")?,
            bfgts: string("bfgts")?,
            num_cpus: uint("num_cpus")?,
            num_threads: uint("num_threads")?,
            run_seed: uint("run_seed")?,
            scale_bits: uint("scale_bits")?,
            min_fraction_pct: uint("min_fraction_pct")?,
            plan: plan_from_json(field("plan")?)?,
            fingerprint: uint("fingerprint")?,
            violations,
        })
    }
}

fn fault_to_json(fault: &Fault) -> Json {
    match *fault {
        Fault::CostPerturb { max_percent } => Json::obj([
            ("kind", Json::Str("cost_perturb".into())),
            ("max_percent", Json::UInt(u64::from(max_percent))),
        ]),
        Fault::BloomCorrupt { rate_pct, bits } => Json::obj([
            ("kind", Json::Str("bloom_corrupt".into())),
            ("rate_pct", Json::UInt(u64::from(rate_pct))),
            ("bits", Json::UInt(u64::from(bits))),
        ]),
        Fault::ConfPoison { period, saturate } => Json::obj([
            ("kind", Json::Str("conf_poison".into())),
            ("period", Json::UInt(period)),
            ("saturate", Json::Bool(saturate)),
        ]),
    }
}

fn fault_from_json(value: &Json) -> Result<Fault, String> {
    let uint = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("fault field '{key}' must be an unsigned integer"))
    };
    let narrow = |key: &str| {
        u32::try_from(uint(key)?).map_err(|_| format!("fault field '{key}' exceeds u32"))
    };
    match value.get("kind").and_then(Json::as_str) {
        Some("cost_perturb") => Ok(Fault::CostPerturb {
            max_percent: narrow("max_percent")?,
        }),
        Some("bloom_corrupt") => Ok(Fault::BloomCorrupt {
            rate_pct: narrow("rate_pct")?,
            bits: narrow("bits")?,
        }),
        Some("conf_poison") => Ok(Fault::ConfPoison {
            period: uint("period")?,
            saturate: matches!(value.get("saturate"), Some(Json::Bool(true))),
        }),
        Some(other) => Err(format!("unknown fault kind '{other}'")),
        None => Err("fault is missing a 'kind' string".into()),
    }
}

fn plan_to_json(plan: &FaultPlan) -> Json {
    Json::obj([
        ("seed", Json::UInt(plan.seed)),
        (
            "faults",
            Json::Arr(plan.faults.iter().map(fault_to_json).collect()),
        ),
    ])
}

fn plan_from_json(value: &Json) -> Result<FaultPlan, String> {
    let seed = value
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("plan is missing a 'seed' integer")?;
    let faults = value
        .get("faults")
        .and_then(Json::as_arr)
        .ok_or("plan is missing a 'faults' array")?
        .iter()
        .map(fault_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FaultPlan { seed, faults })
}

/// Builds the repro record for a violating cell: the fingerprint commits
/// to the trace of exactly the (usually minimized) plan being recorded.
pub fn make_repro(
    seed: u64,
    cfg: &CellConfig,
    bfgts_key: &str,
    workload: &AdversarialSpec,
    plan: &FaultPlan,
    violations: Vec<String>,
) -> Repro {
    Repro {
        seed,
        workload: workload.name.to_string(),
        bfgts: bfgts_key.to_string(),
        num_cpus: cfg.num_cpus as u64,
        num_threads: cfg.num_threads as u64,
        run_seed: cfg.run_seed,
        scale_bits: cfg.scale.to_bits(),
        min_fraction_pct: cfg.min_fraction_pct,
        plan: plan.clone(),
        fingerprint: fingerprint(cfg, workload, plan),
        violations,
    }
}

/// Writes `repro` as `<seed>.json` under `dir`, creating it if needed.
pub fn write_repro(dir: &Path, repro: &Repro) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", repro.seed));
    std::fs::write(&path, repro.to_json().to_string() + "\n")?;
    Ok(path)
}

/// Loads a repro file written by [`write_repro`].
pub fn load_repro(path: &Path) -> Result<Repro, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Repro::from_json(&Json::parse(&text)?)
}

/// Re-executes a repro and checks both halves of its contract: the run
/// must still violate, and its event trace must be byte-identical to the
/// recorded one (equal fingerprints). Returns the replayed report.
pub fn replay(repro: &Repro) -> Result<CellReport, String> {
    let cfg = repro.cell_config()?;
    let workload = repro.workload_spec()?;
    let fp = fingerprint(&cfg, &workload, &repro.plan);
    if fp != repro.fingerprint {
        return Err(format!(
            "trace fingerprint mismatch: recorded {:016x}, replay {fp:016x}",
            repro.fingerprint
        ));
    }
    let report = run_cell(&cfg, &workload, &repro.plan);
    if report.passed() {
        return Err("replay no longer violates (fixed, or a stale repro)".into());
    }
    Ok(report)
}

/// The seeded negative control: a confidence-poisoned cell judged
/// against an impossible degradation floor (BFGTS must beat Backoff
/// 100×), guaranteed to violate. CI runs this to prove the campaign
/// harness actually catches failures — the fuzz-lane analogue of
/// detlint's seeded-violation step.
pub fn violating_control() -> (CellConfig, AdversarialSpec, FaultPlan) {
    let mut cfg = CellConfig::quick(0xC0_47_01);
    cfg.min_fraction_pct = 10_000;
    let plan = FaultPlan::new(0xC047).fault(Fault::ConfPoison {
        period: 1,
        saturate: true,
    });
    (cfg, AdversarialSpec::hotspot_skew(), plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_identical_across_job_counts() {
        let seeds: Vec<u64> = (0..6).collect();
        let serial = run_campaign(&seeds, 1);
        let parallel = run_campaign(&seeds, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 6);
        for (seed, result) in seeds.iter().zip(&serial) {
            assert_eq!(*seed, result.seed);
        }
    }

    #[test]
    fn trace_fingerprint_is_stable_and_plan_sensitive() {
        let cell = campaign_cell(2);
        let a = trace_jsonl(&cell.cfg, &cell.workload, &cell.plan);
        let b = trace_jsonl(&cell.cfg, &cell.workload, &cell.plan);
        assert_eq!(a, b, "same cell, byte-identical trace");
        let clean = fingerprint(&cell.cfg, &cell.workload, &FaultPlan::new(cell.plan.seed));
        assert_ne!(
            fnv1a(&a, 0),
            clean,
            "a non-empty plan must leave a mark on the trace"
        );
    }

    #[test]
    fn repro_json_round_trips() {
        let (cfg, workload, plan) = violating_control();
        let repro = Repro {
            seed: 42,
            workload: workload.name.to_string(),
            bfgts: "hw".to_string(),
            num_cpus: cfg.num_cpus as u64,
            num_threads: cfg.num_threads as u64,
            run_seed: cfg.run_seed,
            scale_bits: cfg.scale.to_bits(),
            min_fraction_pct: cfg.min_fraction_pct,
            plan: plan
                .fault(Fault::CostPerturb { max_percent: 9 })
                .fault(Fault::BloomCorrupt {
                    rate_pct: 33,
                    bits: 16,
                }),
            fingerprint: 0xDEAD_BEEF,
            violations: vec!["degradation bound broken: …".to_string()],
        };
        let text = repro.to_json().to_string();
        let parsed = Repro::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, repro);
        assert!(Repro::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn seeded_control_violates_minimizes_and_replays() {
        let (cfg, workload, plan) = violating_control();
        let report = run_cell(&cfg, &workload, &plan);
        assert!(!report.passed(), "the control must violate");
        // The bound is impossible even without faults, so minimization
        // strips the plan down to nothing — the true root cause.
        let minimized = minimize_failure(&cfg, &workload, &plan);
        assert!(minimized.is_empty());
        assert_eq!(minimized, minimize_failure(&cfg, &workload, &plan));
        let scored = run_cell(&cfg, &workload, &minimized);
        let repro = make_repro(7, &cfg, "hw", &workload, &minimized, scored.violations);
        let replayed = replay(&repro).expect("the repro must reproduce");
        assert!(!replayed.passed());
    }

    #[test]
    fn repro_files_round_trip_on_disk() {
        let (cfg, workload, plan) = violating_control();
        let repro = make_repro(11, &cfg, "hw", &workload, &plan, vec!["x".into()]);
        let dir = std::env::temp_dir().join(format!("bfgts-fuzz-{}", std::process::id()));
        let path = write_repro(&dir, &repro).unwrap();
        assert!(path.ends_with("11.json"));
        let loaded = load_repro(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(loaded, repro);
    }

    #[test]
    fn stale_fingerprints_and_unknown_names_are_rejected() {
        let (cfg, workload, plan) = violating_control();
        let scored = run_cell(&cfg, &workload, &plan);
        let mut repro = make_repro(3, &cfg, "hw", &workload, &plan, scored.violations);
        repro.fingerprint ^= 1;
        let err = replay(&repro).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
        repro.bfgts = "turbo".into();
        assert!(repro.cell_config().is_err());
        repro.workload = "adv-unknown".into();
        assert!(repro.workload_spec().is_err());
    }
}
