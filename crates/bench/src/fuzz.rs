//! Seeded fault-injection fuzz campaigns (DESIGN.md §9).
//!
//! A campaign runs a grid of cells, each fully derived from a single
//! `u64` seed: an adversarial workload, a BFGTS flavour and a randomized
//! [`FaultPlan`]. Every cell is executed through
//! [`bfgts_faultsim::run_cell`], which audits the accounting invariants
//! I1–I7 and checks the graceful-degradation bound against the Backoff
//! baseline. Violating cells are auto-minimized (greedy fault removal,
//! then magnitude halving) and written as replayable repro JSON that
//! `bfgts_fuzz --repro PATH` re-executes byte-identically, verified by a
//! fingerprint over the run's JSONL event trace.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use bfgts_core::BfgtsConfig;
pub use bfgts_faultsim::run_cell;
use bfgts_faultsim::{minimize, CellConfig, CellReport, Fault, FaultPlan};
use bfgts_scenario::{
    fnv1a, variant_key, BfgtsTunables, Detection, ManagerSpec, Platform, ResolvedWorkload,
    Scenario, WorkloadSpec,
};
use bfgts_sim::TraceMode;
use bfgts_testkit::Gen;
use bfgts_workloads::AdversarialSpec;

use crate::json::Json;
use crate::runner::RunCell;
use crate::trace_export;

/// Format version of a repro file; bump on any schema change. Version 2
/// replaced the flat field list with an embedded [`Scenario`]
/// (DESIGN.md §10): a repro now names its run in exactly the form
/// `bfgts_run` executes and the trace header records.
pub const REPRO_VERSION: u64 = 2;

/// BFGTS flavours the campaign rotates through, as stable repro keys.
pub const BFGTS_KEYS: [&str; 4] = ["sw", "hw", "hw_backoff", "no_overhead"];

fn bfgts_config(key: &str) -> Option<BfgtsConfig> {
    match key {
        "sw" => Some(BfgtsConfig::sw()),
        "hw" => Some(BfgtsConfig::hw()),
        "hw_backoff" => Some(BfgtsConfig::hw_backoff()),
        "no_overhead" => Some(BfgtsConfig::no_overhead()),
        _ => None,
    }
}

/// One campaign cell, fully derived from its seed.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// The seed everything below is derived from.
    pub seed: u64,
    /// Platform, bound and BFGTS flavour for the cell.
    pub cfg: CellConfig,
    /// Stable key of the BFGTS flavour (see [`BFGTS_KEYS`]).
    pub bfgts_key: &'static str,
    /// The adversarial workload under test.
    pub workload: AdversarialSpec,
    /// The randomized fault plan.
    pub plan: FaultPlan,
}

/// Derives campaign cell `seed`: workload, BFGTS flavour and fault plan
/// all come from the seed through independent splitmix64 draws, so a
/// seed range covers the (workload × flavour × plan) space without any
/// cell depending on which others ran.
pub fn campaign_cell(seed: u64) -> CampaignCell {
    let mut g = Gen::new(seed ^ 0xF022_CA3B);
    let workloads = AdversarialSpec::all();
    let workload = g.choose(&workloads).clone();
    let bfgts_key = *g.choose(&BFGTS_KEYS);
    let mut cfg = CellConfig::quick(seed);
    cfg.bfgts = bfgts_config(bfgts_key).expect("BFGTS_KEYS entries are all mapped");
    // Half the cells run on capacity-limited signature hardware, so the
    // campaign hammers the bounded-detection path (false-positive and
    // capacity aborts, fallback latch, I10) under the same fault plans
    // as perfect detection. Small capacities are deliberate: quick-cell
    // transactions must actually overflow them.
    if g.bool() {
        cfg.detection = Detection::BoundedSig {
            bits: 64 * g.u32_in(1, 9),
            hashes: g.u32_in(1, 5),
            capacity: g.u32_in(4, 65),
        };
    }
    CampaignCell {
        seed,
        cfg,
        bfgts_key,
        workload,
        plan: FaultPlan::randomized(seed),
    }
}

/// The outcome of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The cell's seed.
    pub seed: u64,
    /// Workload generator name.
    pub workload: &'static str,
    /// BFGTS flavour key.
    pub bfgts: &'static str,
    /// The fault plan that was injected.
    pub plan: FaultPlan,
    /// Scores, audit counts and violations.
    pub report: CellReport,
}

/// Runs one campaign cell per seed, `jobs`-wide. Each cell is an
/// independent deterministic simulation and results are reassembled in
/// seed order, so the returned vector is identical for every `jobs`
/// value — the same contract as `runner::run_grid`.
pub fn run_campaign(seeds: &[u64], jobs: usize) -> Vec<CampaignResult> {
    let slots: Vec<OnceLock<CampaignResult>> = (0..seeds.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.max(1).min(seeds.len().max(1));
    let run_one = |i: usize| {
        let cell = campaign_cell(seeds[i]);
        let report = run_cell(&cell.cfg, &cell.workload, &cell.plan);
        slots[i]
            .set(CampaignResult {
                seed: cell.seed,
                workload: cell.workload.name,
                bfgts: cell.bfgts_key,
                plan: cell.plan,
                report,
            })
            .expect("each slot is filled exactly once");
    };
    if workers <= 1 {
        for i in 0..seeds.len() {
            run_one(i);
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= seeds.len() {
                        break;
                    }
                    run_one(i);
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot was filled"))
        .collect()
}

/// Minimizes a violating plan by re-running the cell as the oracle:
/// a candidate plan "still fails" iff the re-run produces any violation.
pub fn minimize_failure(
    cfg: &CellConfig,
    workload: &AdversarialSpec,
    plan: &FaultPlan,
) -> FaultPlan {
    minimize(plan, |candidate| {
        !run_cell(cfg, workload, candidate).passed()
    })
}

/// Lifts a fuzz cell into the [`Scenario`] that names it: the platform
/// and BFGTS tunables come straight from the [`CellConfig`], the
/// workload is recorded at its already-scaled transaction count, and the
/// fault plan rides along. The result is canonical, so its `id()` is the
/// cell's cache key and its JSON is what the repro file embeds.
pub fn scenario_for(cfg: &CellConfig, workload: &AdversarialSpec, plan: &FaultPlan) -> Scenario {
    let scaled = workload.clone().scaled(cfg.scale);
    let mut scenario = Scenario::new(
        WorkloadSpec::from_adversarial(&scaled),
        ManagerSpec::Bfgts(BfgtsTunables::from_config(&cfg.bfgts)),
        Platform {
            cpus: cfg.num_cpus,
            threads: cfg.num_threads,
            seed: cfg.run_seed,
            shards: 1,
            detection: cfg.detection,
        },
    );
    scenario.faults = Some(plan.clone());
    scenario.trace = TraceMode::Full;
    scenario.canonical()
}

/// The JSONL event trace of the scenario's run — the byte string a repro
/// fingerprint commits to. The scenario itself is embedded in the trace
/// header, so the fingerprint also covers the run descriptor.
pub fn trace_jsonl(scenario: &Scenario) -> String {
    let cell =
        RunCell::from_scenario(scenario.clone()).expect("fuzz scenarios are always executable");
    let report = cell.execute_report(TraceMode::Full);
    let inputs = report.audit_inputs();
    trace_export::to_jsonl_with_scenario(&report.sim.trace, &inputs, Some(&cell.scenario))
}

/// FNV-1a fingerprint of [`trace_jsonl`]: equal fingerprints mean the
/// replay produced a byte-identical event trace.
pub fn fingerprint(scenario: &Scenario) -> u64 {
    fnv1a(&trace_jsonl(scenario), 0)
}

/// A self-contained, replayable record of a violating cell. Version 2
/// embeds the full [`Scenario`], so a repro names its run in exactly the
/// vocabulary `bfgts_run` executes and the trace header records — the
/// only fields outside the scenario are the campaign seed, the
/// degradation floor the cell was judged against, the fingerprint, and
/// the recorded violations.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Campaign seed the cell came from (or a label seed for controls).
    pub seed: u64,
    /// The complete run descriptor (platform, workload, BFGTS tunables,
    /// fault plan).
    pub scenario: Scenario,
    /// Degradation floor in percent.
    pub min_fraction_pct: u64,
    /// Fingerprint of the BFGTS trace under this scenario.
    pub fingerprint: u64,
    /// The violations the recorded run produced.
    pub violations: Vec<String>,
}

impl Repro {
    /// Reconstructs the cell configuration this repro describes. The
    /// scenario records the already-scaled transaction count, so the
    /// rebuilt cell runs at scale 1.
    pub fn cell_config(&self) -> Result<CellConfig, String> {
        let ManagerSpec::Bfgts(tunables) = &self.scenario.manager else {
            return Err(format!(
                "repro scenario must use a BFGTS manager, got '{}'",
                self.scenario.manager.label()
            ));
        };
        Ok(CellConfig {
            num_cpus: self.scenario.platform.cpus,
            num_threads: self.scenario.platform.threads,
            run_seed: self.scenario.platform.seed,
            scale: 1.0,
            min_fraction_pct: self.min_fraction_pct,
            bfgts: tunables.config(),
            detection: self.scenario.platform.detection,
        })
    }

    /// Resolves the workload generator from the scenario.
    pub fn workload_spec(&self) -> Result<AdversarialSpec, String> {
        match self.scenario.workload.resolve()? {
            ResolvedWorkload::Adversarial(spec) => Ok(spec),
            ResolvedWorkload::Benchmark(_) => {
                Err("repro scenario must use an adversarial workload".into())
            }
        }
    }

    /// The (minimized) fault plan the scenario carries. Canonical
    /// scenarios drop empty plans, which replay as a clean run.
    pub fn plan(&self) -> FaultPlan {
        self.scenario
            .faults
            .clone()
            .unwrap_or_else(|| FaultPlan::new(self.scenario.platform.seed))
    }

    /// Stable key of the BFGTS flavour, for display.
    pub fn bfgts_key(&self) -> &'static str {
        match &self.scenario.manager {
            ManagerSpec::Bfgts(tunables) => variant_key(tunables.variant),
            _ => "non-bfgts",
        }
    }

    /// Serialises to the canonical repro JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::UInt(REPRO_VERSION)),
            ("seed", Json::UInt(self.seed)),
            ("scenario", self.scenario.to_json()),
            ("min_fraction_pct", Json::UInt(self.min_fraction_pct)),
            ("fingerprint", Json::UInt(self.fingerprint)),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a repro from its JSON document.
    pub fn from_json(value: &Json) -> Result<Repro, String> {
        let field = |key: &str| value.get(key).ok_or_else(|| format!("missing '{key}'"));
        let uint = |key: &str| {
            field(key)?
                .as_u64()
                .ok_or_else(|| format!("'{key}' must be an unsigned integer"))
        };
        let version = uint("version")?;
        if version != REPRO_VERSION {
            return Err(format!(
                "repro version {version} unsupported (expected {REPRO_VERSION})"
            ));
        }
        let violations = field("violations")?
            .as_arr()
            .ok_or("'violations' must be an array")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or("violations must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Repro {
            seed: uint("seed")?,
            scenario: Scenario::from_json(field("scenario")?)?,
            min_fraction_pct: uint("min_fraction_pct")?,
            fingerprint: uint("fingerprint")?,
            violations,
        })
    }
}

/// Builds the repro record for a violating cell: the fingerprint commits
/// to the trace of exactly the (usually minimized) plan being recorded.
pub fn make_repro(
    seed: u64,
    cfg: &CellConfig,
    workload: &AdversarialSpec,
    plan: &FaultPlan,
    violations: Vec<String>,
) -> Repro {
    let scenario = scenario_for(cfg, workload, plan);
    Repro {
        seed,
        min_fraction_pct: cfg.min_fraction_pct,
        fingerprint: fingerprint(&scenario),
        scenario,
        violations,
    }
}

/// Writes `repro` as `<seed>.json` under `dir`, creating it if needed.
pub fn write_repro(dir: &Path, repro: &Repro) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", repro.seed));
    std::fs::write(&path, repro.to_json().to_string() + "\n")?;
    Ok(path)
}

/// Loads a repro file written by [`write_repro`].
pub fn load_repro(path: &Path) -> Result<Repro, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Repro::from_json(&Json::parse(&text)?)
}

/// Re-executes a repro and checks both halves of its contract: the run
/// must still violate, and its event trace must be byte-identical to the
/// recorded one (equal fingerprints). Returns the replayed report.
pub fn replay(repro: &Repro) -> Result<CellReport, String> {
    let cfg = repro.cell_config()?;
    let workload = repro.workload_spec()?;
    let fp = fingerprint(&repro.scenario);
    if fp != repro.fingerprint {
        return Err(format!(
            "trace fingerprint mismatch: recorded {:016x}, replay {fp:016x}",
            repro.fingerprint
        ));
    }
    let report = run_cell(&cfg, &workload, &repro.plan());
    if report.passed() {
        return Err("replay no longer violates (fixed, or a stale repro)".into());
    }
    Ok(report)
}

/// The seeded negative control: a confidence-poisoned cell judged
/// against an impossible degradation floor (BFGTS must beat Backoff
/// 100×), guaranteed to violate. CI runs this to prove the campaign
/// harness actually catches failures — the fuzz-lane analogue of
/// detlint's seeded-violation step.
pub fn violating_control() -> (CellConfig, AdversarialSpec, FaultPlan) {
    let mut cfg = CellConfig::quick(0xC0_47_01);
    cfg.min_fraction_pct = 10_000;
    let plan = FaultPlan::new(0xC047).fault(Fault::ConfPoison {
        period: 1,
        saturate: true,
    });
    (cfg, AdversarialSpec::hotspot_skew(), plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_identical_across_job_counts() {
        let seeds: Vec<u64> = (0..6).collect();
        let serial = run_campaign(&seeds, 1);
        let parallel = run_campaign(&seeds, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 6);
        for (seed, result) in seeds.iter().zip(&serial) {
            assert_eq!(*seed, result.seed);
        }
    }

    #[test]
    fn trace_fingerprint_is_stable_and_plan_sensitive() {
        let cell = campaign_cell(2);
        let faulted = scenario_for(&cell.cfg, &cell.workload, &cell.plan);
        let a = trace_jsonl(&faulted);
        let b = trace_jsonl(&faulted);
        assert_eq!(a, b, "same scenario, byte-identical trace");
        let clean = scenario_for(&cell.cfg, &cell.workload, &FaultPlan::new(cell.plan.seed));
        assert_ne!(
            fnv1a(&a, 0),
            fingerprint(&clean),
            "a non-empty plan must leave a mark on the trace"
        );
    }

    #[test]
    fn scenario_path_matches_faultsim_execution() {
        // The fingerprint runs through `RunCell::from_scenario`, while
        // `run_cell`/`replay` execute through faultsim's `bfgts_run`.
        // The repro contract only holds if both paths produce the same
        // event trace, byte for byte.
        let cell = campaign_cell(5);
        let scenario = scenario_for(&cell.cfg, &cell.workload, &cell.plan);
        let report = bfgts_faultsim::bfgts_run(&cell.cfg, &cell.workload, &cell.plan);
        let direct = trace_export::to_jsonl_with_scenario(
            &report.sim.trace,
            &report.audit_inputs(),
            Some(&scenario),
        );
        assert_eq!(trace_jsonl(&scenario), direct);
    }

    #[test]
    fn repro_json_round_trips() {
        let (cfg, workload, plan) = violating_control();
        let plan = plan
            .fault(Fault::CostPerturb { max_percent: 9 })
            .fault(Fault::BloomCorrupt {
                rate_pct: 33,
                bits: 16,
            });
        let repro = Repro {
            seed: 42,
            scenario: scenario_for(&cfg, &workload, &plan),
            min_fraction_pct: cfg.min_fraction_pct,
            fingerprint: 0xDEAD_BEEF,
            violations: vec!["degradation bound broken: …".to_string()],
        };
        let text = repro.to_json().to_string();
        let parsed = Repro::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, repro);
        assert_eq!(parsed.plan(), plan);
        assert_eq!(parsed.bfgts_key(), "hw");
        assert!(Repro::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn seeded_control_violates_minimizes_and_replays() {
        let (cfg, workload, plan) = violating_control();
        let report = run_cell(&cfg, &workload, &plan);
        assert!(!report.passed(), "the control must violate");
        // The bound is impossible even without faults, so minimization
        // strips the plan down to nothing — the true root cause.
        let minimized = minimize_failure(&cfg, &workload, &plan);
        assert!(minimized.is_empty());
        assert_eq!(minimized, minimize_failure(&cfg, &workload, &plan));
        let scored = run_cell(&cfg, &workload, &minimized);
        let repro = make_repro(7, &cfg, &workload, &minimized, scored.violations);
        let replayed = replay(&repro).expect("the repro must reproduce");
        assert!(!replayed.passed());
    }

    #[test]
    fn repro_cell_config_round_trips_the_cell() {
        let cell = campaign_cell(9);
        let repro = make_repro(9, &cell.cfg, &cell.workload, &cell.plan, vec![]);
        let cfg = repro.cell_config().unwrap();
        assert_eq!(cfg.num_cpus, cell.cfg.num_cpus);
        assert_eq!(cfg.num_threads, cell.cfg.num_threads);
        assert_eq!(cfg.run_seed, cell.cfg.run_seed);
        assert_eq!(cfg.min_fraction_pct, cell.cfg.min_fraction_pct);
        assert_eq!(cfg.bfgts, cell.cfg.bfgts);
        // The scenario stores the already-scaled transaction count, so
        // the rebuilt cell runs at scale 1 over the same workload.
        let rebuilt = repro.workload_spec().unwrap().scaled(cfg.scale);
        let original = cell.workload.clone().scaled(cell.cfg.scale);
        assert_eq!(rebuilt.name, original.name);
        assert_eq!(rebuilt.total_txs, original.total_txs);
        assert_eq!(repro.plan(), cell.plan);
        assert_eq!(repro.bfgts_key(), cell.bfgts_key);
    }

    #[test]
    fn repro_files_round_trip_on_disk() {
        let (cfg, workload, plan) = violating_control();
        let repro = make_repro(11, &cfg, &workload, &plan, vec!["x".into()]);
        let dir = std::env::temp_dir().join(format!("bfgts-fuzz-{}", std::process::id()));
        let path = write_repro(&dir, &repro).unwrap();
        assert!(path.ends_with("11.json"));
        let loaded = load_repro(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(loaded, repro);
    }

    #[test]
    fn stale_fingerprints_and_unknown_names_are_rejected() {
        let (cfg, workload, plan) = violating_control();
        let scored = run_cell(&cfg, &workload, &plan);
        let mut repro = make_repro(3, &cfg, &workload, &plan, scored.violations);
        repro.fingerprint ^= 1;
        let err = replay(&repro).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
        repro.scenario.manager = ManagerSpec::Serial;
        assert!(repro.cell_config().is_err());
        repro.scenario.workload = WorkloadSpec::Adversarial {
            name: "adv-unknown".to_string(),
            total_txs: 100,
        };
        assert!(repro.workload_spec().is_err());
    }
}
