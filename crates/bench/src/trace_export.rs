//! Trace exports: JSONL (lossless, byte-reproducible, re-auditable) and
//! Chrome `trace_event` JSON (drag into `chrome://tracing` or Perfetto).
//!
//! The JSONL form is the interchange format. The first line is a header
//! carrying the audit ground truth (makespan, CPU count, per-thread
//! bucket totals) so a file can be re-audited standalone by
//! `trace_dump`; each following line is one event. Every float is stored
//! as a `u64` IEEE-754 bit pattern, so a parsed file audits *bit for
//! bit* like the in-memory recording. Keys are emitted in sorted order
//! and integers as plain decimals, so equal recordings serialise to
//! identical bytes — the golden-trace determinism tests diff files
//! directly.
//!
//! The Chrome form is the human-facing view: charges become duration
//! (`"X"`) slices on one lane per CPU, everything else becomes instant
//! events on one lane per thread (confidence updates on a scheduler
//! lane keyed by static transaction). It is lossy by design — floats
//! are printed as floats there.

use crate::json::Json;
use bfgts_scenario::Scenario;
use bfgts_trace::{
    AuditInputs, BucketKind, ConfKind, DecisionKind, TraceEvent, TraceRec, TraceRecording,
};

/// Format version stamped into (and required of) the JSONL header.
/// Version 2 added the fault-injection instants (`fault_bloom_corrupt`,
/// `fault_conf_poison`, DESIGN.md §9); version 3 added the optional
/// embedded scenario (`"scenario"`, DESIGN.md §10) so a trace file names
/// the exact run that produced it. Version 3 also carries the sharding
/// instants (`shard_touch`, `cross_shard_commit`, DESIGN.md §11) — a
/// purely additive extension, since unsharded traces never emit them.
/// The open-system instants (`tx_arrival`, `queue_depth`, DESIGN.md §12)
/// are additive in the same way — batch traces never emit them — so the
/// version stays at 3 and every previously written file still parses.
pub const TRACE_FORMAT_VERSION: u64 = 3;

/// Serialises a recording plus its audit ground truth as JSONL.
pub fn to_jsonl(recording: &TraceRecording, inputs: &AuditInputs) -> String {
    to_jsonl_with_scenario(recording, inputs, None)
}

/// Like [`to_jsonl`], but embeds the scenario that produced the
/// recording into the header, making the file self-describing.
pub fn to_jsonl_with_scenario(
    recording: &TraceRecording,
    inputs: &AuditInputs,
    scenario: Option<&Scenario>,
) -> String {
    let mut pairs = vec![
        ("type", Json::Str("header".into())),
        ("version", Json::UInt(TRACE_FORMAT_VERSION)),
        ("makespan", Json::UInt(inputs.makespan)),
        ("num_cpus", Json::UInt(inputs.num_cpus as u64)),
        (
            "per_thread",
            Json::Arr(
                inputs
                    .per_thread
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|&c| Json::UInt(c)).collect()))
                    .collect(),
            ),
        ),
        ("events", Json::UInt(recording.events.len() as u64)),
        ("dropped", Json::UInt(recording.dropped)),
    ];
    // Absent-key protocol: only runs under a window-based greedy manager
    // declare a seed, so every pre-I11 trace file serialises unchanged.
    if let Some(seed) = inputs.window_seed {
        pairs.push(("window_seed", Json::UInt(seed)));
    }
    if let Some(scenario) = scenario {
        pairs.push(("scenario", scenario.to_json()));
    }
    use std::fmt::Write as _;
    let header = Json::obj(pairs);
    // Pre-size from the event count and stream every record straight
    // into the one buffer — no per-record intermediate `String`.
    let mut out = String::with_capacity(256 + recording.events.len() * 96);
    let _ = writeln!(out, "{header}");
    for rec in &recording.events {
        let _ = writeln!(out, "{}", rec_to_json(rec));
    }
    out
}

/// Parses a JSONL trace back into a recording and its audit inputs.
/// Inverse of [`to_jsonl`]; errors name the offending line. A header
/// scenario, if embedded, is dropped — use [`parse_jsonl_full`] to keep
/// it.
pub fn parse_jsonl(text: &str) -> Result<(TraceRecording, AuditInputs), String> {
    parse_jsonl_full(text).map(|(rec, inputs, _)| (rec, inputs))
}

/// Parses a JSONL trace including the embedded scenario, when the header
/// carries one. Inverse of [`to_jsonl_with_scenario`].
pub fn parse_jsonl_full(
    text: &str,
) -> Result<(TraceRecording, AuditInputs, Option<Scenario>), String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty());
    let (_, first) = lines.next().ok_or("empty trace file")?;
    let header = Json::parse(first).map_err(|e| format!("line 1: {e}"))?;
    if header.get("type").and_then(Json::as_str) != Some("header") {
        return Err("line 1: not a trace header".into());
    }
    let version = header
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("line 1: header has no version")?;
    if version != TRACE_FORMAT_VERSION {
        return Err(format!(
            "unsupported trace format version {version} (expected {TRACE_FORMAT_VERSION})"
        ));
    }
    let field = |key: &str| {
        header
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line 1: header field '{key}' missing or malformed"))
    };
    let makespan = field("makespan")?;
    let num_cpus = field("num_cpus")? as usize;
    let dropped = field("dropped")?;
    let declared = field("events")?;
    let per_thread: Vec<[u64; BucketKind::COUNT]> = header
        .get("per_thread")
        .and_then(Json::as_arr)
        .ok_or("line 1: header field 'per_thread' missing")?
        .iter()
        .map(|row| {
            let cells = row.as_arr()?;
            let mut out = [0u64; BucketKind::COUNT];
            if cells.len() != out.len() {
                return None;
            }
            for (slot, cell) in out.iter_mut().zip(cells) {
                *slot = cell.as_u64()?;
            }
            Some(out)
        })
        .collect::<Option<_>>()
        .ok_or("line 1: malformed 'per_thread' row")?;
    let window_seed = match header.get("window_seed") {
        None => None,
        Some(doc) => Some(
            doc.as_u64()
                .ok_or("line 1: header field 'window_seed' malformed")?,
        ),
    };
    let scenario = match header.get("scenario") {
        None => None,
        Some(doc) => {
            Some(Scenario::from_json(doc).map_err(|e| format!("line 1: embedded scenario: {e}"))?)
        }
    };

    let mut events = Vec::with_capacity(declared as usize);
    for (i, line) in lines {
        let n = i + 1;
        let value = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        events.push(rec_from_json(&value).ok_or_else(|| format!("line {n}: malformed event"))?);
    }
    if events.len() as u64 != declared {
        return Err(format!(
            "header declares {declared} events but file has {}",
            events.len()
        ));
    }
    Ok((
        TraceRecording { events, dropped },
        AuditInputs {
            makespan,
            num_cpus,
            per_thread,
            window_seed,
        },
        scenario,
    ))
}

fn rec_to_json(rec: &TraceRec) -> Json {
    let u = |x: u32| Json::UInt(u64::from(x));
    let mut pairs: Vec<(&'static str, Json)> = vec![
        ("seq", Json::UInt(rec.seq)),
        ("at", Json::UInt(rec.at)),
        ("ev", Json::Str(rec.ev.name().into())),
    ];
    match rec.ev {
        TraceEvent::Charge {
            cpu,
            thread,
            bucket,
            cycles,
        } => pairs.extend([
            ("cpu", u(cpu)),
            ("thread", u(thread)),
            ("bucket", Json::Str(bucket.label().into())),
            ("cycles", Json::UInt(cycles)),
        ]),
        TraceEvent::Refile {
            thread,
            from,
            to,
            requested,
            moved,
        } => pairs.extend([
            ("thread", u(thread)),
            ("from", Json::Str(from.label().into())),
            ("to", Json::Str(to.label().into())),
            ("requested", Json::UInt(requested)),
            ("moved", Json::UInt(moved)),
        ]),
        TraceEvent::ContextSwitch { cpu, thread, cost } => pairs.extend([
            ("cpu", u(cpu)),
            ("thread", u(thread)),
            ("cost", Json::UInt(cost)),
        ]),
        TraceEvent::TxBegin {
            thread,
            stx,
            retries,
        } => pairs.extend([
            ("thread", u(thread)),
            ("stx", u(stx)),
            ("retries", u(retries)),
        ]),
        TraceEvent::TxConflict {
            thread,
            stx,
            enemy_thread,
            enemy_stx,
            stalled,
        } => pairs.extend([
            ("thread", u(thread)),
            ("stx", u(stx)),
            ("enemy_thread", u(enemy_thread)),
            ("enemy_stx", u(enemy_stx)),
            ("stalled", Json::Bool(stalled)),
        ]),
        TraceEvent::TxStall { thread, stx } => {
            pairs.extend([("thread", u(thread)), ("stx", u(stx))]);
        }
        TraceEvent::TxSuspend {
            thread,
            stx,
            target_thread,
            target_stx,
            yielding,
        } => pairs.extend([
            ("thread", u(thread)),
            ("stx", u(stx)),
            ("target_thread", u(target_thread)),
            ("target_stx", u(target_stx)),
            ("yielding", Json::Bool(yielding)),
        ]),
        TraceEvent::TxAbort {
            thread,
            stx,
            undo_lines,
        } => pairs.extend([
            ("thread", u(thread)),
            ("stx", u(stx)),
            ("undo_lines", u(undo_lines)),
        ]),
        TraceEvent::TxCommit {
            thread,
            stx,
            retries,
            rw_lines,
        } => pairs.extend([
            ("thread", u(thread)),
            ("stx", u(stx)),
            ("retries", u(retries)),
            ("rw_lines", u(rw_lines)),
        ]),
        TraceEvent::SchedDecision {
            thread,
            stx,
            kind,
            target_thread,
            target_stx,
            cost,
        } => pairs.extend([
            ("thread", u(thread)),
            ("stx", u(stx)),
            ("kind", Json::Str(kind.label().into())),
            ("target_thread", u(target_thread)),
            ("target_stx", u(target_stx)),
            ("cost", Json::UInt(cost)),
        ]),
        TraceEvent::ConfUpdate {
            kind,
            a_stx,
            b_stx,
            sim_a_bits,
            sim_b_bits,
            param_bits,
            applied_bits,
        } => pairs.extend([
            ("kind", Json::Str(kind.label().into())),
            ("a_stx", u(a_stx)),
            ("b_stx", u(b_stx)),
            ("sim_a_bits", Json::UInt(sim_a_bits)),
            ("sim_b_bits", Json::UInt(sim_b_bits)),
            ("param_bits", Json::UInt(param_bits)),
            ("applied_bits", Json::UInt(applied_bits)),
        ]),
        TraceEvent::BloomSample {
            thread,
            stx,
            raw_bits,
            clamped_bits,
        } => pairs.extend([
            ("thread", u(thread)),
            ("stx", u(stx)),
            ("raw_bits", Json::UInt(raw_bits)),
            ("clamped_bits", Json::UInt(clamped_bits)),
        ]),
        TraceEvent::ShardTouch { thread, stx, shard } => {
            pairs.extend([("thread", u(thread)), ("stx", u(stx)), ("shard", u(shard))]);
        }
        TraceEvent::CrossShardCommit {
            thread,
            stx,
            shards,
            cost,
        } => pairs.extend([
            ("thread", u(thread)),
            ("stx", u(stx)),
            ("shards", u(shards)),
            ("cost", Json::UInt(cost)),
        ]),
        TraceEvent::FaultBloomCorrupt { thread, stx, bits } => {
            pairs.extend([("thread", u(thread)), ("stx", u(stx)), ("bits", u(bits))]);
        }
        TraceEvent::FalsePositiveConflict {
            thread,
            stx,
            enemy_thread,
            enemy_stx,
            true_conflicts,
        } => pairs.extend([
            ("thread", u(thread)),
            ("stx", u(stx)),
            ("enemy_thread", u(enemy_thread)),
            ("enemy_stx", u(enemy_stx)),
            ("true_conflicts", u(true_conflicts)),
        ]),
        TraceEvent::CapacityAbort {
            thread,
            stx,
            tracked,
            capacity,
        } => pairs.extend([
            ("thread", u(thread)),
            ("stx", u(stx)),
            ("tracked", u(tracked)),
            ("capacity", u(capacity)),
        ]),
        TraceEvent::FaultConfPoison {
            thread,
            saturate,
            entries,
        } => pairs.extend([
            ("thread", u(thread)),
            ("saturate", Json::Bool(saturate)),
            ("entries", Json::UInt(entries)),
        ]),
        TraceEvent::TxArrival {
            thread,
            stx,
            arrival,
        } => pairs.extend([
            ("thread", u(thread)),
            ("stx", u(stx)),
            ("arrival", Json::UInt(arrival)),
        ]),
        TraceEvent::QueueDepth { thread, depth } => {
            pairs.extend([("thread", u(thread)), ("depth", Json::UInt(depth))]);
        }
        TraceEvent::WindowAdvance {
            thread,
            window,
            priority,
        } => pairs.extend([
            ("thread", u(thread)),
            ("window", Json::UInt(window)),
            ("priority", Json::UInt(priority)),
        ]),
    }
    Json::obj(pairs)
}

fn rec_from_json(v: &Json) -> Option<TraceRec> {
    let seq = v.get("seq")?.as_u64()?;
    let at = v.get("at")?.as_u64()?;
    let name = v.get("ev")?.as_str()?;
    let u32f = |key: &str| -> Option<u32> { v.get(key)?.as_u64()?.try_into().ok() };
    let u64f = |key: &str| v.get(key)?.as_u64();
    let boolf = |key: &str| match v.get(key)? {
        Json::Bool(b) => Some(*b),
        _ => None,
    };
    let bucketf = |key: &str| BucketKind::from_label(v.get(key)?.as_str()?);
    let ev = match name {
        "charge" => TraceEvent::Charge {
            cpu: u32f("cpu")?,
            thread: u32f("thread")?,
            bucket: bucketf("bucket")?,
            cycles: u64f("cycles")?,
        },
        "refile" => TraceEvent::Refile {
            thread: u32f("thread")?,
            from: bucketf("from")?,
            to: bucketf("to")?,
            requested: u64f("requested")?,
            moved: u64f("moved")?,
        },
        "context_switch" => TraceEvent::ContextSwitch {
            cpu: u32f("cpu")?,
            thread: u32f("thread")?,
            cost: u64f("cost")?,
        },
        "tx_begin" => TraceEvent::TxBegin {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            retries: u32f("retries")?,
        },
        "tx_conflict" => TraceEvent::TxConflict {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            enemy_thread: u32f("enemy_thread")?,
            enemy_stx: u32f("enemy_stx")?,
            stalled: boolf("stalled")?,
        },
        "tx_stall" => TraceEvent::TxStall {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
        },
        "tx_suspend" => TraceEvent::TxSuspend {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            target_thread: u32f("target_thread")?,
            target_stx: u32f("target_stx")?,
            yielding: boolf("yielding")?,
        },
        "tx_abort" => TraceEvent::TxAbort {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            undo_lines: u32f("undo_lines")?,
        },
        "tx_commit" => TraceEvent::TxCommit {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            retries: u32f("retries")?,
            rw_lines: u32f("rw_lines")?,
        },
        "sched_decision" => TraceEvent::SchedDecision {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            kind: DecisionKind::from_label(v.get("kind")?.as_str()?)?,
            target_thread: u32f("target_thread")?,
            target_stx: u32f("target_stx")?,
            cost: u64f("cost")?,
        },
        "conf_update" => TraceEvent::ConfUpdate {
            kind: ConfKind::from_label(v.get("kind")?.as_str()?)?,
            a_stx: u32f("a_stx")?,
            b_stx: u32f("b_stx")?,
            sim_a_bits: u64f("sim_a_bits")?,
            sim_b_bits: u64f("sim_b_bits")?,
            param_bits: u64f("param_bits")?,
            applied_bits: u64f("applied_bits")?,
        },
        "bloom_sample" => TraceEvent::BloomSample {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            raw_bits: u64f("raw_bits")?,
            clamped_bits: u64f("clamped_bits")?,
        },
        "shard_touch" => TraceEvent::ShardTouch {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            shard: u32f("shard")?,
        },
        "cross_shard_commit" => TraceEvent::CrossShardCommit {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            shards: u32f("shards")?,
            cost: u64f("cost")?,
        },
        "fault_bloom_corrupt" => TraceEvent::FaultBloomCorrupt {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            bits: u32f("bits")?,
        },
        "false_positive_conflict" => TraceEvent::FalsePositiveConflict {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            enemy_thread: u32f("enemy_thread")?,
            enemy_stx: u32f("enemy_stx")?,
            true_conflicts: u32f("true_conflicts")?,
        },
        "capacity_abort" => TraceEvent::CapacityAbort {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            tracked: u32f("tracked")?,
            capacity: u32f("capacity")?,
        },
        "fault_conf_poison" => TraceEvent::FaultConfPoison {
            thread: u32f("thread")?,
            saturate: boolf("saturate")?,
            entries: u64f("entries")?,
        },
        "tx_arrival" => TraceEvent::TxArrival {
            thread: u32f("thread")?,
            stx: u32f("stx")?,
            arrival: u64f("arrival")?,
        },
        "queue_depth" => TraceEvent::QueueDepth {
            thread: u32f("thread")?,
            depth: u64f("depth")?,
        },
        "window_advance" => TraceEvent::WindowAdvance {
            thread: u32f("thread")?,
            window: u64f("window")?,
            priority: u64f("priority")?,
        },
        _ => return None,
    };
    Some(TraceRec { seq, at, ev })
}

/// Renders a recording in Chrome `trace_event` format.
pub fn to_chrome(recording: &TraceRecording, inputs: &AuditInputs) -> String {
    const PID_CPUS: u64 = 0;
    const PID_THREADS: u64 = 1;
    const PID_SCHED: u64 = 2;
    let meta = |pid: u64, name: &str| {
        Json::obj([
            ("ph", Json::Str("M".into())),
            ("pid", Json::UInt(pid)),
            ("tid", Json::UInt(0)),
            ("name", Json::Str("process_name".into())),
            ("args", Json::obj([("name", Json::Str(name.into()))])),
        ])
    };
    let mut events = vec![
        meta(PID_CPUS, "cpus"),
        meta(PID_THREADS, "threads"),
        meta(PID_SCHED, "scheduler (by stx)"),
    ];
    let float = |bits: u64| {
        let x = f64::from_bits(bits);
        if x.is_finite() {
            Json::Float(x)
        } else {
            Json::Str(format!("0x{bits:016x}"))
        }
    };
    let instant = |pid: u64, tid: u64, at: u64, name: String, args: Json| {
        Json::obj([
            ("ph", Json::Str("i".into())),
            ("pid", Json::UInt(pid)),
            ("tid", Json::UInt(tid)),
            ("ts", Json::UInt(at)),
            ("s", Json::Str("t".into())),
            ("name", Json::Str(name)),
            ("args", args),
        ])
    };
    for rec in &recording.events {
        let at = rec.at;
        events.push(match rec.ev {
            TraceEvent::Charge {
                cpu,
                thread,
                bucket,
                cycles,
            } => Json::obj([
                ("ph", Json::Str("X".into())),
                ("pid", Json::UInt(PID_CPUS)),
                ("tid", Json::UInt(u64::from(cpu))),
                ("ts", Json::UInt(at)),
                ("dur", Json::UInt(cycles)),
                ("cat", Json::Str("charge".into())),
                ("name", Json::Str(bucket.label().into())),
                (
                    "args",
                    Json::obj([("thread", Json::UInt(u64::from(thread)))]),
                ),
            ]),
            TraceEvent::ContextSwitch { cpu, thread, cost } => instant(
                PID_CPUS,
                u64::from(cpu),
                at,
                "context_switch".into(),
                Json::obj([
                    ("thread", Json::UInt(u64::from(thread))),
                    ("cost", Json::UInt(cost)),
                ]),
            ),
            TraceEvent::Refile {
                thread,
                from,
                to,
                requested,
                moved,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                "refile".into(),
                Json::obj([
                    ("from", Json::Str(from.label().into())),
                    ("to", Json::Str(to.label().into())),
                    ("requested", Json::UInt(requested)),
                    ("moved", Json::UInt(moved)),
                ]),
            ),
            TraceEvent::TxBegin {
                thread,
                stx,
                retries,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("tx_begin stx{stx}"),
                Json::obj([("retries", Json::UInt(u64::from(retries)))]),
            ),
            TraceEvent::TxConflict {
                thread,
                stx,
                enemy_thread,
                enemy_stx,
                stalled,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("tx_conflict stx{stx}"),
                Json::obj([
                    ("enemy_thread", Json::UInt(u64::from(enemy_thread))),
                    ("enemy_stx", Json::UInt(u64::from(enemy_stx))),
                    ("stalled", Json::Bool(stalled)),
                ]),
            ),
            TraceEvent::TxStall { thread, stx } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("tx_stall stx{stx}"),
                Json::obj([]),
            ),
            TraceEvent::TxSuspend {
                thread,
                stx,
                target_thread,
                target_stx,
                yielding,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("tx_suspend stx{stx}"),
                Json::obj([
                    ("target_thread", Json::UInt(u64::from(target_thread))),
                    ("target_stx", Json::UInt(u64::from(target_stx))),
                    ("yielding", Json::Bool(yielding)),
                ]),
            ),
            TraceEvent::TxAbort {
                thread,
                stx,
                undo_lines,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("tx_abort stx{stx}"),
                Json::obj([("undo_lines", Json::UInt(u64::from(undo_lines)))]),
            ),
            TraceEvent::TxCommit {
                thread,
                stx,
                retries,
                rw_lines,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("tx_commit stx{stx}"),
                Json::obj([
                    ("retries", Json::UInt(u64::from(retries))),
                    ("rw_lines", Json::UInt(u64::from(rw_lines))),
                ]),
            ),
            TraceEvent::SchedDecision {
                thread,
                stx,
                kind,
                target_thread,
                target_stx,
                cost,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("sched:{} stx{stx}", kind.label()),
                Json::obj([
                    ("target_thread", Json::UInt(u64::from(target_thread))),
                    ("target_stx", Json::UInt(u64::from(target_stx))),
                    ("cost", Json::UInt(cost)),
                ]),
            ),
            TraceEvent::ConfUpdate {
                kind,
                a_stx,
                b_stx,
                sim_a_bits,
                sim_b_bits,
                param_bits,
                applied_bits,
            } => instant(
                PID_SCHED,
                u64::from(a_stx),
                at,
                format!("conf:{}", kind.label()),
                Json::obj([
                    ("b_stx", Json::UInt(u64::from(b_stx))),
                    ("sim_a", float(sim_a_bits)),
                    ("sim_b", float(sim_b_bits)),
                    ("param", float(param_bits)),
                    ("applied", float(applied_bits)),
                ]),
            ),
            TraceEvent::BloomSample {
                thread,
                stx,
                raw_bits,
                clamped_bits,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("bloom_sample stx{stx}"),
                Json::obj([("raw", float(raw_bits)), ("clamped", float(clamped_bits))]),
            ),
            TraceEvent::ShardTouch { thread, stx, shard } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("shard_touch stx{stx}"),
                Json::obj([("shard", Json::UInt(u64::from(shard)))]),
            ),
            TraceEvent::CrossShardCommit {
                thread,
                stx,
                shards,
                cost,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("cross_shard_commit stx{stx}"),
                Json::obj([
                    ("shards", Json::UInt(u64::from(shards))),
                    ("cost", Json::UInt(cost)),
                ]),
            ),
            TraceEvent::FaultBloomCorrupt { thread, stx, bits } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("fault:bloom_corrupt stx{stx}"),
                Json::obj([("bits", Json::UInt(u64::from(bits)))]),
            ),
            TraceEvent::FalsePositiveConflict {
                thread,
                stx,
                enemy_thread,
                enemy_stx,
                true_conflicts,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("false_positive_conflict stx{stx}"),
                Json::obj([
                    ("enemy_thread", Json::UInt(u64::from(enemy_thread))),
                    ("enemy_stx", Json::UInt(u64::from(enemy_stx))),
                    ("true_conflicts", Json::UInt(u64::from(true_conflicts))),
                ]),
            ),
            TraceEvent::CapacityAbort {
                thread,
                stx,
                tracked,
                capacity,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("capacity_abort stx{stx}"),
                Json::obj([
                    ("tracked", Json::UInt(u64::from(tracked))),
                    ("capacity", Json::UInt(u64::from(capacity))),
                ]),
            ),
            TraceEvent::FaultConfPoison {
                thread,
                saturate,
                entries,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                "fault:conf_poison".into(),
                Json::obj([
                    ("saturate", Json::Bool(saturate)),
                    ("entries", Json::UInt(entries)),
                ]),
            ),
            TraceEvent::TxArrival {
                thread,
                stx,
                arrival,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("tx_arrival stx{stx}"),
                Json::obj([("arrival", Json::UInt(arrival))]),
            ),
            TraceEvent::QueueDepth { thread, depth } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                "queue_depth".into(),
                Json::obj([("depth", Json::UInt(depth))]),
            ),
            TraceEvent::WindowAdvance {
                thread,
                window,
                priority,
            } => instant(
                PID_THREADS,
                u64::from(thread),
                at,
                format!("window_advance w{window}"),
                Json::obj([("priority", Json::UInt(priority))]),
            ),
        });
    }
    let doc = Json::obj([
        ("displayTimeUnit", Json::Str("ns".into())),
        ("traceEvents", Json::Arr(events)),
        (
            "otherData",
            Json::obj([
                ("makespan", Json::UInt(inputs.makespan)),
                ("num_cpus", Json::UInt(inputs.num_cpus as u64)),
            ]),
        ),
    ]);
    doc.to_string() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_trace::NO_TARGET;

    /// One of every event variant, with deliberately awkward values
    /// (`NO_TARGET`, negative floats).
    fn sample_recording() -> (TraceRecording, AuditInputs) {
        let evs = [
            TraceEvent::Charge {
                cpu: 0,
                thread: 1,
                bucket: BucketKind::Tx,
                cycles: 40,
            },
            TraceEvent::Refile {
                thread: 1,
                from: BucketKind::Tx,
                to: BucketKind::Abort,
                requested: 40,
                moved: 40,
            },
            TraceEvent::ContextSwitch {
                cpu: 0,
                thread: 1,
                cost: 12,
            },
            TraceEvent::TxBegin {
                thread: 1,
                stx: 2,
                retries: 0,
            },
            TraceEvent::TxConflict {
                thread: 1,
                stx: 2,
                enemy_thread: 0,
                enemy_stx: NO_TARGET,
                stalled: true,
            },
            TraceEvent::TxStall { thread: 1, stx: 2 },
            TraceEvent::TxSuspend {
                thread: 1,
                stx: 2,
                target_thread: 0,
                target_stx: 3,
                yielding: false,
            },
            TraceEvent::TxAbort {
                thread: 1,
                stx: 2,
                undo_lines: 7,
            },
            TraceEvent::TxCommit {
                thread: 1,
                stx: 2,
                retries: 1,
                rw_lines: 9,
            },
            TraceEvent::SchedDecision {
                thread: 1,
                stx: 2,
                kind: DecisionKind::Yield,
                target_thread: 0,
                target_stx: 3,
                cost: 250,
            },
            TraceEvent::ConfUpdate {
                kind: ConfKind::SuspendDecay,
                a_stx: 2,
                b_stx: 3,
                sim_a_bits: 0.25f64.to_bits(),
                sim_b_bits: 0.75f64.to_bits(),
                param_bits: 0.1f64.to_bits(),
                applied_bits: (-0.05f64).to_bits(),
            },
            TraceEvent::BloomSample {
                thread: 1,
                stx: 2,
                raw_bits: (-0.3f64).to_bits(),
                clamped_bits: 0.0f64.to_bits(),
            },
            TraceEvent::ShardTouch {
                thread: 1,
                stx: 2,
                shard: 5,
            },
            TraceEvent::CrossShardCommit {
                thread: 1,
                stx: 2,
                shards: 2,
                cost: 120,
            },
            TraceEvent::FaultBloomCorrupt {
                thread: 1,
                stx: 2,
                bits: 64,
            },
            TraceEvent::FalsePositiveConflict {
                thread: 1,
                stx: 2,
                enemy_thread: 0,
                enemy_stx: NO_TARGET,
                true_conflicts: 0,
            },
            TraceEvent::CapacityAbort {
                thread: 1,
                stx: 2,
                tracked: 9,
                capacity: 8,
            },
            TraceEvent::FaultConfPoison {
                thread: 1,
                saturate: true,
                entries: 16,
            },
            TraceEvent::TxArrival {
                thread: 1,
                stx: 2,
                arrival: 155,
            },
            TraceEvent::QueueDepth {
                thread: 1,
                depth: 3,
            },
            TraceEvent::WindowAdvance {
                thread: 1,
                window: 4,
                priority: bfgts_trace::window_priority(0xB16_B00B5, 1, 4),
            },
        ];
        let events = evs
            .into_iter()
            .enumerate()
            .map(|(i, ev)| TraceRec {
                seq: i as u64,
                at: (i as u64) * 10,
                ev,
            })
            .collect();
        let recording = TraceRecording { events, dropped: 0 };
        let inputs = AuditInputs {
            makespan: 1000,
            num_cpus: 2,
            per_thread: vec![[1, 2, 3, 4, 5], [10, 20, 30, 40, 50]],
            window_seed: Some(0xB16_B00B5),
        };
        (recording, inputs)
    }

    #[test]
    fn jsonl_round_trips_every_variant_exactly() {
        let (recording, inputs) = sample_recording();
        let text = to_jsonl(&recording, &inputs);
        let (parsed_rec, parsed_inputs) = parse_jsonl(&text).unwrap();
        assert_eq!(parsed_rec, recording);
        assert_eq!(parsed_inputs, inputs);
        // And serialisation is a fixed point: re-export is byte-identical.
        assert_eq!(to_jsonl(&parsed_rec, &parsed_inputs), text);
    }

    #[test]
    fn jsonl_rejects_corrupt_input() {
        let (recording, inputs) = sample_recording();
        let text = to_jsonl(&recording, &inputs);
        assert!(parse_jsonl("").is_err());
        assert!(parse_jsonl("{\"seq\":0}").is_err(), "missing header");
        let bad_count = text.replace("\"events\":21", "\"events\":22");
        assert!(parse_jsonl(&bad_count).is_err(), "event count mismatch");
        let bad_version = text.replace("\"version\":3", "\"version\":99");
        assert!(parse_jsonl(&bad_version).is_err(), "future version");
        let bad_event = text.replace("\"ev\":\"tx_stall\"", "\"ev\":\"tx_mystery\"");
        assert!(parse_jsonl(&bad_event).is_err(), "unknown event name");
    }

    #[test]
    fn embedded_scenarios_round_trip_through_the_header() {
        use bfgts_scenario::{ManagerSpec, Platform, WorkloadSpec};
        let (recording, inputs) = sample_recording();
        let mut scenario = Scenario::new(
            WorkloadSpec::Preset {
                name: "Kmeans".into(),
                total_txs: 100,
            },
            ManagerSpec::Serial,
            Platform::small(),
        );
        scenario.trace = bfgts_sim::TraceMode::Full;
        let text = to_jsonl_with_scenario(&recording, &inputs, Some(&scenario));
        let (parsed_rec, parsed_inputs, parsed_scenario) = parse_jsonl_full(&text).unwrap();
        assert_eq!(parsed_rec, recording);
        assert_eq!(parsed_inputs, inputs);
        assert_eq!(parsed_scenario.as_ref(), Some(&scenario));
        // A scenario-free file still parses, reporting no scenario.
        let (_, _, none) = parse_jsonl_full(&to_jsonl(&recording, &inputs)).unwrap();
        assert!(none.is_none());
        // And embedding does not disturb the event stream fixed point.
        assert_eq!(
            to_jsonl_with_scenario(&parsed_rec, &parsed_inputs, parsed_scenario.as_ref()),
            text
        );
    }

    #[test]
    fn chrome_export_is_valid_json_with_cpu_slices() {
        let (recording, inputs) = sample_recording();
        let text = to_chrome(&recording, &inputs);
        let doc = Json::parse(text.trim_end()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 3 process-name metadata records + one record per event.
        assert_eq!(events.len(), 3 + recording.events.len());
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("charge becomes a duration slice");
        assert_eq!(slice.get("dur").and_then(Json::as_u64), Some(40));
        assert_eq!(slice.get("name").and_then(Json::as_str), Some("tx"));
    }
}
