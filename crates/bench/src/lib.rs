//! Shared experiment infrastructure for regenerating the paper's tables
//! and figures.
//!
//! Every binary in `src/bin/` drives the same pipeline: pick a benchmark
//! preset, pick a [`ManagerKind`], run it on the paper platform (16
//! CPUs, 64 threads) with [`run_one`], and compare against the 1-thread
//! serial baseline with [`speedup`]. See `DESIGN.md` §4 for the
//! experiment-to-binary index.
//!
//! The run descriptions themselves — [`Platform`], [`ManagerKind`], the
//! [`Scenario`] type unifying them — live in `bfgts-scenario`
//! (DESIGN.md §10) and are re-exported here; this crate adds execution:
//! the parallel grid runner, the result cache, summaries and the shared
//! CLI surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod runner;
pub mod trace_export;

pub use bfgts_scenario::json;
pub use bfgts_scenario::{
    BfgtsTunables, ManagerKind, ManagerSpec, Platform, Scenario, WorkloadSpec,
};

use bfgts_baselines::BackoffCm;
use bfgts_htm::{run_workload, TmRunConfig, TmRunReport};
use bfgts_workloads::BenchmarkSpec;

/// Runs `spec` under `kind` on `platform` with the benchmark's optimal
/// Bloom filter size.
pub fn run_one(spec: &BenchmarkSpec, kind: ManagerKind, platform: Platform) -> TmRunReport {
    run_one_with_bloom(spec, kind, platform, kind.optimal_bloom_bits(spec.name))
}

/// Runs `spec` under `kind` with an explicit Bloom filter size (the
/// Figure 6 sweep).
pub fn run_one_with_bloom(
    spec: &BenchmarkSpec,
    kind: ManagerKind,
    platform: Platform,
    bloom_bits: u32,
) -> TmRunReport {
    let cfg = TmRunConfig::new(platform.cpus, platform.threads).seed(platform.seed);
    run_workload(&cfg, spec.sources(platform.threads), kind.build(bloom_bits))
}

/// Runs the serial baseline: the same total work on one CPU with one
/// thread (no conflicts are possible, so the manager choice is
/// irrelevant; Backoff adds zero overhead without contention). Returns
/// the serial makespan in cycles.
pub fn serial_baseline(spec: &BenchmarkSpec, seed: u64) -> u64 {
    let cfg = TmRunConfig::new(1, 1).seed(seed);
    let report = run_workload(&cfg, spec.sources(1), Box::new(BackoffCm::default()));
    report.sim.makespan.as_u64()
}

/// Runs `f` and returns its result plus the elapsed wall-clock in
/// milliseconds. The one sanctioned wall-clock read in this crate,
/// shared by every benchmark binary (`bfgts_run --bench-json`,
/// `bench_scale`, `bench_jobs`): wall time goes only into benchmark
/// artifacts, never into printed result tables or simulation state.
pub fn timed_ms<T>(f: impl FnOnce() -> T) -> (T, u64) {
    // detlint: allow(D002) -- benchmark wall-clock measurement, not simulation state
    let started = std::time::Instant::now();
    let out = f();
    (out, started.elapsed().as_millis() as u64)
}

/// Speedup of a parallel run over the serial baseline.
pub fn speedup(parallel: &TmRunReport, serial_makespan: u64) -> f64 {
    let span = parallel.sim.makespan.as_u64();
    if span == 0 {
        0.0
    } else {
        serial_makespan as f64 / span as f64
    }
}

/// Geometric-mean helper for "AVG" columns (the paper averages speedups
/// arithmetically; both are provided).
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Percent improvement of `x` over `baseline` (Figure 4(b)).
pub fn percent_improvement(x: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (x / baseline - 1.0) * 100.0
    }
}

/// The command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Workload scale factor (`--quick` = 0.25, `--scale F`).
    pub scale: f64,
    /// Platform shape and master seed (`--small`, `--seed N`).
    pub platform: Platform,
    /// Worker threads for the experiment grid (`--jobs N`).
    pub jobs: usize,
    /// Whether the on-disk cell cache is consulted (`--no-cache` clears).
    pub use_cache: bool,
    /// Optional path for a machine-readable grid dump (`--json PATH`).
    pub json: Option<std::path::PathBuf>,
    /// Optional path for a JSONL event trace of the grid's first
    /// parallel cell (`--trace PATH`; a Chrome trace is written next to
    /// it).
    pub trace: Option<std::path::PathBuf>,
    /// Whether every distinct cell is re-run with full tracing and its
    /// accounting audited (`--audit`).
    pub audit: bool,
    /// Seed of a randomized fault plan injected into every non-serial
    /// cell (`--faults SEED`; see `bfgts_faultsim::FaultPlan`).
    pub faults: Option<u64>,
    /// Dump the exact scenarios the binary would run as a JSON array to
    /// PATH and exit without running them (`--emit PATH`). The file
    /// replays through `bfgts_run`.
    pub emit: Option<std::path::PathBuf>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            scale: 1.0,
            platform: Platform::paper(),
            jobs: runner::default_jobs(),
            use_cache: true,
            json: None,
            trace: None,
            audit: false,
            faults: None,
            emit: None,
        }
    }
}

/// The usage text printed on `--help` or an argument error.
pub const USAGE: &str = "\
options:
  --quick        run at 0.25x workload scale
  --small        use the small platform (4 CPUs, 8 threads)
  --scale F      workload scale factor (default 1.0)
  --seed N       master RNG seed (default 0xB16B00B5)
  --jobs N       worker threads for the experiment grid
                 (default: available parallelism)
  --no-cache     ignore and bypass results/cache
  --json PATH    also write per-cell results as JSON to PATH
  --trace PATH   re-run the first parallel cell with full event tracing
                 and write it as JSONL to PATH (plus a Chrome trace
                 next to it); the recording is audited first
  --audit        re-run every distinct cell with full tracing and
                 verify the accounting invariants (exits 1 on the
                 first violation)
  --faults SEED  inject the randomized fault plan derived from SEED
                 (cost jitter, Bloom corruption, confidence poisoning;
                 see bfgts_fuzz) into every non-serial cell
  --emit PATH    write the exact scenarios this binary would run as a
                 JSON array to PATH and exit without running them
                 (replay the file with bfgts_run)
  -h, --help     show this help";

/// Parses the shared flags from `args` (binary name already stripped).
/// Returns `Err` with a message on unknown flags or malformed values;
/// `Ok(None)` when help was requested.
pub fn parse_args_from(args: &[String]) -> Result<Option<CommonArgs>, String> {
    let mut out = CommonArgs::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => return Ok(None),
            "--quick" => out.scale = 0.25,
            "--small" => {
                let seed = out.platform.seed;
                out.platform = Platform::small();
                out.platform.seed = seed;
            }
            "--scale" => {
                let v = value(&mut i, "--scale")?;
                out.scale = v
                    .parse()
                    .map_err(|_| format!("--scale needs a number, got '{v}'"))?;
            }
            "--seed" => {
                let v = value(&mut i, "--seed")?;
                out.platform.seed = v
                    .parse()
                    .map_err(|_| format!("--seed needs an integer, got '{v}'"))?;
            }
            "--jobs" => {
                let v = value(&mut i, "--jobs")?;
                let jobs: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs needs an integer, got '{v}'"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                out.jobs = jobs;
            }
            "--no-cache" => out.use_cache = false,
            "--json" => {
                out.json = Some(std::path::PathBuf::from(value(&mut i, "--json")?));
            }
            "--trace" => {
                out.trace = Some(std::path::PathBuf::from(value(&mut i, "--trace")?));
            }
            "--audit" => out.audit = true,
            "--faults" => {
                let v = value(&mut i, "--faults")?;
                out.faults = Some(
                    v.parse()
                        .map_err(|_| format!("--faults needs an integer seed, got '{v}'"))?,
                );
            }
            "--emit" => {
                out.emit = Some(std::path::PathBuf::from(value(&mut i, "--emit")?));
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    Ok(Some(out))
}

/// Parses the shared flags from the process arguments. Prints usage and
/// exits with status 2 on any unknown flag or malformed value (and with
/// status 0 on `--help`).
pub fn parse_common_args() -> CommonArgs {
    let argv: Vec<String> = std::env::args().collect();
    let bin = argv
        .first()
        .map(|p| {
            std::path::Path::new(p)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.clone())
        })
        .unwrap_or_else(|| "bench".to_string());
    match parse_args_from(&argv[1..]) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("usage: {bin} [options]\n{USAGE}");
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("error: {msg}\nusage: {bin} [options]\n{USAGE}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfgts_workloads::presets;

    #[test]
    fn manager_labels_unique() {
        let labels: std::collections::HashSet<_> =
            ManagerKind::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), ManagerKind::ALL.len());
    }

    #[test]
    fn build_produces_matching_names() {
        for kind in ManagerKind::ALL {
            assert_eq!(kind.build(2048).name(), kind.label());
        }
    }

    #[test]
    fn optimal_bloom_sizes_match_fig6_sweep() {
        assert_eq!(ManagerKind::BfgtsHw.optimal_bloom_bits("Kmeans"), 512);
        assert_eq!(ManagerKind::BfgtsHw.optimal_bloom_bits("Delaunay"), 2048);
        // The hybrid tolerates larger filters than plain HW (paper §5.3.1).
        assert!(
            ManagerKind::BfgtsHwBackoff.optimal_bloom_bits("Vacation")
                > ManagerKind::BfgtsHw.optimal_bloom_bits("Vacation")
        );
    }

    #[test]
    fn serial_baseline_is_deterministic() {
        let spec = presets::ssca2().scaled(0.02);
        assert_eq!(serial_baseline(&spec, 1), serial_baseline(&spec, 1));
    }

    #[test]
    fn speedup_math() {
        assert_eq!(percent_improvement(1.5, 1.0), 50.0);
        assert_eq!(arithmetic_mean(&[1.0, 3.0]), 2.0);
        assert_eq!(arithmetic_mean(&[]), 0.0);
    }

    fn parse(args: &[&str]) -> Result<Option<CommonArgs>, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args_from(&owned)
    }

    #[test]
    fn common_args_parse_the_full_flag_set() {
        let args = parse(&[
            "--quick",
            "--small",
            "--seed",
            "7",
            "--jobs",
            "3",
            "--no-cache",
            "--json",
            "out.json",
            "--trace",
            "run.jsonl",
            "--audit",
            "--faults",
            "11",
            "--emit",
            "cells.scenarios.json",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(args.scale, 0.25);
        assert_eq!(args.platform.cpus, 4);
        assert_eq!(args.platform.seed, 7);
        assert_eq!(args.jobs, 3);
        assert!(!args.use_cache);
        assert_eq!(args.json.as_deref(), Some(std::path::Path::new("out.json")));
        assert_eq!(
            args.trace.as_deref(),
            Some(std::path::Path::new("run.jsonl"))
        );
        assert!(args.audit);
        assert_eq!(args.faults, Some(11));
        assert_eq!(
            args.emit.as_deref(),
            Some(std::path::Path::new("cells.scenarios.json"))
        );
    }

    #[test]
    fn unknown_arguments_are_hard_errors() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "fast"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--faults", "xyzzy"]).is_err());
        assert!(parse(&["extra"]).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse(&["--help"]).unwrap().is_none());
        assert!(parse(&["-h", "--frobnicate"]).unwrap().is_none());
    }

    #[test]
    fn quick_run_completes_on_small_platform() {
        let spec = presets::kmeans().scaled(0.02);
        let report = run_one(&spec, ManagerKind::Backoff, Platform::small());
        assert!(report.stats.commits() > 0);
    }
}
