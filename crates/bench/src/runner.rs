//! The parallel experiment runner.
//!
//! Every figure and table of the paper is a grid of *independent,
//! deterministic* simulations: a benchmark spec × a contention manager ×
//! a Bloom geometry × a seed. Each cell's outcome depends only on its own
//! inputs (fixed seeds, per-run RNG streams), which makes the grid
//! embarrassingly parallel with bitwise-identical results regardless of
//! execution order. This module exploits that:
//!
//! * [`RunCell`] describes one cell declaratively; binaries build their
//!   whole grid up front and call [`run_grid`].
//! * [`run_grid`] executes cells across a [`std::thread::scope`] worker
//!   pool (an atomic work index hands out jobs; `--jobs N` sets the pool
//!   size) and reassembles [`CellSummary`] results in grid order, so the
//!   printed output is byte-identical to a sequential run.
//! * Cells with identical cache keys are computed once per grid — the
//!   serial baselines every benchmark needs are therefore memoised
//!   automatically instead of being re-simulated per manager.
//! * Completed cells are persisted to `results/cache/<hash>.json`
//!   (hand-rolled JSON, see [`crate::json`]); re-running a binary after a
//!   code-irrelevant change skips finished cells. `--no-cache` bypasses
//!   the cache, and bumping [`CACHE_VERSION`] invalidates it wholesale.
//!
//! Since cache version 2 a cell *is* a [`Scenario`] (DESIGN.md §10): the
//! cache key is the scenario's content hash, `--emit` dumps any grid as
//! a scenario file, and `bfgts_run` executes such files through this
//! same runner. Closure-built custom cells are the one exception — their
//! configuration lives outside the scenario, so they are memoised within
//! a grid but never persisted to disk.
//!
//! Floating-point statistics are cached as `u64` bit patterns, so a
//! cache hit reproduces the fresh run's output byte for byte.

use crate::json::Json;
use crate::{trace_export, CommonArgs, ManagerKind, Platform};
use bfgts_baselines::BackoffCm;
use bfgts_faultsim::FaultPlan;
use bfgts_htm::{run_workload, ContentionManager, LatencyDigest, TmRunReport};
use bfgts_scenario::{fnv1a, ManagerSpec, ResolvedWorkload, Scenario, WorkloadSpec};
use bfgts_sim::{Bucket, TimeBuckets, TraceMode};
use bfgts_trace::Violation;
use bfgts_workloads::{open_sources, ArrivalSpec, BenchmarkSpec};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

pub use bfgts_scenario::CostKind;

/// Bump to invalidate every cached cell (e.g. after a change to the
/// simulator, the cost model or the summary layout). Version 2 moved the
/// key to the scenario content hash; version 3 added the optional
/// open-system latency digest to the summary layout.
pub const CACHE_VERSION: u64 = 3;

/// One cell of an experiment grid: a [`Scenario`] plus, for the one
/// escape hatch the scenario cannot express, a closure building an
/// arbitrary contention manager.
#[derive(Clone)]
pub struct RunCell {
    /// The complete, canonicalised run description. Its content hash is
    /// the cell's cache identity.
    pub scenario: Scenario,
    /// Set only by [`RunCell::custom`]: builds the manager the scenario
    /// describes opaquely as [`ManagerSpec::Custom`]. Such cells are
    /// never persisted to the disk cache.
    custom_build: Option<Arc<dyn Fn() -> Box<dyn ContentionManager> + Send + Sync>>,
}

impl RunCell {
    /// A cell running `spec` under `kind` with its optimal Bloom size.
    pub fn one(spec: &BenchmarkSpec, kind: ManagerKind, platform: Platform) -> Self {
        Self::with_manager(
            spec,
            platform,
            ManagerSpec::Kind {
                kind,
                bloom_bits: None,
            },
        )
    }

    /// A cell running `spec` under `kind` with an explicit Bloom size.
    pub fn with_bloom(
        spec: &BenchmarkSpec,
        kind: ManagerKind,
        platform: Platform,
        bits: u32,
    ) -> Self {
        Self::with_manager(
            spec,
            platform,
            ManagerSpec::Kind {
                kind,
                bloom_bits: Some(bits),
            },
        )
    }

    /// A cell running `spec` under any structured manager configuration
    /// (the interval sweep, the ablations, the extended roster).
    pub fn with_manager(spec: &BenchmarkSpec, platform: Platform, manager: ManagerSpec) -> Self {
        Self {
            scenario: Scenario::new(WorkloadSpec::from_benchmark(spec), manager, platform)
                .canonical(),
            custom_build: None,
        }
    }

    /// A cell running `spec` under a closure-built manager. `tag` should
    /// describe the configuration for humans; because the closure's
    /// actual configuration is invisible to the scenario, the cell is
    /// executed fresh every grid and never persisted to the disk cache
    /// (a cached summary keyed only on the tag could silently go stale
    /// when the builder changes).
    ///
    /// **Test support only.** Every production configuration is
    /// expressible as a structured [`ManagerSpec`] and must go through
    /// [`RunCell::with_manager`] so its scenarios cache, emit and replay;
    /// no binary in `src/bin/` constructs custom cells (pinned by
    /// `roster_constructors_emit_cacheable_scenarios`). This remains
    /// `pub` solely for the cache-exclusion integration tests.
    pub fn custom(
        spec: &BenchmarkSpec,
        platform: Platform,
        tag: impl Into<String>,
        build: impl Fn() -> Box<dyn ContentionManager> + Send + Sync + 'static,
    ) -> Self {
        Self {
            scenario: Scenario::new(
                WorkloadSpec::from_benchmark(spec),
                ManagerSpec::Custom { tag: tag.into() },
                platform,
            )
            .canonical(),
            custom_build: Some(Arc::new(build)),
        }
    }

    /// The serial baseline cell for `spec` (1 CPU / 1 thread).
    pub fn serial(spec: &BenchmarkSpec, platform: Platform) -> Self {
        Self::with_manager(spec, platform, ManagerSpec::Serial)
    }

    /// A cell executing `scenario` exactly as described. Fails on a
    /// scenario that cannot be executed from data alone: an opaque
    /// [`ManagerSpec::Custom`] manager, or a workload that does not
    /// resolve (unknown preset name, invalid inline class).
    pub fn from_scenario(scenario: Scenario) -> Result<Self, String> {
        if !scenario.manager.executable() {
            return Err(
                "scenario describes a closure-built custom manager; it cannot be rebuilt \
                 from data"
                    .to_string(),
            );
        }
        scenario.workload.resolve()?;
        Ok(Self {
            scenario: scenario.canonical(),
            custom_build: None,
        })
    }

    /// Switches the cell to software-TM costs.
    pub fn stm(mut self) -> Self {
        self.scenario.costs = CostKind::Stm;
        self
    }

    /// Arms the cell with the randomized fault plan derived from `seed`.
    pub fn faulted(mut self, seed: u64) -> Self {
        self.scenario.faults = Some(FaultPlan::randomized(seed));
        self.scenario = self.scenario.canonical();
        self
    }

    /// Switches the cell to open-system mode: transactions stream in
    /// under `spec`'s arrival processes instead of being queued up front.
    pub fn open(mut self, spec: ArrivalSpec) -> Self {
        self.scenario.arrivals = Some(spec);
        self.scenario = self.scenario.canonical();
        self
    }

    /// Whether this cell's summary may be persisted to (and served from)
    /// the on-disk cache. False only for closure-built custom cells.
    pub fn cacheable(&self) -> bool {
        self.custom_build.is_none() && self.scenario.manager.cacheable()
    }

    /// The canonical cache key: the scenario's content hash under the
    /// current cache version. Every input that can change the outcome is
    /// committed to the hash through the canonical scenario JSON.
    pub fn cache_key(&self) -> String {
        format!("v{CACHE_VERSION}|scenario:{}", self.scenario.id())
    }

    /// Runs the cell to completion (no caching).
    pub fn execute(&self) -> CellSummary {
        CellSummary::from_report(&self.execute_report(TraceMode::Off))
    }

    /// Runs the cell with the given trace mode and returns the full run
    /// report. Never consults the cell cache — a cached summary has no
    /// event recording, and the recording is the point.
    pub fn execute_report(&self, trace: TraceMode) -> TmRunReport {
        let scenario = &self.scenario;
        let seed = scenario.platform.seed;
        let resolved = scenario
            .workload
            .resolve()
            .expect("cell workloads resolve (checked at construction for scenario files)");
        if matches!(scenario.manager, ManagerSpec::Serial) {
            // Serial baselines stay clean even under --faults: a
            // perturbed denominator would make every speedup
            // incomparable across plans. Arrival specs are kept — an
            // open serial baseline answers "what latency would a single
            // CPU sustain under this offered load".
            let cfg = scenario.costs.run_config(1, 1, seed).trace(trace);
            let cm: Box<dyn ContentionManager> = Box::new(BackoffCm::default());
            return dispatch_sources(&cfg, resolved, scenario.arrivals.as_ref(), seed, 1, cm);
        }
        let plan = scenario.faults.as_ref();
        let mut cfg = scenario
            .costs
            .run_config(scenario.platform.cpus, scenario.platform.threads, seed)
            .shards(scenario.platform.shards)
            .detection(scenario.platform.detection)
            .trace(trace);
        if let Some(plan) = plan {
            let pct = plan.cost_percent();
            if pct > 0 {
                cfg = cfg.perturb_costs(plan.seed, pct);
            }
            // On capacity-limited hardware a BloomCorrupt fault also
            // flips live detection-signature bits (traced per begin).
            if scenario.platform.detection.is_bounded() {
                if let Some((rate_pct, bits)) = plan.bloom_corrupt() {
                    cfg = cfg.detection_fault(u64::from(rate_pct), bits, plan.seed);
                }
            }
        }
        let cm_faults = plan.and_then(|p| p.cm_faults());
        let cm = match &self.custom_build {
            // Custom builders carry their own configuration; they still
            // feel the cost perturbation above.
            Some(build) => build(),
            None => scenario
                .manager
                .build(resolved.name(), cm_faults)
                .expect("non-custom managers build from data"),
        };
        let threads = scenario.platform.threads;
        dispatch_sources(
            &cfg,
            resolved,
            scenario.arrivals.as_ref(),
            seed,
            threads,
            cm,
        )
    }
}

/// Builds the per-thread sources a resolved workload describes — wrapped
/// into [`open_sources`] streams when an arrival spec is present — and
/// runs them. The arrival streams derive from the run's master seed, so
/// the schedule is pinned by the scenario id like every other input.
fn dispatch_sources(
    cfg: &bfgts_htm::TmRunConfig,
    resolved: ResolvedWorkload,
    arrivals: Option<&ArrivalSpec>,
    seed: u64,
    threads: usize,
    cm: Box<dyn ContentionManager>,
) -> TmRunReport {
    match (resolved, arrivals) {
        (ResolvedWorkload::Benchmark(spec), None) => run_workload(cfg, spec.sources(threads), cm),
        (ResolvedWorkload::Benchmark(spec), Some(arrivals)) => {
            run_workload(cfg, open_sources(spec.sources(threads), arrivals, seed), cm)
        }
        (ResolvedWorkload::Adversarial(spec), None) => run_workload(cfg, spec.sources(threads), cm),
        (ResolvedWorkload::Adversarial(spec), Some(arrivals)) => {
            run_workload(cfg, open_sources(spec.sources(threads), arrivals, seed), cm)
        }
    }
}

/// The persistable summary of one completed cell: everything the
/// experiment binaries print, in exactly-round-trippable form.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Name of the contention manager that ran.
    pub cm_name: String,
    /// Parallel makespan in cycles.
    pub makespan: u64,
    /// Whole-run cycle accounting summed over threads (Figure 5).
    pub buckets: TimeBuckets,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// NACK stalls that did not abort.
    pub stalls: u64,
    /// Per-static-transaction `(stx, commits, aborts)`, sorted by stx.
    pub per_stx: Vec<(u32, u64, u64)>,
    /// Observed conflict edges as normalised `(low, high)` pairs, sorted.
    pub conflict_edges: Vec<(u32, u32)>,
    /// Measured similarity per static transaction (only entries that
    /// committed at least twice), sorted by stx.
    pub similarity: Vec<(u32, f64)>,
    /// Open-system latency digest (sojourn percentiles + sustained
    /// throughput); `None` for closed (batch) runs.
    pub latency: Option<LatencyDigest>,
}

impl CellSummary {
    /// Summarises a full run report.
    pub fn from_report(report: &TmRunReport) -> Self {
        let stats = &report.stats;
        let per_stx = stats
            .stx_ids()
            .into_iter()
            .map(|stx| {
                let (c, a) = stats.stx_counts(stx);
                (stx.get(), c, a)
            })
            .collect();
        let similarity = stats
            .stx_ids()
            .into_iter()
            .filter_map(|stx| stats.measured_similarity(stx).map(|s| (stx.get(), s)))
            .collect();
        Self {
            cm_name: report.cm_name.to_string(),
            makespan: report.sim.makespan.as_u64(),
            buckets: report.sim.total(),
            commits: stats.commits(),
            aborts: stats.aborts(),
            stalls: stats.stalls(),
            per_stx,
            conflict_edges: stats
                .conflict_edges()
                .map(|(a, b)| (a.get(), b.get()))
                .collect(),
            similarity,
            latency: report.latency(),
        }
    }

    /// Speedup of this run over a serial makespan.
    pub fn speedup_over(&self, serial_makespan: u64) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            serial_makespan as f64 / self.makespan as f64
        }
    }

    /// Contention rate: aborted attempts over all attempts (Table 4).
    pub fn contention_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Fraction of all cycles in `bucket` (Figure 5).
    pub fn fraction(&self, bucket: Bucket) -> f64 {
        self.buckets.fraction(bucket)
    }

    /// Throughput proxy: commits per million cycles of makespan.
    pub fn commits_per_mcycle(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.commits as f64 * 1.0e6 / self.makespan as f64
        }
    }

    /// The sTxIDs observed conflicting with `stx` (one row of Table 1).
    pub fn conflict_row(&self, stx: u32) -> Vec<u32> {
        let mut row: Vec<u32> = self
            .conflict_edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == stx {
                    Some(b)
                } else if b == stx {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        row.dedup();
        row
    }

    /// Measured similarity of `stx`, if it committed at least twice.
    pub fn measured_similarity(&self, stx: u32) -> Option<f64> {
        self.similarity
            .iter()
            .find(|(s, _)| *s == stx)
            .map(|(_, sim)| *sim)
    }

    fn to_json(&self, key: &str) -> Json {
        let mut pairs = vec![
            ("v", Json::UInt(CACHE_VERSION)),
            ("key", Json::Str(key.to_string())),
            ("cm_name", Json::Str(self.cm_name.clone())),
            ("makespan", Json::UInt(self.makespan)),
            (
                "buckets",
                Json::Arr(
                    Bucket::ALL
                        .iter()
                        .map(|&b| Json::UInt(self.buckets.get(b)))
                        .collect(),
                ),
            ),
            ("commits", Json::UInt(self.commits)),
            ("aborts", Json::UInt(self.aborts)),
            ("stalls", Json::UInt(self.stalls)),
            (
                "per_stx",
                Json::Arr(
                    self.per_stx
                        .iter()
                        .map(|&(stx, c, a)| {
                            Json::Arr(vec![Json::UInt(stx as u64), Json::UInt(c), Json::UInt(a)])
                        })
                        .collect(),
                ),
            ),
            (
                "conflict_edges",
                Json::Arr(
                    self.conflict_edges
                        .iter()
                        .map(|&(a, b)| Json::Arr(vec![Json::UInt(a as u64), Json::UInt(b as u64)]))
                        .collect(),
                ),
            ),
            (
                // f64 as IEEE-754 bit patterns: cache hits must reproduce
                // the fresh run's formatted output byte for byte.
                "similarity_bits",
                Json::Arr(
                    self.similarity
                        .iter()
                        .map(|&(stx, sim)| {
                            Json::Arr(vec![Json::UInt(stx as u64), Json::UInt(sim.to_bits())])
                        })
                        .collect(),
                ),
            ),
        ];
        // Mirrors the scenario's own protocol: closed runs serialise
        // exactly as they did before latency existed.
        if let Some(latency) = &self.latency {
            pairs.push((
                "latency",
                Json::obj([
                    ("count", Json::UInt(latency.count)),
                    ("p50", Json::UInt(latency.p50)),
                    ("p95", Json::UInt(latency.p95)),
                    ("p99", Json::UInt(latency.p99)),
                    ("total_cycles", Json::UInt(latency.total_cycles)),
                    // f64 as bits, like similarity: byte-exact cache hits.
                    ("tx_per_sec_bits", Json::UInt(latency.tx_per_sec.to_bits())),
                ]),
            ));
        }
        Json::obj(pairs)
    }

    fn from_json(value: &Json) -> Option<Self> {
        let buckets_raw = value.get("buckets")?.as_arr()?;
        if buckets_raw.len() != Bucket::ALL.len() {
            return None;
        }
        let mut buckets = TimeBuckets::default();
        for (&bucket, raw) in Bucket::ALL.iter().zip(buckets_raw) {
            buckets.charge(bucket, raw.as_u64()?);
        }
        let triple = |item: &Json| -> Option<(u32, u64, u64)> {
            let arr = item.as_arr()?;
            Some((
                u32::try_from(arr.first()?.as_u64()?).ok()?,
                arr.get(1)?.as_u64()?,
                arr.get(2)?.as_u64()?,
            ))
        };
        let pair = |item: &Json| -> Option<(u32, u32)> {
            let arr = item.as_arr()?;
            Some((
                u32::try_from(arr.first()?.as_u64()?).ok()?,
                u32::try_from(arr.get(1)?.as_u64()?).ok()?,
            ))
        };
        let sim = |item: &Json| -> Option<(u32, f64)> {
            let arr = item.as_arr()?;
            Some((
                u32::try_from(arr.first()?.as_u64()?).ok()?,
                f64::from_bits(arr.get(1)?.as_u64()?),
            ))
        };
        Some(Self {
            cm_name: value.get("cm_name")?.as_str()?.to_string(),
            makespan: value.get("makespan")?.as_u64()?,
            buckets,
            commits: value.get("commits")?.as_u64()?,
            aborts: value.get("aborts")?.as_u64()?,
            stalls: value.get("stalls")?.as_u64()?,
            per_stx: value
                .get("per_stx")?
                .as_arr()?
                .iter()
                .map(triple)
                .collect::<Option<_>>()?,
            conflict_edges: value
                .get("conflict_edges")?
                .as_arr()?
                .iter()
                .map(pair)
                .collect::<Option<_>>()?,
            similarity: value
                .get("similarity_bits")?
                .as_arr()?
                .iter()
                .map(sim)
                .collect::<Option<_>>()?,
            latency: match value.get("latency") {
                None => None,
                Some(digest) => Some(LatencyDigest {
                    count: digest.get("count")?.as_u64()?,
                    total_cycles: digest.get("total_cycles")?.as_u64()?,
                    p50: digest.get("p50")?.as_u64()?,
                    p95: digest.get("p95")?.as_u64()?,
                    p99: digest.get("p99")?.as_u64()?,
                    tx_per_sec: f64::from_bits(digest.get("tx_per_sec_bits")?.as_u64()?),
                }),
            },
        })
    }
}

/// Execution options for [`run_grid`], usually derived from
/// [`CommonArgs`].
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker threads. 0 or 1 runs the grid on the calling thread.
    pub jobs: usize,
    /// Cell cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        Self {
            jobs: default_jobs(),
            cache_dir: Some(PathBuf::from(DEFAULT_CACHE_DIR)),
        }
    }
}

/// Where completed cells are cached, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// The default worker count: one per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl RunnerOptions {
    /// Options selected by the common command-line flags.
    pub fn from_args(args: &CommonArgs) -> Self {
        Self {
            jobs: args.jobs,
            cache_dir: args.use_cache.then(|| PathBuf::from(DEFAULT_CACHE_DIR)),
        }
    }
}

/// Executes every cell of `cells` and returns their summaries in grid
/// order.
///
/// Cells with identical [`RunCell::cache_key`]s are simulated once and
/// the summary shared — the automatic memoisation of serial baselines.
/// With a cache directory, previously completed cells are loaded instead
/// of re-simulated and fresh results are persisted. Workers claim cells
/// through an atomic index; because each simulation is deterministic and
/// results are reassembled by position, the returned vector (and thus any
/// output printed from it) is identical for every `jobs` value.
pub fn run_grid(cells: &[RunCell], opts: &RunnerOptions) -> Vec<CellSummary> {
    let keys: Vec<String> = cells.iter().map(RunCell::cache_key).collect();
    // First cell index for each distinct key, in grid order.
    let mut first_of: HashMap<&str, usize> = HashMap::new();
    let mut unique: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        first_of.entry(key).or_insert_with(|| {
            unique.push(i);
            i
        });
    }

    if let Some(dir) = &opts.cache_dir {
        // Best-effort: a read-only tree simply runs without persistence.
        let _ = std::fs::create_dir_all(dir);
    }

    let results: Vec<OnceLock<CellSummary>> = (0..cells.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let workers = opts.jobs.max(1).min(unique.len().max(1));

    let run_one_cell = |slot: usize| {
        let cell = &cells[slot];
        let key = &keys[slot];
        // Closure-built custom cells are memoised within the grid (by
        // tag) but never persisted: their tag is not tied to the
        // closure's actual configuration, so a disk hit could silently
        // serve a stale summary after the builder changes.
        let disk = opts.cache_dir.as_deref().filter(|_| cell.cacheable());
        let cached = disk.and_then(|dir| load_cached(dir, key));
        let summary = match cached {
            Some(summary) => summary,
            None => {
                let summary = cell.execute();
                if let Some(dir) = disk {
                    store_cached(dir, key, &summary);
                }
                summary
            }
        };
        results[slot]
            .set(summary)
            .expect("each unique cell is computed exactly once");
    };

    if workers <= 1 {
        for &slot in &unique {
            run_one_cell(slot);
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&slot) = unique.get(j) else { break };
                    run_one_cell(slot);
                });
            }
        });
    }

    keys.iter()
        .map(|key| {
            results[first_of[key.as_str()]]
                .get()
                .expect("every unique key was computed")
                .clone()
        })
        .collect()
}

/// Runs the grid with the options selected on the command line and, when
/// `--json PATH` was given, writes every cell summary there. `--audit`
/// then re-runs every distinct cell with full tracing and verifies the
/// accounting invariants (exiting 1 on a violation), and `--trace PATH`
/// writes the first parallel cell's recording to disk. `--emit PATH`
/// writes the (fault-armed) grid as a scenario file and exits without
/// running anything.
pub fn run_grid_with_args(cells: &[RunCell], args: &CommonArgs) -> Vec<CellSummary> {
    // --faults arms every non-serial cell; the owned grid then feeds the
    // run, the audit and the trace export alike, so fault events show up
    // everywhere downstream.
    let armed: Vec<RunCell>;
    let cells: &[RunCell] = match args.faults {
        Some(seed) => {
            armed = cells
                .iter()
                .map(|cell| match cell.scenario.manager {
                    ManagerSpec::Serial => cell.clone(),
                    _ => cell.clone().faulted(seed),
                })
                .collect();
            &armed
        }
        None => cells,
    };
    if let Some(path) = &args.emit {
        match emit_scenarios(path, cells) {
            Ok(()) => {
                let opaque = cells.iter().filter(|c| !c.cacheable()).count();
                eprintln!(
                    "emit: wrote {} scenario(s) to {}",
                    cells.len(),
                    path.display()
                );
                if opaque > 0 {
                    eprintln!(
                        "emit: note: {opaque} cell(s) use closure-built custom managers; \
                         bfgts_run cannot execute those entries"
                    );
                }
                std::process::exit(0);
            }
            Err(err) => {
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(2);
            }
        }
    }
    let results = run_grid(cells, &RunnerOptions::from_args(args));
    if let Some(path) = &args.json {
        if let Err(err) = write_grid_json(path, cells, &results) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
    if args.audit {
        match audit_cells(cells) {
            Ok(totals) => eprintln!("audit: {totals}"),
            Err(violations) => {
                for v in violations.iter().take(10) {
                    eprintln!("audit violation: {v}");
                }
                eprintln!(
                    "error: accounting audit failed with {} violation(s)",
                    violations.len()
                );
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.trace {
        // A parallel cell makes the most interesting trace; serial
        // baselines have no conflicts to look at.
        let cell = cells
            .iter()
            .find(|c| !matches!(c.scenario.manager, ManagerSpec::Serial))
            .or_else(|| cells.first());
        match cell {
            Some(cell) => {
                if let Err(err) = export_cell_trace(cell, path) {
                    eprintln!("warning: could not write {}: {err}", path.display());
                } else {
                    eprintln!(
                        "trace: wrote {} and {}",
                        path.display(),
                        chrome_trace_path(path).display()
                    );
                }
            }
            None => eprintln!("warning: --trace given but the grid has no cells"),
        }
    }
    results
}

/// Totals accumulated by a clean [`audit_cells`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditTotals {
    /// Distinct cells audited.
    pub cells: usize,
    /// Events replayed across all cells.
    pub events: usize,
    /// Confidence updates recomputed bit-for-bit.
    pub conf_updates: u64,
    /// Bloom clamp-contract samples checked.
    pub bloom_samples: u64,
}

impl std::fmt::Display for AuditTotals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cells clean ({} events, {} confidence updates, {} bloom samples verified)",
            self.cells, self.events, self.conf_updates, self.bloom_samples
        )
    }
}

/// Re-runs every *distinct* cell of `cells` with full event tracing —
/// bypassing the cache, whose summaries carry no recording — and replays
/// each recording through `bfgts_trace::audit`. Returns the totals on
/// success or the first failing cell's violations, prefixed with its
/// cache key.
pub fn audit_cells(cells: &[RunCell]) -> Result<AuditTotals, Vec<Violation>> {
    let mut seen = std::collections::BTreeSet::new();
    let mut totals = AuditTotals::default();
    for cell in cells {
        let key = cell.cache_key();
        if !seen.insert(key.clone()) {
            continue;
        }
        let report = cell.execute_report(TraceMode::Full);
        match report.audit() {
            Ok(summary) => {
                totals.cells += 1;
                totals.events += summary.events;
                totals.conf_updates += summary.conf_updates;
                totals.bloom_samples += summary.bloom_samples;
            }
            Err(violations) => {
                return Err(violations
                    .into_iter()
                    .map(|v| Violation {
                        what: format!("{key}: {}", v.what),
                        ..v
                    })
                    .collect())
            }
        }
    }
    Ok(totals)
}

/// The Chrome-trace sibling of a JSONL trace path:
/// `results/fig4.jsonl` → `results/fig4.chrome.json`.
pub fn chrome_trace_path(path: &Path) -> PathBuf {
    path.with_extension("chrome.json")
}

/// Re-runs `cell` with full event tracing and writes the recording as
/// JSONL to `path` plus a Chrome trace to [`chrome_trace_path`]. The
/// recording is audited first; a violation is a simulator bug and
/// panics. The JSONL header embeds the cell's scenario (with the trace
/// mode it actually ran under), so the file is self-describing: the run
/// can be reproduced from the trace alone.
pub fn export_cell_trace(cell: &RunCell, path: &Path) -> std::io::Result<()> {
    let report = cell.execute_report(TraceMode::Full);
    report.audit_or_panic();
    let inputs = report.audit_inputs();
    let mut scenario = cell.scenario.clone();
    scenario.trace = TraceMode::Full;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(
        path,
        trace_export::to_jsonl_with_scenario(&report.sim.trace, &inputs, Some(&scenario)),
    )?;
    std::fs::write(
        chrome_trace_path(path),
        trace_export::to_chrome(&report.sim.trace, &inputs),
    )
}

/// Writes `cells` as a scenario file (a JSON array in grid order, the
/// `--emit` format) that `bfgts_run` executes directly.
pub fn emit_scenarios(path: &Path, cells: &[RunCell]) -> std::io::Result<()> {
    let scenarios: Vec<Scenario> = cells.iter().map(|c| c.scenario.clone()).collect();
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(
        path,
        bfgts_scenario::scenarios_to_json(&scenarios).to_string() + "\n",
    )
}

/// Serialises a completed grid to `path` as a JSON document.
pub fn write_grid_json(
    path: &Path,
    cells: &[RunCell],
    results: &[CellSummary],
) -> std::io::Result<()> {
    let doc = Json::obj([
        ("version", Json::UInt(CACHE_VERSION)),
        (
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .zip(results)
                    .map(|(cell, summary)| {
                        let mut entry = summary.to_json(&cell.cache_key());
                        if let Json::Obj(map) = &mut entry {
                            map.insert("scenario".to_string(), cell.scenario.to_json());
                        }
                        entry
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, doc.to_string() + "\n")
}

fn cache_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!(
        "{:016x}{:016x}.json",
        fnv1a(key, 0),
        fnv1a(key, 0x9e37_79b9_7f4a_7c15)
    ))
}

fn load_cached(dir: &Path, key: &str) -> Option<CellSummary> {
    let text = std::fs::read_to_string(cache_path(dir, key)).ok()?;
    let value = Json::parse(&text).ok()?;
    // The full key is stored in the file: a filename-hash collision or a
    // stale version entry is rejected, never silently trusted.
    if value.get("v")?.as_u64()? != CACHE_VERSION || value.get("key")?.as_str()? != key {
        return None;
    }
    CellSummary::from_json(&value)
}

fn store_cached(dir: &Path, key: &str, summary: &CellSummary) {
    let path = cache_path(dir, key);
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    // Best-effort persistence: failures only cost a future recompute.
    if std::fs::write(&tmp, summary.to_json(key).to_string() + "\n").is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

/// Convenience wrapper for the speedup-table binaries: runs one serial
/// baseline cell plus one cell per manager for each spec, all through the
/// same grid, and returns `(serial_makespans, summaries[manager][spec])`.
pub fn speedup_grid(
    specs: &[BenchmarkSpec],
    managers: &[ManagerKind],
    args: &CommonArgs,
) -> (Vec<u64>, Vec<Vec<CellSummary>>) {
    let mut cells = Vec::with_capacity(specs.len() * (managers.len() + 1));
    for spec in specs {
        cells.push(RunCell::serial(spec, args.platform));
        for &kind in managers {
            cells.push(RunCell::one(spec, kind, args.platform));
        }
    }
    let results = run_grid_with_args(&cells, args);
    let stride = managers.len() + 1;
    let serials: Vec<u64> = specs
        .iter()
        .enumerate()
        .map(|(b, _)| results[b * stride].makespan)
        .collect();
    let per_manager: Vec<Vec<CellSummary>> = (0..managers.len())
        .map(|m| {
            (0..specs.len())
                .map(|b| results[b * stride + 1 + m].clone())
                .collect()
        })
        .collect();
    (serials, per_manager)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;
    use bfgts_workloads::presets;

    fn tiny_spec() -> BenchmarkSpec {
        presets::kmeans().scaled(0.01)
    }

    fn no_cache() -> RunnerOptions {
        RunnerOptions {
            jobs: 2,
            cache_dir: None,
        }
    }

    #[test]
    fn cache_keys_separate_configurations() {
        let spec = tiny_spec();
        let p = Platform::small();
        let base = RunCell::one(&spec, ManagerKind::Backoff, p);
        let mut keys = vec![
            base.cache_key(),
            RunCell::one(&spec, ManagerKind::BfgtsHw, p).cache_key(),
            RunCell::with_bloom(&spec, ManagerKind::BfgtsHw, p, 8192).cache_key(),
            RunCell::serial(&spec, p).cache_key(),
            RunCell::one(&spec, ManagerKind::Backoff, p)
                .stm()
                .cache_key(),
            RunCell::custom(&spec, p, "interval=10", || Box::new(BackoffCm::default())).cache_key(),
        ];
        let mut seeded = RunCell::one(&spec, ManagerKind::Backoff, p);
        seeded.scenario.platform.seed ^= 1;
        keys.push(seeded.cache_key());
        let unique: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "colliding keys: {keys:#?}");
    }

    #[test]
    fn roster_constructors_emit_cacheable_scenarios() {
        // Every structured constructor a roster binary uses must produce
        // cells that cache, emit and replay from data alone — the
        // closure-built escape hatch is test support, nothing more.
        let spec = tiny_spec();
        let p = Platform::small();
        let mut cells = vec![
            RunCell::serial(&spec, p),
            RunCell::with_bloom(&spec, ManagerKind::BfgtsHw, p, 1024),
            RunCell::with_manager(&spec, p, ManagerSpec::Polka),
            RunCell::with_manager(&spec, p, ManagerSpec::Stall),
            RunCell::with_manager(
                &spec,
                p,
                ManagerSpec::WindowGreedy {
                    window_size: None,
                    base_delay: None,
                },
            ),
            RunCell::with_manager(&spec, p, ManagerSpec::BalancedGreedy { window_size: None }),
        ];
        for kind in ManagerKind::ALL {
            cells.push(RunCell::one(&spec, kind, p));
        }
        for cell in &cells {
            assert!(
                cell.cacheable(),
                "{} must be cacheable",
                cell.scenario.manager.label()
            );
            // Emit-and-replay: the scenario alone rebuilds the cell.
            let rebuilt = RunCell::from_scenario(cell.scenario.clone())
                .unwrap_or_else(|e| panic!("{}: {e}", cell.scenario.manager.label()));
            assert_eq!(rebuilt.cache_key(), cell.cache_key());
        }
    }

    #[test]
    fn serial_cells_ignore_platform_shape() {
        let spec = tiny_spec();
        let a = RunCell::serial(&spec, Platform::small()).cache_key();
        let b = RunCell::serial(&spec, Platform::paper()).cache_key();
        assert_eq!(a, b, "serial key must not depend on cpus/threads");
    }

    #[test]
    fn grid_matches_direct_execution() {
        let spec = tiny_spec();
        let p = Platform::small();
        let cells = vec![
            RunCell::serial(&spec, p),
            RunCell::one(&spec, ManagerKind::Backoff, p),
        ];
        let grid = run_grid(&cells, &no_cache());
        assert_eq!(grid[0], cells[0].execute());
        assert_eq!(grid[1], cells[1].execute());
    }

    #[test]
    fn duplicate_cells_share_one_computation() {
        let spec = tiny_spec();
        let p = Platform::small();
        let cells: Vec<RunCell> = (0..6).map(|_| RunCell::serial(&spec, p)).collect();
        let grid = run_grid(&cells, &no_cache());
        assert!(grid.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn summary_json_round_trips_exactly() {
        let spec = tiny_spec();
        let summary = RunCell::one(&spec, ManagerKind::BfgtsHw, Platform::small()).execute();
        let round = CellSummary::from_json(&summary.to_json("k")).expect("parses");
        assert_eq!(summary, round);
        // Bit-exact similarity is what makes cached output byte-identical.
        for ((_, a), (_, b)) in summary.similarity.iter().zip(&round.similarity) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn cache_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!(
            "bfgts-cache-test-{}-{:x}",
            std::process::id(),
            fnv1a("cache_round_trip_on_disk", 0)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunnerOptions {
            jobs: 2,
            cache_dir: Some(dir.clone()),
        };
        let spec = tiny_spec();
        let p = Platform::small();
        let cells = vec![
            RunCell::serial(&spec, p),
            RunCell::one(&spec, ManagerKind::Ats, p),
        ];
        let fresh = run_grid(&cells, &opts);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
        let cached = run_grid(&cells, &opts);
        assert_eq!(fresh, cached);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entries_are_recomputed() {
        let dir =
            std::env::temp_dir().join(format!("bfgts-cache-test-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = tiny_spec();
        let cell = RunCell::serial(&spec, Platform::small());
        std::fs::write(cache_path(&dir, &cell.cache_key()), "{not json").unwrap();
        let opts = RunnerOptions {
            jobs: 1,
            cache_dir: Some(dir.clone()),
        };
        let grid = run_grid(std::slice::from_ref(&cell), &opts);
        assert_eq!(grid[0], cell.execute());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn custom_cells_never_touch_the_disk_cache() {
        let dir =
            std::env::temp_dir().join(format!("bfgts-cache-test-custom-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunnerOptions {
            jobs: 1,
            cache_dir: Some(dir.clone()),
        };
        let spec = tiny_spec();
        let cell = RunCell::custom(&spec, Platform::small(), "tag-a", || {
            Box::new(BackoffCm::default())
        });
        assert!(!cell.cacheable());
        let first = run_grid(std::slice::from_ref(&cell), &opts);
        assert_eq!(
            std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0),
            0,
            "closure-built cells must not be persisted"
        );
        // A stale entry planted under the cell's key is ignored: the tag
        // does not pin the closure's configuration, so disk results
        // cannot be trusted.
        std::fs::create_dir_all(&dir).unwrap();
        let mut summary = first[0].clone();
        summary.makespan ^= 1;
        std::fs::write(
            cache_path(&dir, &cell.cache_key()),
            summary.to_json(&cell.cache_key()).to_string() + "\n",
        )
        .unwrap();
        let second = run_grid(std::slice::from_ref(&cell), &opts);
        assert_eq!(first, second, "planted cache entry was served");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_round_trip_preserves_key_and_summary() {
        let spec = tiny_spec();
        let cell = RunCell::one(&spec, ManagerKind::BfgtsHw, Platform::small());
        let text = cell.scenario.to_json().to_string();
        let parsed = Scenario::from_json(&Json::parse(&text).unwrap()).unwrap();
        let rebuilt = RunCell::from_scenario(parsed).unwrap();
        assert_eq!(rebuilt.cache_key(), cell.cache_key());
        assert_eq!(rebuilt.execute(), cell.execute());
    }

    #[test]
    fn custom_scenarios_do_not_rebuild() {
        let spec = tiny_spec();
        let cell = RunCell::custom(&spec, Platform::small(), "mystery", || {
            Box::new(BackoffCm::default())
        });
        assert!(RunCell::from_scenario(cell.scenario.clone()).is_err());
    }

    #[test]
    fn faulted_cells_key_separately_and_audit_clean() {
        let spec = tiny_spec();
        let p = Platform::small();
        let clean = RunCell::one(&spec, ManagerKind::BfgtsHw, p);
        let faulted = clean.clone().faulted(3);
        assert_ne!(clean.cache_key(), faulted.cache_key());
        assert_ne!(
            faulted.cache_key(),
            clean.clone().faulted(4).cache_key(),
            "the plan seed is part of the key"
        );
        // Fault events are accounted instants: the audit must stay exact
        // under injection, for several distinct plans.
        for seed in [3u64, 4, 5] {
            let report = clean.clone().faulted(seed).execute_report(TraceMode::Full);
            report.audit_or_panic();
        }
    }

    #[test]
    fn conflict_row_and_similarity_lookups() {
        let summary = CellSummary {
            cm_name: "X".into(),
            makespan: 100,
            buckets: TimeBuckets::default(),
            commits: 4,
            aborts: 1,
            stalls: 0,
            per_stx: vec![(0, 2, 1), (1, 2, 0)],
            conflict_edges: vec![(0, 1), (1, 1)],
            similarity: vec![(1, 0.5)],
            latency: None,
        };
        assert_eq!(summary.conflict_row(1), vec![0, 1]);
        assert_eq!(summary.measured_similarity(1), Some(0.5));
        assert_eq!(summary.measured_similarity(9), None);
        assert!((summary.contention_rate() - 0.2).abs() < 1e-12);
        assert_eq!(summary.speedup_over(200), 2.0);
    }

    fn open_cell() -> RunCell {
        RunCell::one(&tiny_spec(), ManagerKind::BfgtsHw, Platform::small())
            .open(bfgts_workloads::ArrivalSpec::poisson(1500))
    }

    #[test]
    fn open_cells_key_separately_and_report_latency() {
        let closed = RunCell::one(&tiny_spec(), ManagerKind::BfgtsHw, Platform::small());
        let open = open_cell();
        assert_ne!(closed.cache_key(), open.cache_key());
        let summary = open.execute();
        let latency = summary.latency.expect("open runs report latency");
        assert!(latency.count > 0);
        assert!(latency.p50 <= latency.p95 && latency.p95 <= latency.p99);
        assert!(latency.tx_per_sec > 0.0);
        assert_eq!(closed.execute().latency, None, "closed runs report none");
    }

    #[test]
    fn open_summaries_round_trip_and_audit_clean() {
        let cell = open_cell();
        let summary = cell.execute();
        let round = CellSummary::from_json(&summary.to_json("k")).expect("parses");
        assert_eq!(summary, round);
        assert_eq!(
            round.latency.unwrap().tx_per_sec.to_bits(),
            summary.latency.unwrap().tx_per_sec.to_bits()
        );
        // The I9 arrival-causality invariant holds through the full
        // scenario -> sources -> engine -> trace path.
        let report = cell.execute_report(TraceMode::Full);
        let audit = report.audit().expect("open-system audit clean");
        assert!(audit.tx_arrivals > 0);
        assert_eq!(audit.sojourn_cycles, report.stats.sojourn_total());
    }

    #[test]
    fn open_scenarios_replay_from_their_files() {
        let cell = open_cell();
        let text = cell.scenario.to_json().to_string();
        let parsed = bfgts_scenario::Scenario::from_json(&Json::parse(&text).unwrap()).unwrap();
        let rebuilt = RunCell::from_scenario(parsed).unwrap();
        assert_eq!(rebuilt.cache_key(), cell.cache_key());
        assert_eq!(rebuilt.execute(), cell.execute());
    }

    #[test]
    fn open_system_jsonl_identical_across_queue_kinds() {
        // The arrival schedule is a pure function of (spec, seed,
        // thread): the event-queue flavour must not leak into the
        // open-system stream, down to the exported bytes.
        let spec = tiny_spec();
        let arrivals = bfgts_workloads::ArrivalSpec::poisson(1200);
        let mk = |queue| {
            let cfg = bfgts_htm::TmRunConfig::new(4, 8)
                .seed(0xB16_B00B5)
                .queue(queue)
                .trace(TraceMode::Full);
            let report = run_workload(
                &cfg,
                open_sources(spec.sources(8), &arrivals, 0xB16_B00B5),
                Box::new(BackoffCm::default()),
            );
            report.audit_or_panic();
            let inputs = report.audit_inputs();
            crate::trace_export::to_jsonl(&report.sim.trace, &inputs)
        };
        let heap = mk(bfgts_sim::EventQueueKind::Heap);
        let calendar = mk(bfgts_sim::EventQueueKind::Calendar);
        assert!(heap.contains("tx_arrival"), "stream records arrivals");
        assert_eq!(heap, calendar, "queue flavour changed the stream");
    }

    #[test]
    fn open_grids_identical_across_worker_counts() {
        let spec = tiny_spec();
        let p = Platform::small();
        let cells = vec![
            RunCell::serial(&spec, p),
            open_cell(),
            RunCell::one(&spec, ManagerKind::Backoff, p)
                .open(bfgts_workloads::ArrivalSpec::poisson(900)),
        ];
        let solo = run_grid(
            &cells,
            &RunnerOptions {
                jobs: 1,
                cache_dir: None,
            },
        );
        let four = run_grid(
            &cells,
            &RunnerOptions {
                jobs: 4,
                cache_dir: None,
            },
        );
        assert_eq!(solo, four, "worker count changed an open-system grid");
    }

    #[test]
    fn committed_open_fixtures_keep_their_golden_ids() {
        // Golden ids of the committed open-system fixtures, plus the
        // absent-key protocol: deleting the `arrivals` key from an open
        // document must yield exactly the id the closed scenario had
        // before the field existed.
        let read = |name: &str| {
            let path = format!("../../examples/scenarios/{name}");
            let text = std::fs::read_to_string(&path).expect("fixture exists");
            Json::parse(&text).expect("fixture parses")
        };
        let poisson = read("open_poisson_kmeans_paper.scenario.json");
        let open = bfgts_scenario::Scenario::from_json(&poisson).unwrap();
        assert_eq!(open.id(), "bae0d7f48138d24b95c6da12829a6ace");
        assert_eq!(
            bfgts_scenario::Scenario::from_json(&read("open_bursty_diurnal_small.scenario.json"))
                .unwrap()
                .id(),
            "d3a1037bd7f0d0573ee3b7a4c1cd7018"
        );
        let mut closed_doc = poisson;
        if let Json::Obj(map) = &mut closed_doc {
            map.remove("arrivals");
        }
        let closed = bfgts_scenario::Scenario::from_json(&closed_doc).unwrap();
        assert_eq!(closed.arrivals, None);
        assert_eq!(closed.id(), "57d48c145435d44253daa69da69644fd");
        let mut stripped = open.clone();
        stripped.arrivals = None;
        assert_eq!(stripped.id(), closed.id(), "absent-key id protocol");
    }
}
