//! End-to-end identity of the scenario path (DESIGN.md §10): a grid
//! emitted as a scenario file and re-executed through
//! [`RunCell::from_scenario`] — the `bfgts_run` path — must produce the
//! same cache keys, byte-identical summaries and the identical set of
//! disk-cache entries as the originating binary's grid.

use bfgts_baselines::BackoffCm;
use bfgts_bench::runner::{emit_scenarios, run_grid, RunCell, RunnerOptions};
use bfgts_bench::{BfgtsTunables, ManagerKind, ManagerSpec, Platform};
use bfgts_core::BfgtsVariant;
use bfgts_workloads::presets;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "bfgts-scenario-identity-{tag}-{}",
        std::process::id()
    ))
}

fn cache_entries(dir: &Path) -> BTreeSet<String> {
    match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect(),
        Err(_) => BTreeSet::new(),
    }
}

/// A small grid shaped like the experiment binaries build: serial
/// baseline, roster managers, a tuned BFGTS cell, a faulted cell.
fn sample_grid() -> Vec<RunCell> {
    let spec = presets::kmeans().scaled(0.02);
    let genome = presets::genome().scaled(0.02);
    let p = Platform::small();
    vec![
        RunCell::serial(&spec, p),
        RunCell::one(&spec, ManagerKind::Backoff, p),
        RunCell::one(&spec, ManagerKind::BfgtsHw, p),
        RunCell::with_manager(
            &spec,
            p,
            ManagerSpec::Bfgts(
                BfgtsTunables::new(BfgtsVariant::Hw)
                    .bloom_bits(512)
                    .small_tx_interval(10),
            ),
        ),
        RunCell::one(&genome, ManagerKind::Pts, p).stm(),
        RunCell::one(&genome, ManagerKind::BfgtsSw, p).faulted(11),
    ]
}

#[test]
fn emitted_scenarios_replay_byte_identically() {
    let dir = temp_dir("emit");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("grid.scenarios.json");

    let cells = sample_grid();
    emit_scenarios(&file, &cells).unwrap();

    let text = std::fs::read_to_string(&file).unwrap();
    let scenarios = bfgts_scenario::scenarios_from_str(&text).unwrap();
    assert_eq!(scenarios.len(), cells.len());
    let replayed: Vec<RunCell> = scenarios
        .into_iter()
        .map(|s| RunCell::from_scenario(s).expect("emitted scenarios are executable"))
        .collect();

    for (original, replay) in cells.iter().zip(&replayed) {
        assert_eq!(
            original.cache_key(),
            replay.cache_key(),
            "the scenario file must preserve the cache identity"
        );
        assert_eq!(
            original.execute(),
            replay.execute(),
            "the scenario file must preserve the result, byte for byte"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn both_paths_share_one_disk_cache() {
    let grid_cache = temp_dir("grid-cache");
    let replay_cache = temp_dir("replay-cache");
    let _ = std::fs::remove_dir_all(&grid_cache);
    let _ = std::fs::remove_dir_all(&replay_cache);

    let cells = sample_grid();
    let direct = run_grid(
        &cells,
        &RunnerOptions {
            jobs: 2,
            cache_dir: Some(grid_cache.clone()),
        },
    );

    let file = temp_dir("emit2").join("grid.scenarios.json");
    emit_scenarios(&file, &cells).unwrap();
    let replayed: Vec<RunCell> =
        bfgts_scenario::scenarios_from_str(&std::fs::read_to_string(&file).unwrap())
            .unwrap()
            .into_iter()
            .map(|s| RunCell::from_scenario(s).unwrap())
            .collect();
    let via_file = run_grid(
        &replayed,
        &RunnerOptions {
            jobs: 2,
            cache_dir: Some(replay_cache.clone()),
        },
    );

    assert_eq!(direct, via_file, "summaries must match byte for byte");
    assert_eq!(
        cache_entries(&grid_cache),
        cache_entries(&replay_cache),
        "both execution paths must write the identical cache file set"
    );

    // And a second replay run is served entirely from the first run's
    // cache: the file set does not change.
    let before = cache_entries(&replay_cache);
    let again = run_grid(
        &replayed,
        &RunnerOptions {
            jobs: 1,
            cache_dir: Some(replay_cache.clone()),
        },
    );
    assert_eq!(again, via_file);
    assert_eq!(before, cache_entries(&replay_cache));

    let _ = std::fs::remove_dir_all(&grid_cache);
    let _ = std::fs::remove_dir_all(&replay_cache);
    let _ = std::fs::remove_dir_all(temp_dir("emit2"));
}

#[test]
fn custom_cells_stay_out_of_the_cache_and_the_scenario_path() {
    let cache = temp_dir("custom");
    let _ = std::fs::remove_dir_all(&cache);

    let spec = presets::kmeans().scaled(0.02);
    let cell = RunCell::custom(&spec, Platform::small(), "opaque", || {
        Box::new(BackoffCm::default())
    });
    assert!(!cell.cacheable());
    assert!(RunCell::from_scenario(cell.scenario.clone()).is_err());

    let _ = run_grid(
        std::slice::from_ref(&cell),
        &RunnerOptions {
            jobs: 1,
            cache_dir: Some(cache.clone()),
        },
    );
    assert_eq!(
        cache_entries(&cache).len(),
        0,
        "closure-built cells must never be persisted"
    );
    let _ = std::fs::remove_dir_all(&cache);
}
