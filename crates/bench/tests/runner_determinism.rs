//! The runner's core guarantee: the worker count never changes results.
//! Every cell is a deterministic simulation, so a grid run with one
//! worker and the same grid run with four must agree bit for bit —
//! including the f64 similarity statistics — and a summary served from
//! the on-disk cache must be indistinguishable from a fresh simulation.

use bfgts_bench::runner::{run_grid, RunCell, RunnerOptions};
use bfgts_bench::{ManagerKind, Platform};
use bfgts_testkit::{run_cases, Gen};
use bfgts_workloads::presets;
use std::path::PathBuf;

fn opts(jobs: usize, cache_dir: Option<PathBuf>) -> RunnerOptions {
    RunnerOptions { jobs, cache_dir }
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bfgts-runner-test-{tag}-{}", std::process::id()))
}

/// Asserts two grid results agree bit for bit, f64s included.
fn assert_bitwise_identical(
    a: &[bfgts_bench::runner::CellSummary],
    b: &[bfgts_bench::runner::CellSummary],
) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x, y);
        assert_eq!(x.similarity.len(), y.similarity.len());
        for ((sx, vx), (sy, vy)) in x.similarity.iter().zip(&y.similarity) {
            assert_eq!(sx, sy);
            assert_eq!(vx.to_bits(), vy.to_bits(), "similarity bits differ");
        }
    }
}

#[test]
fn four_workers_match_sequential_on_every_preset() {
    let platform = Platform::small();
    let cells: Vec<RunCell> = presets::all()
        .into_iter()
        .map(|spec| spec.scaled(0.05))
        .flat_map(|spec| {
            vec![
                RunCell::serial(&spec, platform),
                RunCell::one(&spec, ManagerKind::Backoff, platform),
                RunCell::one(&spec, ManagerKind::BfgtsHw, platform),
            ]
        })
        .collect();
    let sequential = run_grid(&cells, &opts(1, None));
    let parallel = run_grid(&cells, &opts(4, None));
    assert_bitwise_identical(&sequential, &parallel);
}

#[test]
fn worker_count_sweep_is_stable() {
    let platform = Platform::small();
    let spec = presets::intruder().scaled(0.05);
    let cells = vec![
        RunCell::serial(&spec, platform),
        RunCell::one(&spec, ManagerKind::Ats, platform),
        RunCell::one(&spec, ManagerKind::BfgtsHwBackoff, platform),
        RunCell::one(&spec, ManagerKind::Pts, platform),
    ];
    let reference = run_grid(&cells, &opts(1, None));
    for jobs in [2, 3, 8, 64] {
        let got = run_grid(&cells, &opts(jobs, None));
        assert_bitwise_identical(&reference, &got);
    }
}

#[test]
fn cached_cells_agree_with_fresh_cells_on_random_grids() {
    // Property: for any random grid, (a) a cache-populating run, (b) a
    // cache-served rerun and (c) an uncached run all agree exactly.
    let specs: Vec<_> = presets::all().into_iter().map(|s| s.scaled(0.02)).collect();
    run_cases("cached_equals_fresh", 8, |g: &mut Gen| {
        let dir = temp_dir(&format!("prop-{:016x}", g.u64()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut platform = Platform::small();
        platform.seed = g.u64();
        let n_cells = g.usize_in(1, 6);
        let cells: Vec<RunCell> = (0..n_cells)
            .map(|_| {
                let spec = g.choose(&specs).clone();
                if g.bool() {
                    RunCell::serial(&spec, platform)
                } else {
                    let kind = *g.choose(&ManagerKind::ALL);
                    let cell = RunCell::one(&spec, kind, platform);
                    if g.bool() {
                        cell.stm()
                    } else {
                        cell
                    }
                }
            })
            .collect();
        let populating = run_grid(&cells, &opts(2, Some(dir.clone())));
        let served = run_grid(&cells, &opts(2, Some(dir.clone())));
        let uncached = run_grid(&cells, &opts(2, None));
        assert_bitwise_identical(&populating, &served);
        assert_bitwise_identical(&populating, &uncached);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn duplicate_keys_memoise_within_a_grid() {
    // Six copies of one serial baseline: the grid must return six equal
    // summaries (and computes the cell once — observable as a single
    // cache file).
    let dir = temp_dir("memo");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = presets::kmeans().scaled(0.02);
    let cells: Vec<RunCell> = (0..6)
        .map(|_| RunCell::serial(&spec, Platform::small()))
        .collect();
    let results = run_grid(&cells, &opts(4, Some(dir.clone())));
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        1,
        "one unique key must produce exactly one cache entry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
