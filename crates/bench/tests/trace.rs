//! End-to-end tests of the trace subsystem through the experiment
//! runner: golden-trace byte-identity (the JSONL export is part of the
//! determinism contract of DESIGN.md §7), the accounting audit on every
//! STAMP preset at the paper's platform shape, and randomised audits of
//! the full BFGTS stack.

use bfgts_bench::runner::{chrome_trace_path, run_grid_with_args, RunCell};
use bfgts_bench::trace_export::{parse_jsonl, to_jsonl};
use bfgts_bench::{CommonArgs, ManagerKind, Platform};
use bfgts_core::{BfgtsCm, BfgtsConfig};
use bfgts_htm::{
    run_workload, Access, ContentionManager, NullCm, STxId, ScriptSource, TmRunConfig, TmRunReport,
    TxInstance,
};
use bfgts_sim::TraceMode;
use bfgts_testkit::run_cases;
use bfgts_workloads::presets;
use std::path::PathBuf;

/// The determinism regression workload of `crates/htm/tests/determinism.rs`:
/// four threads hammering an overlapping 8-line window.
fn conflicting_scripts(threads: usize, txs_per_thread: usize) -> Vec<ScriptSource> {
    (0..threads)
        .map(|t| {
            let txs = (0..txs_per_thread)
                .map(|i| {
                    let accesses = (0..6u64)
                        .map(|k| Access {
                            addr: ((t as u64 + i as u64 + k) % 8).into(),
                            is_write: k % 2 == 0,
                        })
                        .collect();
                    TxInstance::new(STxId((i % 3) as u32), accesses, 25)
                })
                .collect();
            ScriptSource::new(txs)
        })
        .collect()
}

fn traced_jsonl(cm: Box<dyn ContentionManager>) -> String {
    let cfg = TmRunConfig::new(2, 4)
        .seed(0x00D0_0D1E)
        .trace(TraceMode::Full);
    let report = run_workload(&cfg, conflicting_scripts(4, 5), cm);
    to_jsonl(&report.sim.trace, &report.audit_inputs())
}

#[test]
fn golden_trace_is_byte_identical_across_runs() {
    let first = traced_jsonl(Box::new(NullCm));
    let second = traced_jsonl(Box::new(NullCm));
    assert_eq!(first, second, "NullCm trace must not vary between runs");

    // The BFGTS manager adds confidence updates and Bloom samples; those
    // must be just as reproducible, bit patterns included.
    let bfgts = || Box::new(BfgtsCm::new(BfgtsConfig::hw()));
    assert_eq!(traced_jsonl(bfgts()), traced_jsonl(bfgts()));

    // And the export survives a parse → re-export round trip untouched.
    let (recording, inputs) = parse_jsonl(&first).expect("own export parses");
    assert_eq!(to_jsonl(&recording, &inputs), first);
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bfgts_trace_test_{}_{name}", std::process::id()))
}

#[test]
fn trace_flag_output_is_byte_identical_across_jobs_counts() {
    let spec = presets::kmeans().scaled(0.02);
    let platform = Platform::small();
    let cells = vec![
        RunCell::serial(&spec, platform),
        RunCell::one(&spec, ManagerKind::BfgtsHw, platform),
        RunCell::one(&spec, ManagerKind::Backoff, platform),
    ];

    let run = |jobs: usize, trace: PathBuf| {
        let args = CommonArgs {
            platform,
            jobs,
            use_cache: false,
            trace: Some(trace),
            ..CommonArgs::default()
        };
        run_grid_with_args(&cells, &args)
    };
    let path_j1 = temp_path("j1.jsonl");
    let path_j4 = temp_path("j4.jsonl");
    let summaries_j1 = run(1, path_j1.clone());
    let summaries_j4 = run(4, path_j4.clone());
    assert_eq!(summaries_j1, summaries_j4, "grid results depend on --jobs");

    let bytes_j1 = std::fs::read(&path_j1).expect("jsonl written");
    let bytes_j4 = std::fs::read(&path_j4).expect("jsonl written");
    assert!(!bytes_j1.is_empty());
    assert_eq!(bytes_j1, bytes_j4, "JSONL trace depends on --jobs");
    let chrome_j1 = std::fs::read(chrome_trace_path(&path_j1)).expect("chrome written");
    let chrome_j4 = std::fs::read(chrome_trace_path(&path_j4)).expect("chrome written");
    assert_eq!(chrome_j1, chrome_j4, "Chrome trace depends on --jobs");

    for path in [&path_j1, &path_j4] {
        let _ = std::fs::remove_file(chrome_trace_path(path));
        let _ = std::fs::remove_file(path);
    }
}

/// Satellite of the tracing work: the audit must hold on every STAMP
/// preset at the paper's 16-CPU / 64-thread shape, not just on toy
/// workloads (scaled down so the traced re-runs stay fast).
#[test]
fn every_stamp_preset_audits_clean_at_the_paper_shape() {
    let platform = Platform::paper();
    for spec in presets::all() {
        let spec = spec.scaled(0.05);
        let report =
            RunCell::one(&spec, ManagerKind::BfgtsHw, platform).execute_report(TraceMode::Full);
        let summary = report.audit_or_panic();
        assert_eq!(
            summary.commits,
            report.stats.commits(),
            "{}: audit and stats disagree",
            spec.name
        );
        assert_eq!(summary.per_cpu_busy.len(), platform.cpus);
    }
}

#[test]
fn random_bfgts_workloads_audit_clean() {
    run_cases("bfgts_trace_audit", 12, |g| {
        let threads = g.usize_in(2, 6);
        let scripts: Vec<ScriptSource> = (0..threads)
            .map(|_| {
                let txs = (0..g.usize_in(1, 4))
                    .map(|_| {
                        let accesses = (0..g.usize_in(1, 14))
                            .map(|_| Access {
                                addr: g.below(20).into(),
                                is_write: g.bool(),
                            })
                            .collect();
                        TxInstance::new(STxId(g.u32_in(0, 3)), accesses, g.u64_in(10, 50))
                    })
                    .collect();
                ScriptSource::new(txs)
            })
            .collect();
        let cfg = TmRunConfig::new(2, threads)
            .seed(g.u64())
            .trace(TraceMode::Full);
        let report: TmRunReport =
            run_workload(&cfg, scripts, Box::new(BfgtsCm::new(BfgtsConfig::hw())));
        report.audit_or_panic();
    });
}
