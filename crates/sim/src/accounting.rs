//! Cycle-bucket accounting matching the paper's Figure 5 breakdown.

use crate::time::Cycle;
use std::fmt;
use std::ops::{Add, AddAssign};

/// The execution-time category a slice of cycles belongs to.
///
/// These are the five categories of the paper's Figure 5 runtime
/// breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Useful work outside any transaction.
    NonTx,
    /// Kernel mode: context switches, yields, futex waits, OS bookkeeping.
    Kernel,
    /// Useful work inside transactions that eventually committed.
    Tx,
    /// Wasted work: cycles spent in transactions that aborted, plus
    /// rollback costs and post-abort backoff stalls.
    Abort,
    /// Contention-manager overhead: begin-time prediction scans, commit
    /// bookkeeping, similarity calculations, confidence updates.
    Scheduling,
}

impl Bucket {
    /// All buckets in report order.
    pub const ALL: [Bucket; 5] = [
        Bucket::NonTx,
        Bucket::Kernel,
        Bucket::Tx,
        Bucket::Abort,
        Bucket::Scheduling,
    ];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Bucket::NonTx => "non-tx",
            Bucket::Kernel => "kernel",
            Bucket::Tx => "tx",
            Bucket::Abort => "abort",
            Bucket::Scheduling => "sched",
        }
    }

    /// The tracing vocabulary's mirror of this bucket (the `bfgts-trace`
    /// crate is a leaf and defines its own copy of the five categories).
    pub fn trace_kind(self) -> bfgts_trace::BucketKind {
        match self {
            Bucket::NonTx => bfgts_trace::BucketKind::NonTx,
            Bucket::Kernel => bfgts_trace::BucketKind::Kernel,
            Bucket::Tx => bfgts_trace::BucketKind::Tx,
            Bucket::Abort => bfgts_trace::BucketKind::Abort,
            Bucket::Scheduling => bfgts_trace::BucketKind::Scheduling,
        }
    }
}

impl fmt::Display for Bucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-bucket cycle totals for one thread or one whole run.
///
/// # Example
///
/// ```
/// use bfgts_sim::{Bucket, TimeBuckets};
/// let mut t = TimeBuckets::default();
/// t.charge(Bucket::Tx, 75);
/// t.charge(Bucket::Abort, 25);
/// assert_eq!(t.total_cycles(), 100);
/// assert!((t.fraction(Bucket::Tx) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBuckets {
    non_tx: u64,
    kernel: u64,
    tx: u64,
    abort: u64,
    scheduling: u64,
}

impl TimeBuckets {
    /// Adds `cycles` to `bucket`. (Named `charge` to avoid clashing with
    /// [`std::ops::Add::add`].)
    pub fn charge(&mut self, bucket: Bucket, cycles: u64) {
        let slot = self.slot(bucket);
        *slot = slot
            .checked_add(cycles)
            .expect("bucket accounting overflowed u64");
    }

    /// Adds a [`Cycle`] duration to `bucket`.
    pub fn add_cycles(&mut self, bucket: Bucket, cycles: Cycle) {
        self.charge(bucket, cycles.as_u64());
    }

    /// Cycles recorded in `bucket`.
    pub fn get(&self, bucket: Bucket) -> u64 {
        match bucket {
            Bucket::NonTx => self.non_tx,
            Bucket::Kernel => self.kernel,
            Bucket::Tx => self.tx,
            Bucket::Abort => self.abort,
            Bucket::Scheduling => self.scheduling,
        }
    }

    fn slot(&mut self, bucket: Bucket) -> &mut u64 {
        match bucket {
            Bucket::NonTx => &mut self.non_tx,
            Bucket::Kernel => &mut self.kernel,
            Bucket::Tx => &mut self.tx,
            Bucket::Abort => &mut self.abort,
            Bucket::Scheduling => &mut self.scheduling,
        }
    }

    /// Moves up to `cycles` from one bucket to another (saturating at the
    /// source bucket's balance) and returns how many cycles actually
    /// moved. Used when work charged optimistically to [`Bucket::Tx`]
    /// turns out to be wasted: an abort re-files it under
    /// [`Bucket::Abort`]. A return value smaller than `cycles` means the
    /// caller asked to move cycles it never charged — correct accounting
    /// never saturates here, and the tracing audit treats it as a
    /// violation (see `bfgts_trace::audit`).
    pub fn transfer(&mut self, from: Bucket, to: Bucket, cycles: u64) -> u64 {
        let moved = cycles.min(self.get(from));
        let src = self.slot(from);
        *src = src
            .checked_sub(moved)
            .expect("transfer moves at most the source balance");
        let dst = self.slot(to);
        *dst = dst
            .checked_add(moved)
            .expect("bucket accounting overflowed u64");
        moved
    }

    /// Sum over all buckets.
    pub fn total_cycles(&self) -> u64 {
        self.non_tx + self.kernel + self.tx + self.abort + self.scheduling
    }

    /// Fraction of the total in `bucket`; 0 when empty.
    pub fn fraction(&self, bucket: Bucket) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.get(bucket) as f64 / total as f64
        }
    }

    /// Normalised `(bucket, fraction)` pairs in report order.
    pub fn breakdown(&self) -> [(Bucket, f64); 5] {
        Bucket::ALL.map(|b| (b, self.fraction(b)))
    }
}

impl Add for TimeBuckets {
    type Output = TimeBuckets;
    fn add(self, rhs: TimeBuckets) -> TimeBuckets {
        TimeBuckets {
            non_tx: self.non_tx + rhs.non_tx,
            kernel: self.kernel + rhs.kernel,
            tx: self.tx + rhs.tx,
            abort: self.abort + rhs.abort,
            scheduling: self.scheduling + rhs.scheduling,
        }
    }
}

impl AddAssign for TimeBuckets {
    fn add_assign(&mut self, rhs: TimeBuckets) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for TimeBuckets {
    fn sum<I: Iterator<Item = TimeBuckets>>(iter: I) -> TimeBuckets {
        iter.fold(TimeBuckets::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut t = TimeBuckets::default();
        t.charge(Bucket::Kernel, 10);
        t.charge(Bucket::Kernel, 5);
        assert_eq!(t.get(Bucket::Kernel), 15);
        assert_eq!(t.get(Bucket::Tx), 0);
    }

    #[test]
    fn total_sums_all_buckets() {
        let mut t = TimeBuckets::default();
        for (i, b) in Bucket::ALL.into_iter().enumerate() {
            t.charge(b, (i + 1) as u64);
        }
        assert_eq!(t.total_cycles(), 15);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut t = TimeBuckets::default();
        t.charge(Bucket::NonTx, 30);
        t.charge(Bucket::Tx, 50);
        t.charge(Bucket::Abort, 20);
        let sum: f64 = t.breakdown().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let t = TimeBuckets::default();
        assert_eq!(t.fraction(Bucket::Tx), 0.0);
        assert_eq!(t.total_cycles(), 0);
    }

    #[test]
    fn buckets_combine_with_add() {
        let mut a = TimeBuckets::default();
        a.charge(Bucket::Tx, 1);
        let mut b = TimeBuckets::default();
        b.charge(Bucket::Tx, 2);
        b.charge(Bucket::Abort, 3);
        let c = a + b;
        assert_eq!(c.get(Bucket::Tx), 3);
        assert_eq!(c.get(Bucket::Abort), 3);
        let s: TimeBuckets = [a, b].into_iter().sum();
        assert_eq!(s, c);
    }

    #[test]
    fn transfer_moves_between_buckets() {
        let mut t = TimeBuckets::default();
        t.charge(Bucket::Tx, 100);
        assert_eq!(t.transfer(Bucket::Tx, Bucket::Abort, 60), 60);
        assert_eq!(t.get(Bucket::Tx), 40);
        assert_eq!(t.get(Bucket::Abort), 60);
        assert_eq!(t.total_cycles(), 100);
    }

    #[test]
    fn transfer_saturates_at_source_balance() {
        let mut t = TimeBuckets::default();
        t.charge(Bucket::Tx, 10);
        assert_eq!(t.transfer(Bucket::Tx, Bucket::Abort, 999), 10);
        assert_eq!(t.get(Bucket::Tx), 0);
        assert_eq!(t.get(Bucket::Abort), 10);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Bucket::Scheduling.label(), "sched");
        assert_eq!(Bucket::NonTx.to_string(), "non-tx");
    }
}
