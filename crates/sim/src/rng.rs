//! Deterministic pseudo-random number generation for the simulator.
//!
//! Everything random in a simulation run — workload address streams,
//! backoff jitter, tie-breaking — flows from [`SimRng`], a xoshiro256++
//! generator seeded from the experiment seed. Identical seeds give
//! bit-identical runs, which the test suite and the experiment harness rely
//! on.

/// A xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use bfgts_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent stream for a sub-entity (e.g. one thread of a
    /// run) without correlating with the parent stream.
    pub fn derive(&self, stream: u64) -> Self {
        let mut s = self.state[0] ^ stream.wrapping_mul(0xa076_1d64_78bd_642f);
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let s3n = s3 ^ s1;
        let s1n = s1 ^ s2;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        self.state = [s0n, s1n, s2n, s3n.rotate_left(45)];
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Approximate geometric jitter used by backoff: uniform in
    /// `[0, bound]`.
    pub fn jitter(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.gen_range(bound + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derived_streams_are_independent() {
        let parent = SimRng::seed_from(9);
        let mut c1 = parent.derive(0);
        let mut c2 = parent.derive(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
        // Deriving twice with the same stream id gives the same stream.
        let mut c1b = parent.derive(0);
        let mut c1a = parent.derive(0);
        assert_eq!(c1a.next_u64(), c1b.next_u64());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..10_000 {
            assert!(r.gen_range(17) < 17);
        }
        assert_eq!(r.gen_range(1), 0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn gen_range_zero_panics() {
        SimRng::seed_from(0).gen_range(0);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SimRng::seed_from(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} not uniform");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::seed_from(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn jitter_zero_bound() {
        let mut r = SimRng::seed_from(5);
        assert_eq!(r.jitter(0), 0);
        assert!(r.jitter(4) <= 4);
    }
}
