//! Pending-event storage for the engine.
//!
//! The engine keeps at most one armed service event per CPU, ordered by
//! `(time, seq)` (the arming sequence number is unique, so the CPU index
//! never participates in ordering — it is payload). Two interchangeable
//! structures implement that order:
//!
//! * [`EventQueueKind::Heap`] — the original global
//!   `BinaryHeap<Reverse<(Cycle, u64, usize)>>`: `O(log n)` per push/pop,
//!   where `n` is the number of armed CPUs.
//! * [`EventQueueKind::Calendar`] — an indexed calendar queue: a ring of
//!   `WINDOW` (8192) cycle-granularity buckets with a two-level occupancy
//!   bitmap, plus a sorted overflow tier for events beyond the window.
//!   Push and pop are `O(1)` amortized, independent of the number of
//!   armed CPUs, which is what lets the engine scale from the paper's
//!   16 CPUs to 1024 (DESIGN.md §11).
//!
//! Both produce the exact same pop sequence (proven by the differential
//! tests below and `tests/tie_break.rs`), so simulation results are
//! byte-identical regardless of the structure chosen.

use crate::time::Cycle;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One pending service event: `(time, seq, cpu)`.
pub type Event = (Cycle, u64, usize);

/// Which pending-event structure the engine uses. Not part of a
/// scenario's identity: results are byte-identical either way, so the
/// choice is a pure wall-clock knob (`bench_scale` measures both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventQueueKind {
    /// Indexed calendar queue, `O(1)` amortized per event (the default).
    #[default]
    Calendar,
    /// Global binary heap, `O(log n)` per event. Kept as the
    /// differential-testing oracle and the benchmark baseline.
    Heap,
}

/// Number of cycle-granularity buckets in the calendar ring. Must be a
/// power of two. Events at most `WINDOW - 1` cycles ahead of the cursor
/// land in the ring; later ones wait in the sorted overflow tier. 8192
/// covers every per-step latency of the default cost model (the largest,
/// a context switch plus a long transaction body, is a few thousand
/// cycles), so overflow traffic is rare in practice.
const WINDOW: u64 = 8192;
const MASK: u64 = WINDOW - 1;
/// `u64` words in the first-level occupancy bitmap.
const WORDS: usize = (WINDOW / 64) as usize;
/// `u64` words in the second-level (summary) bitmap: bit `w` of the
/// summary is set iff first-level word `w` is non-zero.
const SUMMARY_WORDS: usize = WORDS.div_ceil(64);

/// One ring bucket: every entry shares the same event time, so only the
/// `(seq, cpu)` payload is stored. Entries are appended in arming order,
/// which is seq order (the engine's sequence counter is monotonic), and
/// drained through `head` so same-cycle arm-during-drain keeps FIFO
/// order without shifting the vector.
#[derive(Debug, Default, Clone)]
struct Slot {
    items: Vec<(u64, usize)>,
    head: usize,
}

impl Slot {
    fn is_drained(&self) -> bool {
        self.head == self.items.len()
    }

    fn push(&mut self, seq: u64, cpu: usize) {
        if self.is_drained() && self.head != 0 {
            self.items.clear();
            self.head = 0;
        }
        self.items.push((seq, cpu));
    }
}

/// The indexed calendar queue.
///
/// Invariants, maintained by migrating overflow entries eagerly on every
/// cursor advance:
///
/// * every ring entry's time is in `[cursor, cursor + WINDOW)`;
/// * every overflow key is `>= cursor + WINDOW`;
///
/// so the ring always holds the global minimum, bucket index `time &
/// MASK` identifies a unique time within the window, and a bucket's
/// append order is seq order even across the overflow migration (all
/// same-time pushes before the time enters the window queue up in the
/// overflow vector, in seq order; all later ones append to the ring
/// bucket after the migration).
#[derive(Debug)]
pub struct CalendarQueue {
    /// Lower bound on every stored event time (the last popped time).
    cursor: u64,
    /// Total stored events, ring + overflow.
    len: usize,
    buckets: Vec<Slot>,
    words: [u64; WORDS],
    summary: [u64; SUMMARY_WORDS],
    overflow: BTreeMap<u64, Vec<(u64, usize)>>,
    overflow_len: usize,
    /// Smallest overflow key, `u64::MAX` when the overflow is empty.
    overflow_min: u64,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// An empty queue with its cursor at cycle zero.
    pub fn new() -> Self {
        Self {
            cursor: 0,
            len: 0,
            buckets: vec![Slot::default(); WINDOW as usize],
            words: [0; WORDS],
            summary: [0; SUMMARY_WORDS],
            overflow: BTreeMap::new(),
            overflow_len: 0,
            overflow_min: u64::MAX,
        }
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an event. `time` must not precede the last popped time
    /// (the engine only arms at or after `now`), and successive pushes
    /// must carry increasing `seq` values (the engine's arming counter
    /// is monotonic) — same-time entries are kept in arrival order,
    /// which equals seq order exactly under that contract.
    pub fn push(&mut self, time: Cycle, seq: u64, cpu: usize) {
        let t = time.as_u64();
        let ahead = t
            .checked_sub(self.cursor)
            .expect("event time precedes the cursor");
        self.len += 1;
        if ahead >= WINDOW {
            self.overflow_len += 1;
            self.overflow_min = self.overflow_min.min(t);
            self.overflow.entry(t).or_default().push((seq, cpu));
        } else {
            self.ring_insert(t, seq, cpu);
        }
    }

    /// Removes and returns the earliest event (smallest `(time, seq)`).
    pub fn pop(&mut self) -> Option<Event> {
        if self.len == 0 {
            return None;
        }
        if self.len == self.overflow_len {
            // Ring exhausted: jump the window to the overflow front.
            self.cursor = self.overflow_min;
            self.migrate();
        }
        let start = (self.cursor & MASK) as usize;
        let idx = self.find_next(start);
        let dist = (idx as u64).wrapping_sub(self.cursor) & MASK;
        let t = self
            .cursor
            .checked_add(dist)
            .expect("ring distance keeps event times in u64 range");
        let slot = self
            .buckets
            .get_mut(idx)
            .expect("find_next is a ring index");
        let &(seq, cpu) = slot
            .items
            .get(slot.head)
            .expect("occupied bucket has an undrained entry");
        slot.head += 1;
        if slot.is_drained() {
            self.clear_bit(idx);
        }
        self.len -= 1;
        if t != self.cursor {
            self.cursor = t;
            self.migrate();
        }
        Some((Cycle::new(t), seq, cpu))
    }

    fn ring_insert(&mut self, t: u64, seq: u64, cpu: usize) {
        let idx = (t & MASK) as usize;
        self.buckets
            .get_mut(idx)
            .expect("masked time is a ring index")
            .push(seq, cpu);
        *self
            .words
            .get_mut(idx >> 6)
            .expect("ring index maps into the bitmap") |= 1 << (idx & 63);
        *self
            .summary
            .get_mut(idx >> 12)
            .expect("ring index maps into the summary") |= 1 << ((idx >> 6) & 63);
    }

    fn clear_bit(&mut self, idx: usize) {
        let word = self
            .words
            .get_mut(idx >> 6)
            .expect("ring index maps into the bitmap");
        *word &= !(1 << (idx & 63));
        if *word == 0 {
            *self
                .summary
                .get_mut(idx >> 12)
                .expect("ring index maps into the summary") &= !(1 << ((idx >> 6) & 63));
        }
    }

    /// Moves every overflow entry that the advanced cursor brought into
    /// the window onto the ring. Called on every cursor advance, which
    /// is what keeps the two invariants above true.
    fn migrate(&mut self) {
        while self
            .overflow_min
            .checked_sub(self.cursor)
            .expect("overflow keys never precede the cursor")
            < WINDOW
        {
            let (t, items) = self
                .overflow
                .pop_first()
                .expect("overflow_min tracks a live key");
            debug_assert_eq!(t, self.overflow_min);
            self.overflow_len -= items.len();
            for (seq, cpu) in items {
                self.ring_insert(t, seq, cpu);
            }
            self.overflow_min = match self.overflow.keys().next() {
                Some(&k) => k,
                None => u64::MAX,
            };
        }
    }

    /// Index of the first occupied bucket at circular distance `>= 0`
    /// from `start`. Two bitmap levels make this a handful of word
    /// operations regardless of where the next event sits.
    fn find_next(&self, start: usize) -> usize {
        debug_assert!(self.len > self.overflow_len, "ring is empty");
        let w0 = start >> 6;
        let masked =
            self.words.get(w0).copied().expect("start is a ring index") & (!0u64 << (start & 63));
        if masked != 0 {
            return (w0 << 6) | masked.trailing_zeros() as usize;
        }
        let w = self
            .next_word(w0 + 1)
            .or_else(|| self.next_word(0))
            .expect("occupancy bitmap has a set bit");
        let word = self
            .words
            .get(w)
            .copied()
            .expect("next_word returns a bitmap index");
        (w << 6) | word.trailing_zeros() as usize
    }

    /// First non-zero first-level word at index `>= from`, via the
    /// summary bitmap (no wrap-around).
    fn next_word(&self, from: usize) -> Option<usize> {
        if from >= WORDS {
            return None;
        }
        let s0 = from >> 6;
        let masked = self
            .summary
            .get(s0)
            .copied()
            .expect("summary index derives from a ring index")
            & (!0u64 << (from & 63));
        if masked != 0 {
            return Some((s0 << 6) | masked.trailing_zeros() as usize);
        }
        self.summary
            .iter()
            .enumerate()
            .skip(s0 + 1)
            .find(|&(_, &word)| word != 0)
            .map(|(s, &word)| (s << 6) | word.trailing_zeros() as usize)
    }
}

/// The engine's pending-event set, behind the [`EventQueueKind`] switch.
#[derive(Debug)]
pub enum EventQueue {
    /// The original binary heap.
    Heap(BinaryHeap<Reverse<Event>>),
    /// The indexed calendar queue.
    Calendar(Box<CalendarQueue>),
}

impl EventQueue {
    /// An empty queue of the given kind.
    pub fn new(kind: EventQueueKind) -> Self {
        match kind {
            EventQueueKind::Heap => EventQueue::Heap(BinaryHeap::new()),
            EventQueueKind::Calendar => EventQueue::Calendar(Box::default()),
        }
    }

    /// Inserts an event.
    pub fn push(&mut self, time: Cycle, seq: u64, cpu: usize) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse((time, seq, cpu))),
            EventQueue::Calendar(c) => c.push(time, seq, cpu),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(e)| e),
            EventQueue::Calendar(c) => c.pop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn drain(q: &mut EventQueue) -> Vec<Event> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn empty_queues_pop_none() {
        for kind in [EventQueueKind::Heap, EventQueueKind::Calendar] {
            assert_eq!(EventQueue::new(kind).pop(), None);
        }
    }

    #[test]
    fn orders_by_time_then_seq() {
        // Seqs grow with push order (the engine's arming counter is
        // monotonic — the contract both structures order under).
        for kind in [EventQueueKind::Heap, EventQueueKind::Calendar] {
            let mut q = EventQueue::new(kind);
            q.push(Cycle::new(10), 1, 2);
            q.push(Cycle::new(5), 2, 3);
            q.push(Cycle::new(10), 3, 0);
            q.push(Cycle::new(5), 4, 1);
            let order = drain(&mut q);
            assert_eq!(
                order,
                vec![
                    (Cycle::new(5), 2, 3),
                    (Cycle::new(5), 4, 1),
                    (Cycle::new(10), 1, 2),
                    (Cycle::new(10), 3, 0),
                ],
                "{kind:?}"
            );
        }
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut q = CalendarQueue::new();
        q.push(Cycle::new(0), 1, 0);
        q.push(Cycle::new(WINDOW * 5 + 7), 2, 1);
        q.push(Cycle::new(3), 3, 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Cycle::new(0), 1, 0)));
        assert_eq!(q.pop(), Some((Cycle::new(3), 3, 2)));
        assert_eq!(q.pop(), Some((Cycle::new(WINDOW * 5 + 7), 2, 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_migration_preserves_seq_order_at_one_time() {
        // Two events at the same far-future time queue in overflow; a
        // third arrives at that time only once it is inside the window.
        // All three must drain in seq order.
        let t = WINDOW + 100;
        let mut q = CalendarQueue::new();
        q.push(Cycle::new(t), 1, 0);
        q.push(Cycle::new(t), 2, 1);
        q.push(Cycle::new(200), 3, 2);
        assert_eq!(q.pop(), Some((Cycle::new(200), 3, 2)));
        // Cursor is now 200: time t entered the window and migrated.
        q.push(Cycle::new(t), 4, 3);
        assert_eq!(q.pop(), Some((Cycle::new(t), 1, 0)));
        assert_eq!(q.pop(), Some((Cycle::new(t), 2, 1)));
        assert_eq!(q.pop(), Some((Cycle::new(t), 4, 3)));
    }

    #[test]
    fn same_cycle_push_during_drain_keeps_fifo() {
        let mut q = CalendarQueue::new();
        q.push(Cycle::new(7), 1, 0);
        q.push(Cycle::new(7), 2, 1);
        assert_eq!(q.pop(), Some((Cycle::new(7), 1, 0)));
        // Re-arm at the popped time mid-drain, as the engine does for
        // quantum preemption and same-cycle wakes.
        q.push(Cycle::new(7), 3, 2);
        assert_eq!(q.pop(), Some((Cycle::new(7), 2, 1)));
        assert_eq!(q.pop(), Some((Cycle::new(7), 3, 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_matches_heap_on_random_interleaved_traffic() {
        // Differential test: random pushes (with engine-like monotonic
        // times and seqs, including far-future overflow jumps) mixed
        // with pops must produce identical sequences from both kinds.
        let mut rng = SimRng::seed_from(0xCAFE);
        let mut heap = EventQueue::new(EventQueueKind::Heap);
        let mut cal = EventQueue::new(EventQueueKind::Calendar);
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut live = 0usize;
        for _ in 0..50_000 {
            let push = live == 0 || !rng.next_u64().is_multiple_of(3);
            if push {
                let gap = match rng.next_u64() % 10 {
                    0 => 0,
                    g @ 1..=7 => g * 37,
                    8 => WINDOW / 2,
                    _ => WINDOW * 3 + rng.next_u64() % 1000,
                };
                seq += 1;
                let cpu = (rng.next_u64() % 1024) as usize;
                let t = Cycle::new(now + gap);
                heap.push(t, seq, cpu);
                cal.push(t, seq, cpu);
                live += 1;
            } else {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(a, b);
                now = a.expect("live > 0").0.as_u64();
                live -= 1;
            }
        }
        loop {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
