//! Deterministic discrete-event multicore simulator substrate.
//!
//! The BFGTS paper evaluates contention managers on the M5 full-system
//! simulator: 16 single-IPC Alpha cores at 2 GHz running a modified Linux
//! kernel, with 64 application threads (four per core). This crate is the
//! reproduction's stand-in for that substrate: a single-threaded,
//! bit-deterministic discrete-event simulator that models
//!
//! * **CPUs** with per-CPU run queues and an OS scheduler (round-robin with
//!   a time quantum, `yield`, block/wake) so thread overcommit behaves like
//!   the paper's pthread environment,
//! * a **cost model** carrying the latency parameters of the paper's
//!   Table 2 (cache/memory latencies, `popcnt`/`fyl2x` instruction costs,
//!   kernel operation costs), and
//! * **cycle-bucket accounting** (non-transactional / kernel /
//!   transactional / abort / scheduling) matching the runtime breakdown of
//!   the paper's Figure 5.
//!
//! Thread behaviour is supplied by the caller through the [`ThreadLogic`]
//! trait, which is generic over a `World` — shared state such as a
//! transactional memory model (see the `bfgts-htm` crate). The engine calls
//! `step` each time a thread is scheduled and executes the returned
//! [`Action`].
//!
//! # Example: two threads ping-pong on one CPU
//!
//! ```
//! use bfgts_sim::{Action, Bucket, Engine, EngineConfig, ThreadCtx, ThreadLogic};
//!
//! struct Worker { remaining: u32 }
//! impl ThreadLogic<()> for Worker {
//!     fn step(&mut self, _world: &mut (), _ctx: &mut ThreadCtx) -> Action {
//!         if self.remaining == 0 {
//!             return Action::Finish;
//!         }
//!         self.remaining -= 1;
//!         Action::work(100, Bucket::NonTx)
//!     }
//! }
//!
//! let mut engine = Engine::new(EngineConfig::with_cpus(1), ());
//! engine.spawn(Box::new(Worker { remaining: 3 }));
//! engine.spawn(Box::new(Worker { remaining: 3 }));
//! let report = engine.run();
//! assert_eq!(report.total().get(Bucket::NonTx), 600);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod cost;
mod engine;
pub mod equeue;
pub mod ids;
pub mod rng;
pub mod time;

pub use accounting::{Bucket, TimeBuckets};
pub use cost::CostModel;
pub use engine::{Action, Engine, EngineConfig, RunReport, ThreadCtx, ThreadLogic};
pub use equeue::EventQueueKind;
pub use ids::{CpuId, ThreadId};
pub use rng::SimRng;
pub use time::Cycle;
// Re-exported so downstream crates can configure tracing without a direct
// `bfgts-trace` dependency.
pub use bfgts_trace::{
    window_priority, BucketKind, ConfKind, DecisionKind, TraceEvent, TraceMode, TraceRecording,
    TraceSink, NO_TARGET,
};
