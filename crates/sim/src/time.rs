//! Simulated time in processor cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, measured in cycles of the
/// simulated 2 GHz cores.
///
/// # Example
///
/// ```
/// use bfgts_sim::Cycle;
/// let t = Cycle::new(100) + Cycle::new(32);
/// assert_eq!(t.as_u64(), 132);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count.
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: Cycle) -> Cycle {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        Cycle(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_add(other.0))
    }

    /// Converts to seconds assuming the simulated 2 GHz clock.
    pub fn as_seconds_at_2ghz(self) -> f64 {
        self.0 as f64 / 2.0e9
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycle {
    fn from(cycles: u64) -> Self {
        Cycle(cycles)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cycle::new(5) + Cycle::new(3), Cycle::new(8));
        assert_eq!(Cycle::new(5) - Cycle::new(3), Cycle::new(2));
        let mut t = Cycle::ZERO;
        t += Cycle::new(7);
        assert_eq!(t.as_u64(), 7);
    }

    #[test]
    fn since_measures_duration() {
        assert_eq!(Cycle::new(10).since(Cycle::new(4)), Cycle::new(6));
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [1u64, 2, 3].into_iter().map(Cycle::new).sum();
        assert_eq!(total, Cycle::new(6));
    }

    #[test]
    fn ordering() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::ZERO, Cycle::new(0));
    }

    #[test]
    fn display() {
        assert_eq!(Cycle::new(42).to_string(), "42cy");
    }

    #[test]
    fn seconds_conversion() {
        assert!((Cycle::new(2_000_000_000).as_seconds_at_2ghz() - 1.0).abs() < 1e-12);
    }
}
