//! Simulated time in processor cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, measured in cycles of the
/// simulated 2 GHz cores.
///
/// # Example
///
/// ```
/// use bfgts_sim::Cycle;
/// let t = Cycle::new(100) + Cycle::new(32);
/// assert_eq!(t.as_u64(), 132);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count.
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in **all** builds if `earlier` is later than `self`. An
    /// earlier revision only `debug_assert`ed and saturated to zero in
    /// release builds, which let a backwards clock silently corrupt every
    /// downstream cycle-bucket figure; the tracing audit
    /// (`bfgts_trace::audit`) exists to catch exactly that class of bug,
    /// so the arithmetic itself must not paper over it. Callers that can
    /// legitimately race (e.g. comparing timestamps from different
    /// logical clocks) should use [`Cycle::checked_since`].
    #[track_caller]
    pub fn since(self, earlier: Cycle) -> Cycle {
        match self.checked_since(earlier) {
            Some(d) => d,
            // detlint: allow(P002) -- documented panic policy: a backwards clock must abort rather than corrupt accounting
            None => panic!(
                "Cycle::since: time went backwards ({}cy is earlier than {}cy)",
                self.0, earlier.0
            ),
        }
    }

    /// Duration since `earlier`, or `None` if `earlier` is later than
    /// `self`. The non-panicking form of [`Cycle::since`].
    pub fn checked_since(self, earlier: Cycle) -> Option<Cycle> {
        self.0.checked_sub(earlier.0).map(Cycle)
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_add(other.0))
    }

    /// Converts to seconds assuming the simulated 2 GHz clock.
    pub fn as_seconds_at_2ghz(self) -> f64 {
        self.0 as f64 / 2.0e9
    }
}

impl Add for Cycle {
    type Output = Cycle;
    /// Panics in all builds on overflow. `Cycle` operators are the
    /// workspace's sanctioned cycle-arithmetic boundary (detlint rule
    /// A001 exempts them), so they must not wrap silently in release.
    #[track_caller]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(
            self.0
                .checked_add(rhs.0)
                .expect("Cycle addition overflowed u64"),
        )
    }
}

impl AddAssign for Cycle {
    /// Shares the checked-overflow policy of [`Add`](Cycle::add).
    #[track_caller]
    fn add_assign(&mut self, rhs: Cycle) {
        *self = *self + rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// Same policy as [`Cycle::since`]: panics in all builds on
    /// underflow instead of diverging between debug (raw-sub panic) and
    /// release (wrapping or saturation).
    #[track_caller]
    fn sub(self, rhs: Cycle) -> Cycle {
        self.since(rhs)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycle {
    fn from(cycles: u64) -> Self {
        Cycle(cycles)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cycle::new(5) + Cycle::new(3), Cycle::new(8));
        assert_eq!(Cycle::new(5) - Cycle::new(3), Cycle::new(2));
        let mut t = Cycle::ZERO;
        t += Cycle::new(7);
        assert_eq!(t.as_u64(), 7);
    }

    #[test]
    fn since_measures_duration() {
        assert_eq!(Cycle::new(10).since(Cycle::new(4)), Cycle::new(6));
    }

    #[test]
    fn checked_since_is_total() {
        assert_eq!(
            Cycle::new(10).checked_since(Cycle::new(4)),
            Some(Cycle::new(6))
        );
        assert_eq!(Cycle::new(4).checked_since(Cycle::new(10)), None);
        assert_eq!(Cycle::ZERO.checked_since(Cycle::ZERO), Some(Cycle::ZERO));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_backwards_time_in_all_builds() {
        let _ = Cycle::new(4).since(Cycle::new(10));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn sub_shares_the_since_policy() {
        let _ = Cycle::new(4) - Cycle::new(10);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [1u64, 2, 3].into_iter().map(Cycle::new).sum();
        assert_eq!(total, Cycle::new(6));
    }

    #[test]
    fn ordering() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::ZERO, Cycle::new(0));
    }

    #[test]
    fn display() {
        assert_eq!(Cycle::new(42).to_string(), "42cy");
    }

    #[test]
    fn seconds_conversion() {
        assert!((Cycle::new(2_000_000_000).as_seconds_at_2ghz() - 1.0).abs() < 1e-12);
    }
}
