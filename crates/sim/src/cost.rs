//! The simulated machine's latency parameters.
//!
//! Defaults follow Table 2 of the paper (M5 simulation parameters) plus
//! conventional costs for the OS operations the paper's runtimes lean on
//! (pthread yield / futex block / context switch), expressed in cycles of
//! the simulated 2 GHz cores.

/// Latency parameters of the simulated machine, in cycles.
///
/// # Example
///
/// ```
/// use bfgts_sim::CostModel;
/// let costs = CostModel::default();
/// assert_eq!(costs.l1_hit, 1);
/// assert_eq!(costs.popcnt, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// L1 cache hit (Table 2: 64 kB, 1 cycle).
    pub l1_hit: u64,
    /// L2 cache hit (Table 2: 32 MB, 32 cycles).
    pub l2_hit: u64,
    /// Main memory access (Table 2: 100 cycles).
    pub memory: u64,
    /// 64-bit population count instruction (Table 2: `popcnt`, 2 cycles).
    pub popcnt: u64,
    /// Floating-point logarithm instruction (Table 2: `fyl2x`, 15 cycles).
    pub fyl2x: u64,
    /// Hit in the dedicated transaction-confidence cache of the BFGTS
    /// hardware accelerator (Table 2: 2 kB, 1 cycle).
    pub conf_cache_hit: u64,
    /// Miss in the confidence cache, refilled from L2.
    pub conf_cache_miss: u64,
    /// Register checkpoint taken by `TX_BEGIN`.
    pub tx_begin: u64,
    /// Commit bookkeeping inside the HTM (log truncation, signature clear).
    pub tx_commit: u64,
    /// Fixed part of an abort: trap into the software handler.
    pub abort_trap: u64,
    /// Per-logged-cache-line cost of walking the LogTM undo log on abort.
    pub abort_per_line: u64,
    /// Kernel-mode cost of a context switch between threads on one CPU.
    pub context_switch: u64,
    /// Kernel-mode cost of `pthread_yield` (syscall + requeue), excluding
    /// the context switch itself.
    pub yield_syscall: u64,
    /// Kernel-mode cost of blocking on a futex (ATS central queue, BFGTS
    /// suspend).
    pub futex_block: u64,
    /// Kernel-mode cost of waking a thread blocked on a futex.
    pub futex_wake: u64,
    /// Preemption time quantum of the OS scheduler.
    pub quantum: u64,
    /// Per-extra-shard commit coordination cost on a sharded platform:
    /// a committing transaction that touched `s ≥ 2` conflict-detection
    /// shards pays `cross_shard_hop · (s − 1)` extra commit cycles (one
    /// directory hop per remote shard). Unused when the platform has a
    /// single shard. Declared last so [`CostModel::perturbed`]'s draw
    /// order for the pre-existing latencies is unchanged.
    pub cross_shard_hop: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            l1_hit: 1,
            l2_hit: 32,
            memory: 100,
            popcnt: 2,
            fyl2x: 15,
            conf_cache_hit: 1,
            conf_cache_miss: 32,
            tx_begin: 10,
            tx_commit: 20,
            abort_trap: 500,
            abort_per_line: 8,
            context_switch: 2000,
            yield_syscall: 600,
            futex_block: 1500,
            futex_wake: 1200,
            quantum: 1_000_000,
            cross_shard_hop: 120,
        }
    }
}

impl CostModel {
    /// Cost parameters re-targeted at a *software* TM: every access pays
    /// instrumentation (read/write barriers), begin takes a descriptor
    /// setup and commit a validation pass. Scheduling-code costs are
    /// unchanged — which is exactly why, as the paper's related work
    /// notes for Dragojević et al., "scheduling overheads are less
    /// important" in STM: they are amortised by the fatter transactions.
    pub fn stm_like() -> Self {
        Self {
            tx_begin: 150,
            tx_commit: 120,
            abort_trap: 300,
            abort_per_line: 20,
            ..Self::default()
        }
    }

    /// Cost of computing the Bloom-filter similarity update in `commitTx`
    /// (paper Example 4 / §4.2.2): three population counts over
    /// `words_per_filter`-word filters, three `ln` evaluations, the union,
    /// plus a handful of ALU operations.
    ///
    /// Modern 64-bit `popcnt` handles one word per invocation; the union is
    /// one OR per word (1 cycle each); `calcSim` evaluates three logarithms
    /// via `fyl2x`.
    pub fn similarity_calc(&self, words_per_filter: u64) -> u64 {
        let popcounts = 3 * words_per_filter * self.popcnt;
        let union_ops = words_per_filter;
        let logs = 3 * self.fyl2x;
        let alu = 20;
        popcounts + union_ops + logs + alu
    }

    /// Cost of intersecting two saved Bloom filters on commit (one AND +
    /// one zero-test per word).
    pub fn bloom_intersect(&self, words_per_filter: u64) -> u64 {
        2 * words_per_filter
    }

    /// Cost of reading one recently-written shared table entry from the
    /// coherence fabric: the line usually misses to L2 because another CPU
    /// wrote it.
    pub fn shared_read(&self) -> u64 {
        self.l2_hit
    }

    /// A deterministically jittered copy of this model, the fault-injection
    /// layer's cost-perturbation hook (DESIGN.md §9).
    ///
    /// Every latency moves independently and uniformly within the bounded
    /// envelope `[cost − cost·p/100, cost + cost·p/100]` where
    /// `p = max_percent`, and never below 1 cycle — a zero-cost context
    /// switch would break the engine's "zero-cost operations emit nothing"
    /// tracing contract. The draw order is the field declaration order, so
    /// one `SimRng` state maps to exactly one perturbed model.
    pub fn perturbed(&self, rng: &mut crate::SimRng, max_percent: u64) -> Self {
        let mut jitter = |cost: u64| -> u64 {
            let span = cost
                .checked_mul(max_percent)
                .expect("jitter envelope overflowed u64")
                / 100;
            if span == 0 {
                return cost.max(1);
            }
            // Uniform in [cost - span, cost + span].
            let lo = cost
                .checked_sub(span)
                .expect("jitter span exceeds the base cost (max_percent > 100?)");
            (lo + rng.gen_range(2 * span + 1)).max(1)
        };
        Self {
            l1_hit: jitter(self.l1_hit),
            l2_hit: jitter(self.l2_hit),
            memory: jitter(self.memory),
            popcnt: jitter(self.popcnt),
            fyl2x: jitter(self.fyl2x),
            conf_cache_hit: jitter(self.conf_cache_hit),
            conf_cache_miss: jitter(self.conf_cache_miss),
            tx_begin: jitter(self.tx_begin),
            tx_commit: jitter(self.tx_commit),
            abort_trap: jitter(self.abort_trap),
            abort_per_line: jitter(self.abort_per_line),
            context_switch: jitter(self.context_switch),
            yield_syscall: jitter(self.yield_syscall),
            futex_block: jitter(self.futex_block),
            futex_wake: jitter(self.futex_wake),
            quantum: jitter(self.quantum),
            cross_shard_hop: jitter(self.cross_shard_hop),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = CostModel::default();
        assert_eq!(c.l1_hit, 1);
        assert_eq!(c.l2_hit, 32);
        assert_eq!(c.memory, 100);
        assert_eq!(c.popcnt, 2);
        assert_eq!(c.fyl2x, 15);
        assert_eq!(c.conf_cache_hit, 1);
    }

    #[test]
    fn similarity_scales_with_filter_words() {
        let c = CostModel::default();
        let small = c.similarity_calc(8); // 512-bit filter
        let large = c.similarity_calc(128); // 8192-bit filter
        assert!(large > small);
        // 8 words: 3*8*2 + 8 + 45 + 20 = 121
        assert_eq!(small, 121);
    }

    #[test]
    fn stm_costs_are_fatter_per_transaction() {
        let hw = CostModel::default();
        let stm = CostModel::stm_like();
        assert!(stm.tx_begin > hw.tx_begin);
        assert!(stm.tx_commit > hw.tx_commit);
        assert_eq!(stm.l1_hit, hw.l1_hit, "machine latencies unchanged");
    }

    #[test]
    fn intersect_cost_is_linear() {
        let c = CostModel::default();
        assert_eq!(c.bloom_intersect(8) * 2, c.bloom_intersect(16));
    }

    #[test]
    fn perturbed_costs_stay_in_the_envelope_and_are_deterministic() {
        use crate::SimRng;
        let base = CostModel::default();
        let a = base.perturbed(&mut SimRng::seed_from(42), 20);
        let b = base.perturbed(&mut SimRng::seed_from(42), 20);
        assert_eq!(a, b, "same rng state, same perturbation");
        let c = base.perturbed(&mut SimRng::seed_from(43), 20);
        assert_ne!(a, c, "different seeds move at least one latency");

        let within = |got: u64, base: u64| {
            let span = base * 20 / 100;
            got >= (base - span).max(1) && got <= base + span
        };
        assert!(within(a.context_switch, base.context_switch));
        assert!(within(a.tx_commit, base.tx_commit));
        assert!(within(a.abort_trap, base.abort_trap));
        assert!(within(a.quantum, base.quantum));
        // Sub-envelope latencies (1-cycle L1 hits) never reach zero.
        assert!(a.l1_hit >= 1 && a.conf_cache_hit >= 1);
    }

    #[test]
    fn zero_percent_perturbation_is_identity() {
        let base = CostModel::default();
        let p = base.perturbed(&mut crate::SimRng::seed_from(7), 0);
        assert_eq!(p, base);
    }
}
