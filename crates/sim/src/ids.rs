//! Identifier newtypes for simulated hardware and software entities.

use std::fmt;

/// Index of a simulated CPU core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub usize);

impl CpuId {
    /// Raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Index of a simulated software thread. Threads are numbered in spawn
/// order, starting at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

impl ThreadId {
    /// Raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(CpuId(3).to_string(), "cpu3");
        assert_eq!(ThreadId(12).to_string(), "t12");
    }

    #[test]
    fn ordering_by_index() {
        assert!(ThreadId(1) < ThreadId(2));
        assert_eq!(CpuId(4).index(), 4);
    }
}
