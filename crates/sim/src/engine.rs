//! The discrete-event execution engine: CPUs, run queues, the OS scheduler
//! model and the main event loop.

use crate::accounting::{Bucket, TimeBuckets};
use crate::cost::CostModel;
use crate::equeue::{EventQueue, EventQueueKind};
use crate::ids::{CpuId, ThreadId};
use crate::rng::SimRng;
use crate::time::Cycle;
use bfgts_trace::{TraceEvent, TraceMode, TraceRecording, TraceSink};
use std::collections::VecDeque;

/// What a thread does next when the engine schedules it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Consume CPU for `cycles`, accounted to `bucket`.
    Work {
        /// Number of cycles the action takes.
        cycles: u64,
        /// Accounting category for these cycles.
        bucket: Bucket,
    },
    /// Give up the CPU voluntarily (`pthread_yield`): the thread stays
    /// runnable but moves to the back of its CPU's run queue. The yield
    /// syscall cost is charged to the kernel bucket.
    Yield,
    /// Sleep until another thread calls [`ThreadCtx::wake`] for this
    /// thread. The futex block cost is charged to the kernel bucket.
    Block,
    /// Sleep until the simulated clock reaches `deadline` (a timed wait
    /// on an empty work queue, e.g. an open-system thread parked until
    /// the next transaction arrival). The thread leaves the CPU without
    /// charging anything — parked time is CPU idle time — and is
    /// re-queued, Ready, once `deadline` passes. A deadline at or before
    /// the current time degenerates to a re-queue.
    SleepUntil {
        /// Absolute simulated cycle at which the thread becomes runnable.
        deadline: u64,
    },
    /// The thread has finished its program.
    Finish,
}

impl Action {
    /// Convenience constructor for [`Action::Work`].
    pub fn work(cycles: u64, bucket: Bucket) -> Action {
        Action::Work { cycles, bucket }
    }
}

/// Behaviour of one simulated thread, generic over the shared `World`
/// (e.g. a transactional-memory model).
///
/// `step` is called whenever the thread holds a CPU and its previous
/// action has completed; it returns the next action. Implementations keep
/// their own program state (what to run next) internally.
pub trait ThreadLogic<W> {
    /// Advance the thread's program by one action.
    fn step(&mut self, world: &mut W, ctx: &mut ThreadCtx) -> Action;
}

/// Per-step context handed to [`ThreadLogic::step`].
#[derive(Debug)]
pub struct ThreadCtx<'a> {
    /// The thread being stepped.
    pub thread: ThreadId,
    /// The CPU it is running on.
    pub cpu: CpuId,
    /// Current simulated time.
    pub now: Cycle,
    /// The thread's private deterministic RNG stream.
    pub rng: &'a mut SimRng,
    /// The thread's cycle accounting. Logics normally only *read* this;
    /// the one sanctioned mutation is [`TimeBuckets::transfer`], used to
    /// re-file optimistically-charged transactional work as aborted work.
    pub buckets: &'a mut TimeBuckets,
    /// The run's trace sink, for thread logics that emit their own typed
    /// events (transaction lifecycle, scheduler decisions). Disabled
    /// unless [`EngineConfig::trace`] says otherwise. A public field
    /// (like `rng` and `buckets`) so callers can borrow it alongside the
    /// other context pieces.
    pub trace: &'a mut TraceSink,
    costs: &'a CostModel,
    wakes: Vec<ThreadId>,
}

impl ThreadCtx<'_> {
    /// The machine's latency parameters.
    pub fn costs(&self) -> &CostModel {
        self.costs
    }

    /// Requests that `target` be woken (if blocked) when this step's
    /// action is committed. The futex wake cost is charged to the calling
    /// thread's kernel bucket.
    pub fn wake(&mut self, target: ThreadId) {
        self.wakes.push(target);
    }

    /// Re-files `cycles` from one bucket to another through
    /// [`TimeBuckets::transfer`], recording the move in the trace so the
    /// audit can prove conservation. Returns the cycles actually moved
    /// (always `cycles` for correct accounting; the audit flags anything
    /// less). Prefer this over calling `transfer` directly.
    pub fn refile(&mut self, from: Bucket, to: Bucket, cycles: u64) -> u64 {
        let moved = self.buckets.transfer(from, to, cycles);
        let thread = self.thread.index() as u32;
        self.trace.emit(self.now.as_u64(), || TraceEvent::Refile {
            thread,
            from: from.trace_kind(),
            to: to.trace_kind(),
            requested: cycles,
            moved,
        });
        moved
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of CPUs (the paper uses 16).
    pub num_cpus: usize,
    /// Machine latency parameters.
    pub costs: CostModel,
    /// Master seed; per-thread RNG streams derive from it.
    pub seed: u64,
    /// Hard cap on simulated time; exceeding it panics (guards against
    /// live-lock in a buggy scheduler under test).
    pub max_cycles: u64,
    /// Event recording mode (off by default; tracing-disabled runs pay
    /// one branch per would-be event).
    pub trace: TraceMode,
    /// Pending-event structure. Results are byte-identical for every
    /// kind, so this is a pure wall-clock knob and is deliberately not
    /// part of any scenario's identity.
    pub queue: EventQueueKind,
}

impl EngineConfig {
    /// A configuration with `num_cpus` CPUs and default costs and seed.
    pub fn with_cpus(num_cpus: usize) -> Self {
        Self {
            num_cpus,
            costs: CostModel::default(),
            seed: 0xBF67_5000,
            max_cycles: u64::MAX,
            trace: TraceMode::Off,
            queue: EventQueueKind::default(),
        }
    }

    /// Replaces the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Replaces the trace mode.
    pub fn trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Replaces the pending-event structure.
    pub fn queue(mut self, queue: EventQueueKind) -> Self {
        self.queue = queue;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Ready,
    Running,
    Blocked,
    /// Parked on a timed wait ([`Action::SleepUntil`]); the engine's
    /// sleeper set holds the deadline.
    Sleeping,
    Finished,
}

struct ThreadSlot<W> {
    logic: Box<dyn ThreadLogic<W>>,
    state: ThreadState,
    cpu: CpuId,
    buckets: TimeBuckets,
    rng: SimRng,
    finish_time: Option<Cycle>,
    /// A wake that arrived while the thread was not blocked; consumed by
    /// the next `Block` (futex/semaphore semantics, so wakes delivered
    /// between a block *decision* and the block itself are not lost).
    pending_wake: bool,
}

#[derive(Debug, Default)]
struct Cpu {
    run_queue: VecDeque<ThreadId>,
    current: Option<ThreadId>,
    /// Last thread that held this CPU; a re-pickup of the same thread
    /// (yield with an empty queue) skips the context-switch charge.
    last: Option<ThreadId>,
    ran_since_switch: u64,
    /// True when a pickup/step event for this CPU is already in the
    /// event queue — the per-CPU armed-event index that keeps the queue
    /// at one *live* pending event per CPU, maximum.
    armed: bool,
    /// Time of the live pending event, valid while `armed`.
    armed_at: Cycle,
    /// Sequence number of the live pending event. A preemptible armed
    /// event re-armed *earlier* (a wake racing an idle CPU parked on a
    /// sleeper deadline) is superseded: the new seq is recorded here and
    /// the stale event is discarded on pop by seq mismatch.
    armed_seq: u64,
    /// Whether the live pending event is a pure idle timer (a sleeper
    /// deadline) that an earlier arm may supersede. Events marking the
    /// end of a charged interval ("CPU busy until T") must never be
    /// pulled earlier — servicing mid-charge would overlap charges and
    /// break audit invariant I2.
    armed_preemptible: bool,
}

/// Outcome of a completed simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Time at which the last thread finished (the parallel makespan).
    pub makespan: Cycle,
    /// Per-thread cycle accounting, indexed by [`ThreadId`].
    pub per_thread: Vec<TimeBuckets>,
    /// Number of CPUs the run used (needed to audit the trace).
    pub num_cpus: usize,
    /// Everything recorded by the trace sink (empty for untraced runs).
    pub trace: TraceRecording,
}

impl RunReport {
    /// Sum of all threads' buckets.
    pub fn total(&self) -> TimeBuckets {
        self.per_thread.iter().copied().sum()
    }

    /// The ground truth `bfgts_trace::audit` checks this run's trace
    /// against: makespan, CPU count and the per-thread bucket totals in
    /// the trace crate's index order.
    pub fn audit_inputs(&self) -> bfgts_trace::AuditInputs {
        bfgts_trace::AuditInputs {
            makespan: self.makespan.as_u64(),
            num_cpus: self.num_cpus,
            per_thread: self
                .per_thread
                .iter()
                .map(|t| {
                    let mut row = [0u64; bfgts_trace::BucketKind::COUNT];
                    for b in Bucket::ALL {
                        row[b.trace_kind().index()] = t.get(b);
                    }
                    row
                })
                .collect(),
            // The engine knows nothing about window-based managers; the
            // TM harness overrides this for runs that declared a seed.
            window_seed: None,
        }
    }
}

/// The discrete-event simulator.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct Engine<W> {
    config: EngineConfig,
    world: W,
    threads: Vec<ThreadSlot<W>>,
    cpus: Vec<Cpu>,
    queue: EventQueue,
    seq: u64,
    now: Cycle,
    finished: usize,
    trace: TraceSink,
    /// Threads parked on [`Action::SleepUntil`], ordered by
    /// `(deadline, thread)` so promotion back to Ready is deterministic.
    sleepers: std::collections::BTreeSet<(Cycle, ThreadId)>,
}

impl<W> Engine<W> {
    /// Creates an engine over `world` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_cpus == 0`.
    pub fn new(config: EngineConfig, world: W) -> Self {
        assert!(config.num_cpus > 0, "engine needs at least one CPU");
        let cpus = (0..config.num_cpus).map(|_| Cpu::default()).collect();
        let trace = TraceSink::new(config.trace);
        let queue = EventQueue::new(config.queue);
        Self {
            config,
            world,
            threads: Vec::new(),
            cpus,
            queue,
            seq: 0,
            now: Cycle::ZERO,
            finished: 0,
            trace,
            sleepers: std::collections::BTreeSet::new(),
        }
    }

    /// Adds a thread with round-robin CPU affinity (thread `i` runs on CPU
    /// `i % num_cpus`, giving the paper's four-threads-per-core layout for
    /// 64 threads on 16 CPUs). Returns the new thread's id.
    pub fn spawn(&mut self, logic: Box<dyn ThreadLogic<W>>) -> ThreadId {
        let cpu = CpuId(self.threads.len() % self.config.num_cpus);
        self.spawn_on(cpu, logic)
    }

    /// Adds a thread pinned to `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn spawn_on(&mut self, cpu: CpuId, logic: Box<dyn ThreadLogic<W>>) -> ThreadId {
        assert!(cpu.index() < self.cpus.len(), "cpu {cpu} out of range");
        let id = ThreadId(self.threads.len());
        let rng = SimRng::seed_from(self.config.seed).derive(id.index() as u64 + 1);
        self.threads.push(ThreadSlot {
            logic,
            state: ThreadState::Ready,
            cpu,
            buckets: TimeBuckets::default(),
            rng,
            finish_time: None,
            pending_wake: false,
        });
        self.cpus[cpu.index()].run_queue.push_back(id);
        id
    }

    /// Slot for an engine-issued thread id. Ids come from `spawn*` and
    /// never leave the engine's range, so a miss is an internal
    /// invariant violation, not a caller error.
    fn thread_mut(&mut self, tid: ThreadId) -> &mut ThreadSlot<W> {
        self.threads
            .get_mut(tid.index())
            .expect("engine-issued ThreadId is in range")
    }

    /// Slot for an engine-issued CPU id (see [`Engine::thread_mut`]).
    fn cpu_mut(&mut self, cpu: CpuId) -> &mut Cpu {
        self.cpus
            .get_mut(cpu.index())
            .expect("engine-issued CpuId is in range")
    }

    /// Shared world state.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the shared world state (for pre-run setup).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Runs the simulation to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the simulated program deadlocks (all remaining threads
    /// blocked with nothing to wake them) or exceeds
    /// [`EngineConfig::max_cycles`].
    pub fn run(self) -> RunReport {
        self.run_into().0
    }

    /// Like [`Engine::run`], but also returns the world so callers can
    /// extract statistics accumulated in shared state.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_into(mut self) -> (RunReport, W) {
        for cpu in 0..self.cpus.len() {
            self.arm(CpuId(cpu), Cycle::ZERO);
        }
        while let Some((time, seq, cpu_idx)) = self.queue.pop() {
            debug_assert!(time >= self.now, "event time went backwards");
            let live = {
                let slot = self.cpu_mut(CpuId(cpu_idx));
                slot.armed && slot.armed_seq == seq
            };
            if !live {
                // Superseded by an earlier re-arm; already serviced.
                continue;
            }
            self.now = time;
            assert!(
                self.now.as_u64() <= self.config.max_cycles,
                "simulation exceeded max_cycles={} (live-lock?)",
                self.config.max_cycles
            );
            self.cpu_mut(CpuId(cpu_idx)).armed = false;
            self.service_cpu(CpuId(cpu_idx));
        }
        if self.finished != self.threads.len() {
            let stuck: Vec<String> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state != ThreadState::Finished)
                .map(|(i, t)| format!("{}:{:?}", ThreadId(i), t.state))
                .collect();
            // detlint: allow(P002) -- documented panic contract of run(): a deadlocked program under test is unrecoverable
            panic!(
                "simulated deadlock at {}: stuck threads {stuck:?}",
                self.now
            );
        }
        let report = RunReport {
            makespan: self
                .threads
                .iter()
                .filter_map(|t| t.finish_time)
                .max()
                .unwrap_or(Cycle::ZERO),
            per_thread: self.threads.iter().map(|t| t.buckets).collect(),
            num_cpus: self.config.num_cpus,
            trace: self.trace.take(),
        };
        (report, self.world)
    }

    /// Schedules a service event for `cpu` at `time` unless one is armed.
    /// The one exception: a *preemptible* armed event (an idle timer from
    /// [`Engine::arm_timer`]) pending later than `time` is pulled earlier,
    /// and the superseded event is ignored on pop via its stale sequence
    /// number.
    fn arm(&mut self, cpu: CpuId, time: Cycle) {
        self.arm_inner(cpu, time, false);
    }

    /// Arms an idle-timer event (a sleeper deadline on an otherwise idle
    /// CPU). Unlike regular armed events — which mark the end of a
    /// charged interval and must not be serviced early — a timer may be
    /// superseded by an earlier [`Engine::arm`] (e.g. a wake arriving
    /// before the deadline).
    fn arm_timer(&mut self, cpu: CpuId, time: Cycle) {
        self.arm_inner(cpu, time, true);
    }

    fn arm_inner(&mut self, cpu: CpuId, time: Cycle, preemptible: bool) {
        let needs_push = {
            let slot = self.cpu_mut(cpu);
            !slot.armed || (slot.armed_preemptible && time < slot.armed_at)
        };
        if needs_push {
            self.seq += 1;
            let seq = self.seq;
            let slot = self.cpu_mut(cpu);
            slot.armed = true;
            slot.armed_at = time;
            slot.armed_seq = seq;
            slot.armed_preemptible = preemptible;
            self.queue.push(time, seq, cpu.index());
        }
    }

    fn service_cpu(&mut self, cpu: CpuId) {
        let costs = self.config.costs.clone();
        // Promote due timed sleepers pinned to this CPU back into its run
        // queue, in (deadline, thread) order, before any pickup decision.
        if !self.sleepers.is_empty() {
            let due: Vec<(Cycle, ThreadId)> = self
                .sleepers
                .iter()
                .take_while(|&&(deadline, _)| deadline <= self.now)
                .filter(|&&(_, tid)| self.threads.get(tid.index()).is_some_and(|t| t.cpu == cpu))
                .copied()
                .collect();
            for entry in due {
                self.sleepers.remove(&entry);
                let tid = entry.1;
                self.thread_mut(tid).state = ThreadState::Ready;
                self.cpu_mut(cpu).run_queue.push_back(tid);
            }
        }
        // Pick up a thread if the CPU is free.
        if self.cpu_mut(cpu).current.is_none() {
            let Some(next) = self.cpu_mut(cpu).run_queue.pop_front() else {
                // Idle. If a timed sleeper is pinned here, re-arm for its
                // deadline so the wake is never lost; otherwise a future
                // wake will re-arm us.
                let wake_at = self
                    .sleepers
                    .iter()
                    .find(|&&(_, tid)| self.threads.get(tid.index()).is_some_and(|t| t.cpu == cpu))
                    .map(|&(deadline, _)| deadline);
                if let Some(deadline) = wake_at {
                    self.arm_timer(cpu, deadline.max(self.now));
                }
                return;
            };
            let slot = self.cpu_mut(cpu);
            let switched = slot.last != Some(next);
            let switch = if switched { costs.context_switch } else { 0 };
            slot.current = Some(next);
            slot.last = Some(next);
            slot.ran_since_switch = 0;
            self.thread_mut(next).state = ThreadState::Running;
            if switch > 0 {
                self.thread_mut(next).buckets.charge(Bucket::Kernel, switch);
            }
            if switched {
                let at = self.now.as_u64();
                let (cpu_u, thread_u) = (cpu.index() as u32, next.index() as u32);
                self.trace.emit(at, || TraceEvent::ContextSwitch {
                    cpu: cpu_u,
                    thread: thread_u,
                    cost: switch,
                });
                if switch > 0 {
                    self.trace.emit(at, || TraceEvent::Charge {
                        cpu: cpu_u,
                        thread: thread_u,
                        bucket: Bucket::Kernel.trace_kind(),
                        cycles: switch,
                    });
                }
            }
            self.arm(cpu, self.now + Cycle::new(switch));
            return;
        }

        let tid = self.cpu_mut(cpu).current.expect("current checked above");

        // Quantum preemption: only if someone else is waiting.
        {
            let slot = self.cpu_mut(cpu);
            if slot.ran_since_switch >= costs.quantum && !slot.run_queue.is_empty() {
                slot.current = None;
                slot.run_queue.push_back(tid);
                self.thread_mut(tid).state = ThreadState::Ready;
                self.arm(cpu, self.now);
                return;
            }
        }

        // Step the thread. Direct field access (not `thread_mut`) so the
        // context can borrow `rng`/`buckets` alongside `trace` and `world`.
        let thread = self
            .threads
            .get_mut(tid.index())
            .expect("engine-issued ThreadId is in range");
        let mut ctx = ThreadCtx {
            thread: tid,
            cpu,
            now: self.now,
            rng: &mut thread.rng,
            buckets: &mut thread.buckets,
            trace: &mut self.trace,
            costs: &costs,
            wakes: Vec::new(),
        };
        let action = thread.logic.step(&mut self.world, &mut ctx);
        let wakes = std::mem::take(&mut ctx.wakes);

        // Charge wake costs to the waker and apply the wakes.
        let mut extra = 0u64;
        for target in wakes {
            extra = extra
                .checked_add(costs.futex_wake)
                .expect("wake-cost accounting overflowed u64");
            self.wake_internal(target);
        }
        // Charges within this step are serialised on the trace timeline:
        // wake costs occupy [now, now+extra), the action's cycles follow
        // at now+extra. That is what lets the audit check that charge
        // intervals on one CPU never overlap (invariant I2).
        let at = self.now.as_u64();
        let at_after = at
            .checked_add(extra)
            .expect("trace timestamp overflowed u64");
        let (cpu_u, thread_u) = (cpu.index() as u32, tid.index() as u32);
        let kernel = Bucket::Kernel.trace_kind();
        if extra > 0 {
            self.thread_mut(tid).buckets.charge(Bucket::Kernel, extra);
            self.trace.emit(at, || TraceEvent::Charge {
                cpu: cpu_u,
                thread: thread_u,
                bucket: kernel,
                cycles: extra,
            });
        }

        match action {
            Action::Work { cycles, bucket } => {
                self.thread_mut(tid).buckets.charge(bucket, cycles);
                if cycles > 0 {
                    self.trace.emit(at_after, || TraceEvent::Charge {
                        cpu: cpu_u,
                        thread: thread_u,
                        bucket: bucket.trace_kind(),
                        cycles,
                    });
                }
                let ran = cycles
                    .checked_add(extra)
                    .expect("step-cycle accounting overflowed u64");
                let slot = self.cpu_mut(cpu);
                slot.ran_since_switch = slot
                    .ran_since_switch
                    .checked_add(ran)
                    .expect("quantum accounting overflowed u64");
                // Clamp to >=1 so a degenerate zero-cost action stream
                // (possible under all-zero cost models) cannot pin the
                // event heap to one timestamp and starve other CPUs.
                self.arm(cpu, self.now + Cycle::new(ran.max(1)));
            }
            Action::Yield => {
                self.thread_mut(tid)
                    .buckets
                    .charge(Bucket::Kernel, costs.yield_syscall);
                if costs.yield_syscall > 0 {
                    self.trace.emit(at_after, || TraceEvent::Charge {
                        cpu: cpu_u,
                        thread: thread_u,
                        bucket: kernel,
                        cycles: costs.yield_syscall,
                    });
                }
                self.thread_mut(tid).state = ThreadState::Ready;
                let slot = self.cpu_mut(cpu);
                slot.current = None;
                slot.run_queue.push_back(tid);
                let pause = costs
                    .yield_syscall
                    .checked_add(extra)
                    .expect("yield-charge accounting overflowed u64");
                // A yield must advance time even with a zero-cost OS
                // model, or a lone yielding thread would re-arm at the
                // same timestamp forever and starve other CPUs' events.
                self.arm(cpu, self.now + Cycle::new(pause.max(1)));
            }
            Action::Block => {
                self.thread_mut(tid)
                    .buckets
                    .charge(Bucket::Kernel, costs.futex_block);
                if costs.futex_block > 0 {
                    self.trace.emit(at_after, || TraceEvent::Charge {
                        cpu: cpu_u,
                        thread: thread_u,
                        bucket: kernel,
                        cycles: costs.futex_block,
                    });
                }
                let slot = self.thread_mut(tid);
                if slot.pending_wake {
                    // A wake raced ahead of the block: consume it and
                    // stay runnable (futex semantics).
                    slot.pending_wake = false;
                    slot.state = ThreadState::Ready;
                    self.cpu_mut(cpu).run_queue.push_back(tid);
                } else {
                    slot.state = ThreadState::Blocked;
                }
                self.cpu_mut(cpu).current = None;
                let pause = costs
                    .futex_block
                    .checked_add(extra)
                    .expect("block-charge accounting overflowed u64");
                self.arm(cpu, self.now + Cycle::new(pause.max(1)));
            }
            Action::SleepUntil { deadline } => {
                let deadline = Cycle::new(deadline);
                if deadline <= self.now {
                    // Already due: stay runnable at the back of the queue.
                    self.thread_mut(tid).state = ThreadState::Ready;
                    self.cpu_mut(cpu).run_queue.push_back(tid);
                } else {
                    self.thread_mut(tid).state = ThreadState::Sleeping;
                    self.sleepers.insert((deadline, tid));
                }
                self.cpu_mut(cpu).current = None;
                // Parked time is idle time: nothing is charged. Advance
                // at least one cycle so a lone zero-cost sleeper cannot
                // pin the event heap to one timestamp.
                self.arm(cpu, self.now + Cycle::new(extra.max(1)));
            }
            Action::Finish => {
                let now = self.now;
                let slot = self.thread_mut(tid);
                slot.state = ThreadState::Finished;
                slot.finish_time = Some(now);
                self.finished += 1;
                self.cpu_mut(cpu).current = None;
                self.arm(cpu, self.now + Cycle::new(extra));
            }
        }
    }

    fn wake_internal(&mut self, target: ThreadId) {
        let slot = self.thread_mut(target);
        match slot.state {
            ThreadState::Blocked => {
                slot.state = ThreadState::Ready;
                let cpu = slot.cpu;
                let cpu_slot = self.cpu_mut(cpu);
                cpu_slot.run_queue.push_back(target);
                if cpu_slot.current.is_none() {
                    self.arm(cpu, self.now);
                }
            }
            ThreadState::Finished => {}
            // The target has not blocked yet: remember the wake so the
            // upcoming Block consumes it instead of sleeping forever.
            // Timed sleepers keep their deadline — a wake aimed at a
            // thread parked on the clock is a protocol error upstream,
            // so it is remembered, not honoured early.
            ThreadState::Ready | ThreadState::Running | ThreadState::Sleeping => {
                slot.pending_wake = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `n` work slices of `cycles` each, then finishes.
    struct Looper {
        slices: u32,
        cycles: u64,
        bucket: Bucket,
    }

    impl<W> ThreadLogic<W> for Looper {
        fn step(&mut self, _world: &mut W, _ctx: &mut ThreadCtx) -> Action {
            if self.slices == 0 {
                return Action::Finish;
            }
            self.slices -= 1;
            Action::work(self.cycles, self.bucket)
        }
    }

    fn quiet_costs() -> CostModel {
        // Zero OS costs make arithmetic exact in tests.
        CostModel {
            context_switch: 0,
            yield_syscall: 0,
            futex_block: 0,
            futex_wake: 0,
            ..CostModel::default()
        }
    }

    #[test]
    fn single_thread_accounting() {
        let cfg = EngineConfig::with_cpus(1).costs(quiet_costs());
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(Looper {
            slices: 4,
            cycles: 25,
            bucket: Bucket::Tx,
        }));
        let report = e.run();
        assert_eq!(report.total().get(Bucket::Tx), 100);
        assert_eq!(report.makespan, Cycle::new(100));
    }

    #[test]
    fn two_cpus_run_in_parallel() {
        let cfg = EngineConfig::with_cpus(2).costs(quiet_costs());
        let mut e = Engine::new(cfg, ());
        for _ in 0..2 {
            e.spawn(Box::new(Looper {
                slices: 1,
                cycles: 1000,
                bucket: Bucket::NonTx,
            }));
        }
        let report = e.run();
        // Both threads work 1000 cycles but on different CPUs: the
        // makespan is 1000, not 2000.
        assert_eq!(report.makespan, Cycle::new(1000));
        assert_eq!(report.total().get(Bucket::NonTx), 2000);
    }

    #[test]
    fn two_threads_one_cpu_serialize() {
        let cfg = EngineConfig::with_cpus(1).costs(quiet_costs());
        let mut e = Engine::new(cfg, ());
        for _ in 0..2 {
            e.spawn(Box::new(Looper {
                slices: 1,
                cycles: 1000,
                bucket: Bucket::NonTx,
            }));
        }
        let report = e.run();
        assert_eq!(report.makespan, Cycle::new(2000));
    }

    #[test]
    fn context_switch_cost_is_charged() {
        let costs = CostModel {
            context_switch: 100,
            yield_syscall: 0,
            futex_block: 0,
            futex_wake: 0,
            ..CostModel::default()
        };
        let cfg = EngineConfig::with_cpus(1).costs(costs);
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(Looper {
            slices: 1,
            cycles: 10,
            bucket: Bucket::NonTx,
        }));
        e.spawn(Box::new(Looper {
            slices: 1,
            cycles: 10,
            bucket: Bucket::NonTx,
        }));
        let report = e.run();
        // Each thread pays one context switch when first scheduled.
        assert_eq!(report.total().get(Bucket::Kernel), 200);
        assert_eq!(report.makespan, Cycle::new(220));
    }

    /// Yields between each work slice.
    struct Yielder {
        slices: u32,
        yielded: bool,
    }

    impl<W> ThreadLogic<W> for Yielder {
        fn step(&mut self, _world: &mut W, _ctx: &mut ThreadCtx) -> Action {
            if self.slices == 0 {
                return Action::Finish;
            }
            if self.yielded {
                self.yielded = false;
                self.slices -= 1;
                Action::work(10, Bucket::NonTx)
            } else {
                self.yielded = true;
                Action::Yield
            }
        }
    }

    #[test]
    fn yield_rotates_threads() {
        let cfg = EngineConfig::with_cpus(1).costs(quiet_costs());
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(Yielder {
            slices: 3,
            yielded: false,
        }));
        e.spawn(Box::new(Yielder {
            slices: 3,
            yielded: false,
        }));
        let report = e.run();
        assert_eq!(report.total().get(Bucket::NonTx), 60);
    }

    /// Blocks once; expects a waker to release it.
    struct Sleeper {
        slept: bool,
    }

    impl ThreadLogic<()> for Sleeper {
        fn step(&mut self, _world: &mut (), _ctx: &mut ThreadCtx) -> Action {
            if self.slept {
                Action::Finish
            } else {
                self.slept = true;
                Action::Block
            }
        }
    }

    /// Works, then wakes thread 0.
    struct Waker {
        woke: bool,
    }

    impl ThreadLogic<()> for Waker {
        fn step(&mut self, _world: &mut (), ctx: &mut ThreadCtx) -> Action {
            if self.woke {
                Action::Finish
            } else {
                self.woke = true;
                ctx.wake(ThreadId(0));
                Action::work(500, Bucket::NonTx)
            }
        }
    }

    #[test]
    fn block_and_wake() {
        let cfg = EngineConfig::with_cpus(2).costs(quiet_costs());
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(Sleeper { slept: false })); // t0 on cpu0
        e.spawn(Box::new(Waker { woke: false })); // t1 on cpu1
        let report = e.run();
        assert_eq!(report.total().get(Bucket::NonTx), 500);
    }

    #[test]
    fn wake_cost_charged_to_waker() {
        let costs = CostModel {
            context_switch: 0,
            yield_syscall: 0,
            futex_block: 30,
            futex_wake: 70,
            ..CostModel::default()
        };
        let cfg = EngineConfig::with_cpus(2).costs(costs);
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(Sleeper { slept: false }));
        e.spawn(Box::new(Waker { woke: false }));
        let report = e.run();
        // Sleeper pays futex_block, waker pays futex_wake.
        assert_eq!(report.per_thread[0].get(Bucket::Kernel), 30);
        assert_eq!(report.per_thread[1].get(Bucket::Kernel), 70);
    }

    #[test]
    #[should_panic(expected = "simulated deadlock")]
    fn deadlock_is_detected() {
        let cfg = EngineConfig::with_cpus(1).costs(quiet_costs());
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(Sleeper { slept: false })); // nobody wakes it
        let _ = e.run();
    }

    #[test]
    fn quantum_preempts_long_runner() {
        let costs = CostModel {
            context_switch: 0,
            yield_syscall: 0,
            futex_block: 0,
            futex_wake: 0,
            quantum: 50,
            ..CostModel::default()
        };
        let cfg = EngineConfig::with_cpus(1).costs(costs);
        let mut e = Engine::new(cfg, ());
        // Thread 0 wants 10 slices of 20 cycles; thread 1 only one slice.
        e.spawn(Box::new(Looper {
            slices: 10,
            cycles: 20,
            bucket: Bucket::NonTx,
        }));
        e.spawn(Box::new(Looper {
            slices: 1,
            cycles: 20,
            bucket: Bucket::Tx,
        }));
        let report = e.run();
        // Thread 1 must have been let in before thread 0 finished its full
        // 200 cycles: t1 finishes well before the makespan.
        assert_eq!(report.total().get(Bucket::NonTx), 200);
        assert_eq!(report.total().get(Bucket::Tx), 20);
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let cfg = EngineConfig::with_cpus(4).seed(99);
            let mut e = Engine::new(cfg, ());
            for i in 0..8u32 {
                e.spawn(Box::new(Looper {
                    slices: 3 + i,
                    cycles: 17,
                    bucket: Bucket::NonTx,
                }));
            }
            e.run()
        };
        let a = build();
        let b = build();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.per_thread.len(), b.per_thread.len());
        for (x, y) in a.per_thread.iter().zip(&b.per_thread) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn spawn_round_robin_affinity() {
        let cfg = EngineConfig::with_cpus(4);
        let mut e = Engine::new(cfg, ());
        for _ in 0..8 {
            e.spawn(Box::new(Looper {
                slices: 0,
                cycles: 0,
                bucket: Bucket::NonTx,
            }));
        }
        assert_eq!(e.threads[0].cpu, CpuId(0));
        assert_eq!(e.threads[4].cpu, CpuId(0));
        assert_eq!(e.threads[5].cpu, CpuId(1));
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_rejected() {
        let _ = Engine::new(EngineConfig::with_cpus(0), ());
    }

    #[test]
    #[should_panic(expected = "max_cycles")]
    fn max_cycles_guard() {
        let mut cfg = EngineConfig::with_cpus(1).costs(quiet_costs());
        cfg.max_cycles = 100;
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(Looper {
            slices: 100,
            cycles: 50,
            bucket: Bucket::NonTx,
        }));
        let _ = e.run();
    }

    #[test]
    fn traced_run_passes_the_audit_with_real_os_costs() {
        // Default costs: context switches, quantum preemption, yields and
        // futex traffic all appear in the trace and must reconcile.
        let cfg = EngineConfig::with_cpus(2).trace(TraceMode::Full);
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(Sleeper { slept: false }));
        e.spawn(Box::new(Waker { woke: false }));
        for i in 0..4u32 {
            e.spawn(Box::new(Looper {
                slices: 5 + i,
                cycles: 40,
                bucket: Bucket::NonTx,
            }));
            e.spawn(Box::new(Yielder {
                slices: 3,
                yielded: false,
            }));
        }
        let report = e.run();
        assert!(!report.trace.is_empty());
        let summary = bfgts_trace::audit(&report.trace, &report.audit_inputs())
            .unwrap_or_else(|v| panic!("audit violations: {v:#?}"));
        // Bucket conservation doubles as a spot check on the summary.
        assert_eq!(
            summary.charged.iter().sum::<u64>(),
            report.total().total_cycles()
        );
        assert!(summary.context_switches > 0);
        // I2 + I7: per-CPU busy + idle closes exactly to the makespan.
        for c in 0..2 {
            assert_eq!(
                summary.per_cpu_busy[c] + summary.per_cpu_idle[c],
                report.makespan.as_u64()
            );
        }
    }

    /// Sleeps until a fixed deadline, works one slice, then finishes.
    struct TimedSleeper {
        phase: u32,
        deadline: u64,
    }

    impl ThreadLogic<()> for TimedSleeper {
        fn step(&mut self, _world: &mut (), ctx: &mut ThreadCtx) -> Action {
            self.phase += 1;
            match self.phase {
                1 => Action::SleepUntil {
                    deadline: self.deadline,
                },
                2 => {
                    assert!(
                        ctx.now.as_u64() >= self.deadline,
                        "woke at {} before deadline {}",
                        ctx.now,
                        self.deadline
                    );
                    Action::work(10, Bucket::NonTx)
                }
                _ => Action::Finish,
            }
        }
    }

    #[test]
    fn sleep_until_wakes_at_deadline() {
        let cfg = EngineConfig::with_cpus(1).costs(quiet_costs());
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(TimedSleeper {
            phase: 0,
            deadline: 500,
        }));
        let report = e.run();
        // Parked 0..500, then one 10-cycle slice.
        assert_eq!(report.makespan, Cycle::new(510));
        assert_eq!(report.total().get(Bucket::NonTx), 10);
    }

    #[test]
    fn past_deadline_sleep_degenerates_to_requeue() {
        let cfg = EngineConfig::with_cpus(1).costs(quiet_costs());
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(TimedSleeper {
            phase: 0,
            deadline: 0,
        }));
        let report = e.run();
        assert_eq!(report.total().get(Bucket::NonTx), 10);
    }

    #[test]
    fn timed_sleep_counts_as_idle_and_audits_clean() {
        let cfg = EngineConfig::with_cpus(2)
            .costs(quiet_costs())
            .trace(TraceMode::Full);
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(TimedSleeper {
            phase: 0,
            deadline: 300,
        }));
        e.spawn(Box::new(Looper {
            slices: 2,
            cycles: 40,
            bucket: Bucket::NonTx,
        }));
        let report = e.run();
        let summary = bfgts_trace::audit(&report.trace, &report.audit_inputs())
            .unwrap_or_else(|v| panic!("audit violations: {v:#?}"));
        // I7 must still close: the parked interval is CPU idle time.
        for c in 0..2 {
            assert_eq!(
                summary.per_cpu_busy[c] + summary.per_cpu_idle[c],
                report.makespan.as_u64()
            );
        }
        assert_eq!(report.makespan, Cycle::new(310));
    }

    /// Blocks once, then works one slice after being woken.
    struct BlockThenWork {
        phase: u32,
    }

    impl ThreadLogic<()> for BlockThenWork {
        fn step(&mut self, _world: &mut (), _ctx: &mut ThreadCtx) -> Action {
            self.phase += 1;
            match self.phase {
                1 => Action::Block,
                2 => Action::work(10, Bucket::NonTx),
                _ => Action::Finish,
            }
        }
    }

    /// Works `cycles`, then wakes `target` and finishes.
    struct WorkThenWake {
        phase: u32,
        cycles: u64,
        target: ThreadId,
    }

    impl ThreadLogic<()> for WorkThenWake {
        fn step(&mut self, _world: &mut (), ctx: &mut ThreadCtx) -> Action {
            self.phase += 1;
            match self.phase {
                1 => Action::work(self.cycles, Bucket::NonTx),
                _ => {
                    if self.phase == 2 {
                        ctx.wake(self.target);
                    }
                    Action::Finish
                }
            }
        }
    }

    #[test]
    fn wake_pulls_a_cpu_armed_on_a_sleeper_deadline_earlier() {
        // cpu0 holds a far-future sleeper (t0) and a blocked thread (t2);
        // cpu1's t1 wakes t2 at 500. The wake must supersede cpu0's
        // pending 10_000-cycle service event, not wait for it.
        let cfg = EngineConfig::with_cpus(2)
            .costs(quiet_costs())
            .trace(TraceMode::Full);
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(TimedSleeper {
            phase: 0,
            deadline: 10_000,
        })); // t0 on cpu0
        e.spawn(Box::new(WorkThenWake {
            phase: 0,
            cycles: 500,
            target: ThreadId(2),
        })); // t1 on cpu1
        e.spawn(Box::new(BlockThenWork { phase: 0 })); // t2 on cpu0
        let report = e.run();
        bfgts_trace::audit(&report.trace, &report.audit_inputs())
            .unwrap_or_else(|v| panic!("audit violations: {v:#?}"));
        // t2's post-wake slice is charged at 500, not after the sleeper.
        assert!(
            report
                .trace
                .events
                .iter()
                .any(|r| { r.at == 500 && matches!(r.ev, TraceEvent::Charge { thread: 2, .. }) }),
            "woken thread should run at 500"
        );
        // The sleeper still wakes on time afterwards.
        assert_eq!(report.makespan, Cycle::new(10_010));
    }

    #[test]
    fn untraced_run_records_nothing() {
        let cfg = EngineConfig::with_cpus(1).costs(quiet_costs());
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(Looper {
            slices: 2,
            cycles: 10,
            bucket: Bucket::NonTx,
        }));
        let report = e.run();
        assert!(report.trace.is_empty());
    }

    #[test]
    fn refile_is_traced() {
        struct Refiler {
            phase: u32,
        }
        impl ThreadLogic<()> for Refiler {
            fn step(&mut self, _w: &mut (), ctx: &mut ThreadCtx) -> Action {
                self.phase += 1;
                match self.phase {
                    1 => Action::work(100, Bucket::Tx),
                    2 => {
                        assert_eq!(ctx.refile(Bucket::Tx, Bucket::Abort, 60), 60);
                        Action::work(10, Bucket::Abort)
                    }
                    _ => Action::Finish,
                }
            }
        }
        let cfg = EngineConfig::with_cpus(1)
            .costs(quiet_costs())
            .trace(TraceMode::Full);
        let mut e = Engine::new(cfg, ());
        e.spawn(Box::new(Refiler { phase: 0 }));
        let report = e.run();
        assert_eq!(report.total().get(Bucket::Tx), 40);
        assert_eq!(report.total().get(Bucket::Abort), 70);
        bfgts_trace::audit(&report.trace, &report.audit_inputs())
            .unwrap_or_else(|v| panic!("audit violations: {v:#?}"));
        assert!(report
            .trace
            .events
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::Refile { moved: 60, .. })));
    }

    #[test]
    fn rng_streams_differ_per_thread() {
        struct RngProbe {
            out: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
            done: bool,
        }
        impl ThreadLogic<()> for RngProbe {
            fn step(&mut self, _w: &mut (), ctx: &mut ThreadCtx) -> Action {
                if self.done {
                    return Action::Finish;
                }
                self.done = true;
                self.out.borrow_mut().push(ctx.rng.next_u64());
                Action::work(1, Bucket::NonTx)
            }
        }
        let out = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let cfg = EngineConfig::with_cpus(2).costs(quiet_costs());
        let mut e = Engine::new(cfg, ());
        for _ in 0..2 {
            e.spawn(Box::new(RngProbe {
                out: out.clone(),
                done: false,
            }));
        }
        let _ = e.run();
        let v = out.borrow();
        assert_eq!(v.len(), 2);
        assert_ne!(v[0], v[1]);
    }
}
