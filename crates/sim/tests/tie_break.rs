//! Regression tests pinning the engine's event tie-break contract.
//!
//! Pending events order by `(time, seq)` — the arming sequence number,
//! not the CPU index, breaks same-cycle ties, and both pending-event
//! structures must agree on that order exactly (it is what makes
//! simulation results byte-identical under either queue). The
//! starvation clamps are part of the same contract: a zero-cost action
//! stream must still advance time by at least one cycle per step, or
//! one CPU could pin the queue to a single timestamp forever.

use bfgts_sim::equeue::{EventQueue, EventQueueKind};
use bfgts_sim::{Action, Bucket, Cycle, Engine, EngineConfig, ThreadCtx, ThreadLogic};

fn drain(q: &mut EventQueue) -> Vec<(Cycle, u64, usize)> {
    std::iter::from_fn(|| q.pop()).collect()
}

#[test]
fn same_cycle_ties_break_by_seq_never_by_cpu() {
    // CPU indices deliberately run *against* seq order: if either
    // structure consulted the cpu field, the drain order would flip.
    for kind in [EventQueueKind::Heap, EventQueueKind::Calendar] {
        let mut q = EventQueue::new(kind);
        q.push(Cycle::new(40), 1, 9);
        q.push(Cycle::new(40), 2, 5);
        q.push(Cycle::new(40), 3, 0);
        q.push(Cycle::new(7), 4, 8);
        q.push(Cycle::new(7), 5, 2);
        assert_eq!(
            drain(&mut q),
            vec![
                (Cycle::new(7), 4, 8),
                (Cycle::new(7), 5, 2),
                (Cycle::new(40), 1, 9),
                (Cycle::new(40), 2, 5),
                (Cycle::new(40), 3, 0),
            ],
            "{kind:?}"
        );
    }
}

/// A thread that runs a fixed schedule of actions, then finishes.
struct Script {
    actions: Vec<Action>,
    next: usize,
}

impl Script {
    fn new(actions: Vec<Action>) -> Self {
        Self { actions, next: 0 }
    }
}

impl ThreadLogic<()> for Script {
    fn step(&mut self, _world: &mut (), _ctx: &mut ThreadCtx) -> Action {
        let action = self.actions.get(self.next).cloned();
        self.next += 1;
        action.unwrap_or(Action::Finish)
    }
}

#[test]
fn zero_cost_work_still_advances_time() {
    // engine.rs clamps a Work arm to >= 1 cycle. Without it, 1000
    // zero-cost steps would re-arm at one timestamp and the run would
    // finish with a makespan no larger than the setup costs.
    let mut engine = Engine::new(EngineConfig::with_cpus(1), ());
    engine.spawn(Box::new(Script::new(vec![
        Action::work(0, Bucket::NonTx);
        1000
    ])));
    let report = engine.run();
    assert!(
        report.makespan.as_u64() >= 1000,
        "zero-cost work steps must each advance >= 1 cycle, makespan {}",
        report.makespan.as_u64()
    );
}

#[test]
fn zero_cost_yield_cannot_starve_the_run_queue() {
    // engine.rs clamps a Yield arm to >= 1 cycle. With a free yield
    // syscall a lone yielder would otherwise monopolise the timestamp;
    // the worker sharing its CPU must still finish its real work.
    let mut cfg = EngineConfig::with_cpus(1);
    cfg.costs.yield_syscall = 0;
    cfg.costs.context_switch = 0;
    let mut engine = Engine::new(cfg, ());
    engine.spawn(Box::new(Script::new(vec![Action::Yield; 500])));
    engine.spawn(Box::new(Script::new(vec![
        Action::work(10, Bucket::NonTx);
        20
    ])));
    let report = engine.run();
    assert_eq!(report.total().get(Bucket::NonTx), 200, "worker ran dry");
    assert!(
        report.makespan.as_u64() >= 500,
        "zero-cost yields must each advance >= 1 cycle, makespan {}",
        report.makespan.as_u64()
    );
}

#[test]
fn engine_results_are_identical_under_both_queues() {
    // The queue kind is a pure wall-clock knob: an engine run with
    // mixed work/yield traffic over several overcommitted CPUs must
    // produce the same makespan and the same cycle accounting under
    // the heap and the calendar.
    let run = |kind: EventQueueKind| {
        let mut engine = Engine::new(EngineConfig::with_cpus(3).queue(kind), ());
        for t in 0..9u64 {
            let mut actions = Vec::new();
            for i in 0..40u64 {
                if (t + i) % 5 == 0 {
                    actions.push(Action::Yield);
                } else {
                    actions.push(Action::work(1 + (t * 31 + i * 7) % 400, Bucket::NonTx));
                }
            }
            engine.spawn(Box::new(Script::new(actions)));
        }
        engine.run()
    };
    let heap = run(EventQueueKind::Heap);
    let calendar = run(EventQueueKind::Calendar);
    assert_eq!(heap.makespan, calendar.makespan);
    assert_eq!(heap.total(), calendar.total());
    assert_eq!(heap.per_thread, calendar.per_thread);
}
