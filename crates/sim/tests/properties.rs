//! Property tests of the discrete-event engine: arbitrary well-formed
//! thread programs must complete, conserve accounting, and respect the
//! parallelism bound. Driven by the deterministic case generator in
//! `bfgts-testkit`.

use bfgts_sim::{Action, Bucket, CostModel, Engine, EngineConfig, ThreadCtx, ThreadLogic};
use bfgts_testkit::{run_cases, Gen};

/// A scripted thread: a list of pre-baked actions, then Finish.
struct Scripted {
    actions: Vec<ScriptAction>,
    next: usize,
}

#[derive(Debug, Clone, Copy)]
enum ScriptAction {
    Work(u16),
    Yield,
}

impl ThreadLogic<()> for Scripted {
    fn step(&mut self, _world: &mut (), _ctx: &mut ThreadCtx) -> Action {
        let Some(action) = self.actions.get(self.next) else {
            return Action::Finish;
        };
        self.next += 1;
        match *action {
            ScriptAction::Work(c) => Action::work(c as u64, Bucket::NonTx),
            ScriptAction::Yield => Action::Yield,
        }
    }
}

fn script(g: &mut Gen) -> Vec<ScriptAction> {
    g.vec_with(0, 30, |g| {
        if g.bool() {
            ScriptAction::Work(g.u16() % 500)
        } else {
            ScriptAction::Yield
        }
    })
}

fn scripts(g: &mut Gen, min: usize, max: usize) -> Vec<Vec<ScriptAction>> {
    g.vec_with(min, max, script)
}

/// Every mix of scripted threads over any machine shape completes, and
/// the sum of charged work cycles equals the scripted total.
#[test]
fn programs_complete_and_conserve_work() {
    run_cases("programs_complete_and_conserve_work", 64, |g| {
        let scripts = scripts(g, 1, 12);
        let cpus = g.usize_in(1, 5);
        let seed = g.u64();
        let scripted_work: u64 = scripts
            .iter()
            .flatten()
            .map(|a| match a {
                ScriptAction::Work(c) => *c as u64,
                ScriptAction::Yield => 0,
            })
            .sum();
        let cfg = EngineConfig::with_cpus(cpus).seed(seed).costs(CostModel {
            context_switch: 11,
            yield_syscall: 7,
            ..CostModel::default()
        });
        let mut engine = Engine::new(cfg, ());
        let n = scripts.len();
        for actions in scripts {
            engine.spawn(Box::new(Scripted { actions, next: 0 }));
        }
        let report = engine.run();
        assert_eq!(report.per_thread.len(), n);
        assert_eq!(report.total().get(Bucket::NonTx), scripted_work);
    });
}

/// The makespan is bounded below by total-work / num-cpus and above by
/// total busy time (work + kernel costs).
#[test]
fn makespan_respects_parallelism_bounds() {
    run_cases("makespan_respects_parallelism_bounds", 64, |g| {
        let scripts = scripts(g, 1, 10);
        let cpus = g.usize_in(1, 4);
        let cfg = EngineConfig::with_cpus(cpus).costs(CostModel {
            context_switch: 13,
            yield_syscall: 5,
            ..CostModel::default()
        });
        let mut engine = Engine::new(cfg, ());
        for actions in scripts {
            engine.spawn(Box::new(Scripted { actions, next: 0 }));
        }
        let report = engine.run();
        let busy = report.total().total_cycles();
        let span = report.makespan.as_u64();
        // Upper bound: one CPU could have run everything serially, plus
        // one cycle of forced progress per zero-length action (bounded
        // by the action count, itself bounded by busy + 30*threads).
        let slack = 30 * report.per_thread.len() as u64 + 1;
        assert!(span <= busy + slack, "span {span} > busy {busy} + slack");
        // Lower bound: work cannot be compressed below perfect speedup.
        assert!(
            span.saturating_mul(cpus as u64) + slack >= busy,
            "span {span} * {cpus} < busy {busy}"
        );
    });
}

/// Identical configurations give identical reports.
#[test]
fn engine_is_deterministic() {
    run_cases("engine_is_deterministic", 48, |g| {
        let scripts = scripts(g, 1, 8);
        let seed = g.u64();
        let run = || {
            let cfg = EngineConfig::with_cpus(2).seed(seed);
            let mut engine = Engine::new(cfg, ());
            for actions in scripts.clone() {
                engine.spawn(Box::new(Scripted { actions, next: 0 }));
            }
            engine.run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan, b.makespan);
        for (x, y) in a.per_thread.iter().zip(&b.per_thread) {
            assert_eq!(x, y);
        }
    });
}

/// Blocked threads woken by a peer always resume: a token-passing chain
/// through every thread terminates. (Wakes of not-yet-blocked threads are
/// lost, as with futexes, so each thread re-checks the token in the
/// shared world — the standard condition protocol.)
#[test]
fn wake_chains_terminate() {
    run_cases("wake_chains_terminate", 48, |g| {
        use bfgts_sim::ThreadId;

        /// Thread i waits for its token, then passes to thread i+1.
        struct Chain {
            me: usize,
            n: usize,
            done: bool,
        }
        impl ThreadLogic<Vec<bool>> for Chain {
            fn step(&mut self, tokens: &mut Vec<bool>, ctx: &mut ThreadCtx) -> Action {
                if self.done {
                    return Action::Finish;
                }
                if !tokens[self.me] {
                    return Action::Block;
                }
                self.done = true;
                let next = (self.me + 1) % self.n;
                if next != 0 {
                    tokens[next] = true;
                    ctx.wake(ThreadId(next));
                }
                Action::work(10, Bucket::NonTx)
            }
        }
        let n = g.usize_in(2, 10);
        let cpus = g.usize_in(1, 4);
        let cfg = EngineConfig::with_cpus(cpus);
        let mut tokens = vec![false; n];
        tokens[0] = true; // thread 0 starts with its token
        let mut engine = Engine::new(cfg, tokens);
        for me in 0..n {
            engine.spawn(Box::new(Chain { me, n, done: false }));
        }
        let report = engine.run();
        assert_eq!(report.total().get(Bucket::NonTx), 10 * n as u64);
    });
}
