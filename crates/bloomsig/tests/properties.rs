//! Property-based tests for the Bloom signature algebra, driven by the
//! deterministic case generator in `bfgts-testkit`.

use bfgts_bloomsig::{estimate, BloomFilter, EstimateParams, PerfectSignature, Signature};
use bfgts_testkit::{run_cases, Gen};
use std::collections::BTreeSet;

const CASES: u32 = 64;

fn filter_from(keys: &[u64], bits: u32) -> BloomFilter {
    let mut f = BloomFilter::new(bits, 4);
    for &k in keys {
        f.insert(k);
    }
    f
}

fn key_set(g: &mut Gen, lo: u64, hi: u64, max_len: usize) -> BTreeSet<u64> {
    let len = g.usize_in(0, max_len);
    let mut set = BTreeSet::new();
    while set.len() < len {
        set.insert(g.u64_in(lo, hi));
    }
    set
}

/// No false negatives, ever.
#[test]
fn prop_no_false_negatives() {
    run_cases("no_false_negatives", CASES, |g| {
        let keys = g.u64_vec(0, 200);
        let f = filter_from(&keys, 2048);
        for k in &keys {
            assert!(f.may_contain(*k));
        }
    });
}

/// Union is commutative and idempotent on the bit level.
#[test]
fn prop_union_commutative() {
    run_cases("union_commutative", CASES, |g| {
        let a = g.u64_vec(0, 100);
        let b = g.u64_vec(0, 100);
        let fa = filter_from(&a, 1024);
        let fb = filter_from(&b, 1024);
        assert_eq!(fa.union(&fb), fb.union(&fa));
        assert_eq!(fa.union(&fa), fa.clone());
    });
}

/// A union filter equals the filter of the concatenated key sets.
#[test]
fn prop_union_equals_bulk_insert() {
    run_cases("union_equals_bulk_insert", CASES, |g| {
        let a = g.u64_vec(0, 100);
        let b = g.u64_vec(0, 100);
        let fa = filter_from(&a, 1024);
        let fb = filter_from(&b, 1024);
        let mut both = a.clone();
        both.extend_from_slice(&b);
        assert_eq!(fa.union(&fb), filter_from(&both, 1024));
    });
}

/// If two key sets truly intersect, the filters must report intersection
/// (no false negatives on the intersect test).
#[test]
fn prop_intersects_has_no_false_negatives() {
    run_cases("intersects_no_false_negatives", CASES, |g| {
        let shared = g.u64_vec(1, 20);
        let mut ka = g.u64_vec(0, 50);
        ka.extend_from_slice(&shared);
        let mut kb = g.u64_vec(0, 50);
        kb.extend_from_slice(&shared);
        let fa = filter_from(&ka, 1024);
        let fb = filter_from(&kb, 1024);
        assert!(fa.intersects(&fb));
    });
}

/// Set-size estimates are monotone under insertion.
#[test]
fn prop_estimate_monotone() {
    run_cases("estimate_monotone", CASES, |g| {
        let keys = g.u64_vec(0, 300);
        let mut f = BloomFilter::new(4096, 4);
        let mut last = 0.0f64;
        for k in keys {
            f.insert(k);
            let est = f.estimate_len();
            assert!(est >= last - 1e-9, "estimate shrank: {est} < {last}");
            last = est;
        }
    });
}

/// The Bloom set-size estimate is within a tolerance of the true count for
/// moderately loaded filters.
#[test]
fn prop_estimate_accuracy() {
    run_cases("estimate_accuracy", CASES, |g| {
        let keys: Vec<u64> = key_set(g, 0, u64::MAX, 200).into_iter().collect();
        let f = filter_from(&keys, 8192);
        let est = f.estimate_len();
        let n = keys.len() as f64;
        // Loose statistical bound: estimation error grows with load; for
        // n<=200 on an 8192-bit filter the relative error stays small.
        assert!((est - n).abs() <= 5.0 + 0.1 * n, "est={est} n={n}");
    });
}

/// Intersection estimates roughly match true overlap for exact sets.
#[test]
fn prop_intersection_estimate_tracks_truth() {
    run_cases("intersection_estimate_tracks_truth", CASES, |g| {
        let a = key_set(g, 0, 5000, 150);
        let b = key_set(g, 0, 5000, 150);
        let va: Vec<u64> = a.iter().copied().collect();
        let vb: Vec<u64> = b.iter().copied().collect();
        let fa = filter_from(&va, 8192);
        let fb = filter_from(&vb, 8192);
        let truth = a.intersection(&b).count() as f64;
        let est = fa.intersection_estimate(&fb);
        assert!(
            (est - truth).abs() <= 10.0 + 0.15 * (va.len() + vb.len()) as f64,
            "est={est} truth={truth}"
        );
    });
}

/// Perfect signatures agree exactly with ordinary set semantics.
#[test]
fn prop_perfect_signature_is_exact() {
    run_cases("perfect_signature_is_exact", CASES, |g| {
        let a = g.u64_vec(0, 100);
        let b = g.u64_vec(0, 100);
        let sa: PerfectSignature = a.iter().copied().collect();
        let sb: PerfectSignature = b.iter().copied().collect();
        let ha: BTreeSet<u64> = a.iter().copied().collect();
        let hb: BTreeSet<u64> = b.iter().copied().collect();
        assert_eq!(sa.estimate_len(), ha.len() as f64);
        assert_eq!(
            sa.intersection_estimate(&sb),
            ha.intersection(&hb).count() as f64
        );
        assert_eq!(sa.intersects(&sb), ha.intersection(&hb).next().is_some());
    });
}

/// The estimation equations are internally consistent: inverting the
/// expected fill level recovers the element count.
#[test]
fn prop_estimate_inverts_expectation() {
    run_cases("estimate_inverts_expectation", CASES, |g| {
        let n = g.u32_in(1, 400);
        let bits = *g.choose(&[1024u32, 2048, 4096, 8192]);
        let params = EstimateParams::new(bits, 4);
        let m = bits as f64;
        let expected_bits = m * (1.0 - (1.0 - 1.0 / m).powf(4.0 * n as f64));
        let est = estimate::set_size(params, expected_bits.round() as u32);
        assert!(
            (est - n as f64).abs() < 3.0 + 0.02 * n as f64,
            "est={est} n={n}"
        );
    });
}

/// Saturation: driving the fill ratio to 1 keeps every estimate finite,
/// and a fully saturated filter reports exactly the documented
/// one-unset-bit clamp (the largest value eq. 2 can express).
#[test]
fn prop_saturated_filters_estimate_finitely() {
    run_cases("saturated_filters_estimate_finitely", CASES, |g| {
        let bits = *g.choose(&[64u32, 128, 256]);
        let mut f = BloomFilter::new(bits, 4);
        let mut last = 0.0f64;
        for round in 0.. {
            assert!(round < 100_000, "filter never saturated");
            f.insert(g.u64());
            let est = f.estimate_len();
            assert!(
                est.is_finite(),
                "estimate diverged at fill {}",
                f.count_ones()
            );
            assert!(est >= last - 1e-9, "estimate shrank under insertion");
            last = est;
            if f.count_ones() == bits {
                break;
            }
        }
        assert_eq!(
            f.estimate_len().to_bits(),
            estimate::set_size(f.params(), bits).to_bits(),
            "saturated estimate must be the one-unset-bit clamp"
        );
        // Two saturated filters: the inclusion–exclusion estimate stays
        // finite and collapses to the saturated set-size estimate.
        let est = f.intersection_estimate(&f.clone());
        assert!(est.is_finite());
        assert!((est - f.estimate_len()).abs() < 1e-9);
    });
}

/// False positives are monotone in fill: bits are only ever set, so a
/// probe that aliases once aliases forever, and at saturation every
/// probe aliases. This is the monotone false-positive rate the bounded
/// detection mode turns into (monotone) abort pressure.
#[test]
fn prop_false_positive_rate_monotone_in_fill() {
    run_cases("fp_rate_monotone_in_fill", CASES, |g| {
        let mut f = BloomFilter::new(256, 2);
        // Probes are drawn from a key range disjoint from every insert,
        // so any positive membership answer is a false positive.
        let probes: Vec<u64> = (0..128).map(|_| g.u64_in(1 << 32, u64::MAX)).collect();
        let mut last_fp = 0usize;
        while f.count_ones() < f.bits() {
            for _ in 0..8 {
                f.insert(g.u64_in(0, 1 << 31));
            }
            let fp = probes.iter().filter(|&&p| f.may_contain(p)).count();
            assert!(
                fp >= last_fp,
                "false-positive count dropped: {fp} < {last_fp}"
            );
            last_fp = fp;
        }
        assert_eq!(
            last_fp,
            probes.len(),
            "a saturated filter aliases everything"
        );
    });
}

/// The clamp contract of eq. 3 holds over the whole popcount lattice:
/// the clamped intersection is bit-for-bit `raw.max(0.0)` and never
/// negative, for any geometry up to and including saturation.
#[test]
fn prop_intersection_clamp_contract() {
    run_cases("intersection_clamp_contract", 256, |g| {
        let bits = *g.choose(&[64u32, 256, 2048]);
        let params = EstimateParams::new(bits, g.u32_in(1, 9));
        let a = g.u32_in(0, bits + 1);
        let b = g.u32_in(0, bits + 1);
        let union = g.u32_in(a.max(b), (a + b).min(bits) + 1);
        let raw = estimate::intersection_size(params, a, b, union);
        let clamped = estimate::intersection_size_clamped(params, a, b, union);
        assert!(clamped >= 0.0, "clamped estimate {clamped} went negative");
        assert_eq!(
            clamped.to_bits(),
            raw.max(0.0).to_bits(),
            "clamp must be exactly raw.max(0.0) (invariant I6 replays it bit-for-bit)"
        );
    });
}

/// Similarity is always within [0, 1].
#[test]
fn prop_similarity_bounded() {
    run_cases("similarity_bounded", 256, |g| {
        let inter = g.f64_in(-1e6, 1e6);
        let avg = g.f64_in(-100.0, 1e6);
        let s = estimate::similarity(inter, avg);
        assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
    });
}
