//! Property-based tests for the Bloom signature algebra, driven by the
//! deterministic case generator in `bfgts-testkit`.

use bfgts_bloomsig::{estimate, BloomFilter, EstimateParams, PerfectSignature, Signature};
use bfgts_testkit::{run_cases, Gen};
use std::collections::BTreeSet;

const CASES: u32 = 64;

fn filter_from(keys: &[u64], bits: u32) -> BloomFilter {
    let mut f = BloomFilter::new(bits, 4);
    for &k in keys {
        f.insert(k);
    }
    f
}

fn key_set(g: &mut Gen, lo: u64, hi: u64, max_len: usize) -> BTreeSet<u64> {
    let len = g.usize_in(0, max_len);
    let mut set = BTreeSet::new();
    while set.len() < len {
        set.insert(g.u64_in(lo, hi));
    }
    set
}

/// No false negatives, ever.
#[test]
fn prop_no_false_negatives() {
    run_cases("no_false_negatives", CASES, |g| {
        let keys = g.u64_vec(0, 200);
        let f = filter_from(&keys, 2048);
        for k in &keys {
            assert!(f.may_contain(*k));
        }
    });
}

/// Union is commutative and idempotent on the bit level.
#[test]
fn prop_union_commutative() {
    run_cases("union_commutative", CASES, |g| {
        let a = g.u64_vec(0, 100);
        let b = g.u64_vec(0, 100);
        let fa = filter_from(&a, 1024);
        let fb = filter_from(&b, 1024);
        assert_eq!(fa.union(&fb), fb.union(&fa));
        assert_eq!(fa.union(&fa), fa.clone());
    });
}

/// A union filter equals the filter of the concatenated key sets.
#[test]
fn prop_union_equals_bulk_insert() {
    run_cases("union_equals_bulk_insert", CASES, |g| {
        let a = g.u64_vec(0, 100);
        let b = g.u64_vec(0, 100);
        let fa = filter_from(&a, 1024);
        let fb = filter_from(&b, 1024);
        let mut both = a.clone();
        both.extend_from_slice(&b);
        assert_eq!(fa.union(&fb), filter_from(&both, 1024));
    });
}

/// If two key sets truly intersect, the filters must report intersection
/// (no false negatives on the intersect test).
#[test]
fn prop_intersects_has_no_false_negatives() {
    run_cases("intersects_no_false_negatives", CASES, |g| {
        let shared = g.u64_vec(1, 20);
        let mut ka = g.u64_vec(0, 50);
        ka.extend_from_slice(&shared);
        let mut kb = g.u64_vec(0, 50);
        kb.extend_from_slice(&shared);
        let fa = filter_from(&ka, 1024);
        let fb = filter_from(&kb, 1024);
        assert!(fa.intersects(&fb));
    });
}

/// Set-size estimates are monotone under insertion.
#[test]
fn prop_estimate_monotone() {
    run_cases("estimate_monotone", CASES, |g| {
        let keys = g.u64_vec(0, 300);
        let mut f = BloomFilter::new(4096, 4);
        let mut last = 0.0f64;
        for k in keys {
            f.insert(k);
            let est = f.estimate_len();
            assert!(est >= last - 1e-9, "estimate shrank: {est} < {last}");
            last = est;
        }
    });
}

/// The Bloom set-size estimate is within a tolerance of the true count for
/// moderately loaded filters.
#[test]
fn prop_estimate_accuracy() {
    run_cases("estimate_accuracy", CASES, |g| {
        let keys: Vec<u64> = key_set(g, 0, u64::MAX, 200).into_iter().collect();
        let f = filter_from(&keys, 8192);
        let est = f.estimate_len();
        let n = keys.len() as f64;
        // Loose statistical bound: estimation error grows with load; for
        // n<=200 on an 8192-bit filter the relative error stays small.
        assert!((est - n).abs() <= 5.0 + 0.1 * n, "est={est} n={n}");
    });
}

/// Intersection estimates roughly match true overlap for exact sets.
#[test]
fn prop_intersection_estimate_tracks_truth() {
    run_cases("intersection_estimate_tracks_truth", CASES, |g| {
        let a = key_set(g, 0, 5000, 150);
        let b = key_set(g, 0, 5000, 150);
        let va: Vec<u64> = a.iter().copied().collect();
        let vb: Vec<u64> = b.iter().copied().collect();
        let fa = filter_from(&va, 8192);
        let fb = filter_from(&vb, 8192);
        let truth = a.intersection(&b).count() as f64;
        let est = fa.intersection_estimate(&fb);
        assert!(
            (est - truth).abs() <= 10.0 + 0.15 * (va.len() + vb.len()) as f64,
            "est={est} truth={truth}"
        );
    });
}

/// Perfect signatures agree exactly with ordinary set semantics.
#[test]
fn prop_perfect_signature_is_exact() {
    run_cases("perfect_signature_is_exact", CASES, |g| {
        let a = g.u64_vec(0, 100);
        let b = g.u64_vec(0, 100);
        let sa: PerfectSignature = a.iter().copied().collect();
        let sb: PerfectSignature = b.iter().copied().collect();
        let ha: BTreeSet<u64> = a.iter().copied().collect();
        let hb: BTreeSet<u64> = b.iter().copied().collect();
        assert_eq!(sa.estimate_len(), ha.len() as f64);
        assert_eq!(
            sa.intersection_estimate(&sb),
            ha.intersection(&hb).count() as f64
        );
        assert_eq!(sa.intersects(&sb), ha.intersection(&hb).next().is_some());
    });
}

/// The estimation equations are internally consistent: inverting the
/// expected fill level recovers the element count.
#[test]
fn prop_estimate_inverts_expectation() {
    run_cases("estimate_inverts_expectation", CASES, |g| {
        let n = g.u32_in(1, 400);
        let bits = *g.choose(&[1024u32, 2048, 4096, 8192]);
        let params = EstimateParams::new(bits, 4);
        let m = bits as f64;
        let expected_bits = m * (1.0 - (1.0 - 1.0 / m).powf(4.0 * n as f64));
        let est = estimate::set_size(params, expected_bits.round() as u32);
        assert!(
            (est - n as f64).abs() < 3.0 + 0.02 * n as f64,
            "est={est} n={n}"
        );
    });
}

/// Similarity is always within [0, 1].
#[test]
fn prop_similarity_bounded() {
    run_cases("similarity_bounded", 256, |g| {
        let inter = g.f64_in(-1e6, 1e6);
        let avg = g.f64_in(-100.0, 1e6);
        let s = estimate::similarity(inter, avg);
        assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
    });
}
