//! Property-based tests for the Bloom signature algebra.

use bfgts_bloomsig::{estimate, BloomFilter, EstimateParams, PerfectSignature, Signature};
use proptest::prelude::*;
use std::collections::HashSet;

fn filter_from(keys: &[u64], bits: u32) -> BloomFilter {
    let mut f = BloomFilter::new(bits, 4);
    for &k in keys {
        f.insert(k);
    }
    f
}

proptest! {
    /// No false negatives, ever.
    #[test]
    fn prop_no_false_negatives(keys in proptest::collection::vec(any::<u64>(), 0..200)) {
        let f = filter_from(&keys, 2048);
        for k in &keys {
            prop_assert!(f.may_contain(*k));
        }
    }

    /// Union is commutative and idempotent on the bit level.
    #[test]
    fn prop_union_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let fa = filter_from(&a, 1024);
        let fb = filter_from(&b, 1024);
        prop_assert_eq!(fa.union(&fb), fb.union(&fa));
        prop_assert_eq!(fa.union(&fa), fa.clone());
    }

    /// A union filter equals the filter of the concatenated key sets.
    #[test]
    fn prop_union_equals_bulk_insert(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let fa = filter_from(&a, 1024);
        let fb = filter_from(&b, 1024);
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(fa.union(&fb), filter_from(&both, 1024));
    }

    /// If two key sets truly intersect, the filters must report
    /// intersection (no false negatives on the intersect test).
    #[test]
    fn prop_intersects_has_no_false_negatives(
        shared in proptest::collection::vec(any::<u64>(), 1..20),
        a in proptest::collection::vec(any::<u64>(), 0..50),
        b in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let mut ka = a.clone();
        ka.extend_from_slice(&shared);
        let mut kb = b.clone();
        kb.extend_from_slice(&shared);
        let fa = filter_from(&ka, 1024);
        let fb = filter_from(&kb, 1024);
        prop_assert!(fa.intersects(&fb));
    }

    /// Set-size estimates are monotone under insertion.
    #[test]
    fn prop_estimate_monotone(keys in proptest::collection::vec(any::<u64>(), 0..300)) {
        let mut f = BloomFilter::new(4096, 4);
        let mut last = 0.0f64;
        for k in keys {
            f.insert(k);
            let est = f.estimate_len();
            prop_assert!(est >= last - 1e-9);
            last = est;
        }
    }

    /// The Bloom set-size estimate is within a tolerance of the true count
    /// for moderately loaded filters.
    #[test]
    fn prop_estimate_accuracy(keys in proptest::collection::hash_set(any::<u64>(), 0..200)) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let f = filter_from(&keys, 8192);
        let est = f.estimate_len();
        let n = keys.len() as f64;
        // Loose statistical bound: estimation error grows with load; for
        // n<=200 on an 8192-bit filter the relative error stays small.
        prop_assert!((est - n).abs() <= 5.0 + 0.1 * n, "est={est} n={n}");
    }

    /// Intersection estimates roughly match true overlap for exact sets.
    #[test]
    fn prop_intersection_estimate_tracks_truth(
        a in proptest::collection::hash_set(0u64..5000, 0..150),
        b in proptest::collection::hash_set(0u64..5000, 0..150),
    ) {
        let va: Vec<u64> = a.iter().copied().collect();
        let vb: Vec<u64> = b.iter().copied().collect();
        let fa = filter_from(&va, 8192);
        let fb = filter_from(&vb, 8192);
        let truth = a.intersection(&b).count() as f64;
        let est = fa.intersection_estimate(&fb);
        prop_assert!((est - truth).abs() <= 10.0 + 0.15 * (va.len() + vb.len()) as f64,
            "est={est} truth={truth}");
    }

    /// Perfect signatures agree exactly with HashSet semantics.
    #[test]
    fn prop_perfect_signature_is_exact(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let sa: PerfectSignature = a.iter().copied().collect();
        let sb: PerfectSignature = b.iter().copied().collect();
        let ha: HashSet<u64> = a.iter().copied().collect();
        let hb: HashSet<u64> = b.iter().copied().collect();
        prop_assert_eq!(sa.estimate_len(), ha.len() as f64);
        prop_assert_eq!(sa.intersection_estimate(&sb), ha.intersection(&hb).count() as f64);
        prop_assert_eq!(sa.intersects(&sb), ha.intersection(&hb).next().is_some());
    }

    /// The estimation equations are internally consistent: inverting the
    /// expected fill level recovers the element count.
    #[test]
    fn prop_estimate_inverts_expectation(n in 1u32..400, bits in prop_oneof![Just(1024u32), Just(2048), Just(4096), Just(8192)]) {
        let params = EstimateParams::new(bits, 4);
        let m = bits as f64;
        let expected_bits = m * (1.0 - (1.0 - 1.0 / m).powf(4.0 * n as f64));
        let est = estimate::set_size(params, expected_bits.round() as u32);
        prop_assert!((est - n as f64).abs() < 3.0 + 0.02 * n as f64, "est={est} n={n}");
    }

    /// Similarity is always within [0, 1].
    #[test]
    fn prop_similarity_bounded(inter in -1e6f64..1e6, avg in -100f64..1e6) {
        let s = estimate::similarity(inter, avg);
        prop_assert!((0.0..=1.0).contains(&s));
    }
}
