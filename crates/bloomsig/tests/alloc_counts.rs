//! Allocation-count tests: the scheduler constructs one Bloom filter per
//! transaction begin, so filters at the paper's evaluated sizes (≤ 2048
//! bits) must not touch the heap — neither on construction nor in the
//! signature algebra (union, intersects, intersection_estimate).

use bfgts_bloomsig::BloomFilter;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_during<R>(f: impl FnOnce() -> R) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    drop(result);
    after - before
}

#[test]
fn small_and_medium_filters_allocate_nothing() {
    for bits in [64u32, 512, 1024, 2048] {
        let allocs = allocations_during(|| {
            let mut f = BloomFilter::new(bits, 4);
            for k in 0..64u64 {
                f.insert(k);
            }
            f
        });
        assert_eq!(allocs, 0, "BloomFilter::new({bits}) touched the heap");
    }
}

#[test]
fn inline_signature_algebra_allocates_nothing() {
    let mut a = BloomFilter::new(2048, 4);
    let mut b = BloomFilter::new(2048, 4);
    for k in 0..100u64 {
        a.insert(k);
        b.insert(k + 50);
    }
    let allocs = allocations_during(|| {
        let u = a.union(&b);
        let hit = a.intersects(&b);
        let est = a.intersection_estimate(&b);
        (u, hit, est)
    });
    assert_eq!(allocs, 0, "inline signature algebra touched the heap");
}

#[test]
fn large_filters_fall_back_to_the_heap() {
    let allocs = allocations_during(|| BloomFilter::new(8192, 4));
    assert!(allocs > 0, "8192-bit filter should heap-allocate");
}
