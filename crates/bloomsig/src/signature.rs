//! The [`Signature`] abstraction shared by Bloom and perfect signatures.

/// A summary of a set of 64-bit keys (cache-line addresses) supporting the
/// operations BFGTS needs: insertion, overlap tests and set-size estimates.
///
/// Two implementations exist: [`crate::BloomFilter`] (the paper's hardware
/// signatures, approximate) and [`crate::PerfectSignature`] (exact sets,
/// used by the `BFGTS-NoOverhead` configuration and by LogTM conflict
/// detection). Schedulers are generic over this trait so the estimation
/// error of Bloom signatures can be ablated against ground truth.
pub trait Signature: Clone {
    /// Records a key in the signature.
    fn insert(&mut self, key: u64);

    /// Membership test; may report false positives but never false
    /// negatives.
    fn may_contain(&self, key: u64) -> bool;

    /// Estimated number of distinct keys recorded.
    fn estimate_len(&self) -> f64;

    /// True if the two signatures (may) share a key.
    fn intersects(&self, other: &Self) -> bool;

    /// Estimated size of the intersection. May be slightly negative for
    /// approximate implementations; see
    /// [`intersection_estimate_clamped`](Signature::intersection_estimate_clamped)
    /// for the form consumers of set sizes must use.
    fn intersection_estimate(&self, other: &Self) -> f64;

    /// [`intersection_estimate`](Signature::intersection_estimate)
    /// clamped at zero. Running averages and confidence weights must use
    /// this form: a negative "size" fed into an average silently drags it
    /// below zero and poisons every later update.
    fn intersection_estimate_clamped(&self, other: &Self) -> f64 {
        self.intersection_estimate(other).max(0.0)
    }

    /// Merges `other` into `self`.
    fn union_in_place(&mut self, other: &Self);

    /// Removes all keys.
    fn clear(&mut self);

    /// True if no key has been recorded.
    fn is_empty(&self) -> bool;
}

/// Which signature representation a scheduler configuration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureKind {
    /// Bloom filter of the given size in bits (the paper sweeps 512–8192).
    Bloom {
        /// Filter size in bits.
        bits: u32,
    },
    /// Exact sets (the `BFGTS-NoOverhead` configuration).
    Perfect,
}

impl SignatureKind {
    /// Human-readable label used in experiment reports.
    pub fn label(&self) -> String {
        match self {
            SignatureKind::Bloom { bits } => format!("bloom{bits}"),
            SignatureKind::Perfect => "perfect".to_string(),
        }
    }
}

impl std::fmt::Display for SignatureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels() {
        assert_eq!(SignatureKind::Bloom { bits: 512 }.label(), "bloom512");
        assert_eq!(SignatureKind::Perfect.label(), "perfect");
        assert_eq!(format!("{}", SignatureKind::Perfect), "perfect");
    }
}
