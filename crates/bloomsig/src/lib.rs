//! Bloom filter signatures and the set-size estimation algebra used by
//! *Bloom Filter Guided Transaction Scheduling* (BFGTS, HPCA 2011).
//!
//! A transactional memory system summarises the set of cache lines a
//! transaction has read or written as a *signature*. BFGTS goes further: it
//! manipulates signatures algebraically to estimate how many addresses two
//! read/write sets have in common, which drives its *similarity* metric
//! (paper §3.2, equations 2–4).
//!
//! This crate provides:
//!
//! * [`BloomFilter`] — a fixed-size, `k`-hash Bloom filter over 64-bit keys
//!   with union, bit-count and intersection queries.
//! * [`estimate`] — the set-size estimation equations of Michael et al.
//!   (eqs. 2 and 3 of the paper) and the similarity metric (eq. 4).
//! * [`PerfectSignature`] — an exact-set signature used by the paper's
//!   `BFGTS-NoOverhead` configuration and by LogTM-style perfect conflict
//!   detection.
//! * [`Signature`] — a common trait so schedulers can run on either
//!   representation.
//!
//! # Example
//!
//! ```
//! use bfgts_bloomsig::{BloomFilter, Signature};
//!
//! let mut a = BloomFilter::new(1024, 4);
//! let mut b = BloomFilter::new(1024, 4);
//! for addr in 0..100u64 {
//!     a.insert(addr);
//!     b.insert(addr + 50); // 50 addresses overlap
//! }
//! let est = a.intersection_estimate(&b);
//! assert!((est - 50.0).abs() < 15.0, "estimate {est} too far from 50");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimate;
mod filter;
mod hash;
mod perfect;
mod signature;

pub use estimate::{
    intersection_size, intersection_size_clamped, set_size, similarity, EstimateParams,
};
pub use filter::BloomFilter;
pub use perfect::PerfectSignature;
pub use signature::{Signature, SignatureKind};
