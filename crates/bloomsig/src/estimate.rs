//! Set-size estimation algebra over Bloom filters (paper §3.2).
//!
//! BFGTS adapts the extended Bloom filter operations of Michael et al.
//! (originally for distributed database joins) to estimate transactional
//! read/write-set overlap:
//!
//! * Equation 2 — the number of elements encoded in a filter can be
//!   estimated from its population count:
//!   `S⁻¹(t) = ln(1 − t/m) / (k · ln(1 − 1/m))`
//!   where `t` is the number of set bits, `m` the filter size in bits and
//!   `k` the number of hash functions.
//! * Equation 3 — the size of the intersection of two sets follows from
//!   inclusion–exclusion on their filters:
//!   `|A ∩ B| ≈ S⁻¹(A) + S⁻¹(B) − S⁻¹(A ∪ B)`.
//! * Equation 4 — *similarity* between consecutive executions of a
//!   transaction is the estimated intersection of their read/write sets
//!   normalised by the transaction's historical average set size.

/// Parameters of the estimation equations: filter geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EstimateParams {
    /// Total filter size in bits (`m`).
    pub bits: u32,
    /// Number of hash functions (`k`).
    pub hashes: u32,
}

impl EstimateParams {
    /// Creates estimation parameters for an `m`-bit, `k`-hash filter.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` or `hashes == 0`: the estimator's logarithm
    /// denominator degenerates for those geometries.
    pub fn new(bits: u32, hashes: u32) -> Self {
        assert!(bits >= 2, "filter must have at least 2 bits");
        assert!(hashes >= 1, "filter must use at least 1 hash function");
        Self { bits, hashes }
    }

    /// The denominator `k · ln(1 − 1/m)` shared by all estimates.
    #[inline]
    fn denom(self) -> f64 {
        self.hashes as f64 * (1.0 - 1.0 / self.bits as f64).ln()
    }
}

/// Estimated number of distinct elements encoded in a filter with
/// `bits_set` population count (paper eq. 2).
///
/// A saturated filter (all bits set) encodes "at least" rather than
/// "exactly"; we return the estimate for one unset bit short of saturation,
/// which is the largest value the equation can express. This matches the
/// behaviour of a hardware implementation where `ln(0)` must be clamped.
///
/// # Panics
///
/// Panics if `bits_set > params.bits`.
#[inline]
pub fn set_size(params: EstimateParams, bits_set: u32) -> f64 {
    assert!(
        bits_set <= params.bits,
        "bits_set {} exceeds filter size {}",
        bits_set,
        params.bits
    );
    let m = params.bits as f64;
    let t = if bits_set == params.bits {
        m - 1.0
    } else {
        bits_set as f64
    };
    (1.0 - t / m).ln() / params.denom()
}

/// Estimated `|A ∩ B|` from the population counts of `A`, `B` and `A ∪ B`
/// (paper eq. 3). May be slightly negative for disjoint sets due to
/// estimation noise.
///
/// This is the *raw* estimate, kept for diagnostics (the trace records it
/// verbatim). Anything that treats the result as a set size — similarity
/// averages, confidence weights — must go through
/// [`intersection_size_clamped`]; feeding a negative "size" into a running
/// average silently drags it below zero and poisons every later update.
#[inline]
pub fn intersection_size(params: EstimateParams, bits_a: u32, bits_b: u32, bits_union: u32) -> f64 {
    set_size(params, bits_a) + set_size(params, bits_b) - set_size(params, bits_union)
}

/// [`intersection_size`] clamped at zero: the canonical form of eq. 3 for
/// consumers that need a set size. The trace audit (invariant I6 of
/// `bfgts-trace`) checks that every recorded Bloom sample used exactly
/// this clamp.
#[inline]
pub fn intersection_size_clamped(
    params: EstimateParams,
    bits_a: u32,
    bits_b: u32,
    bits_union: u32,
) -> f64 {
    intersection_size(params, bits_a, bits_b, bits_union).max(0.0)
}

/// Similarity between two consecutive read/write sets (paper eq. 4):
/// estimated intersection size divided by the historical average set size.
///
/// Returns a value clamped to `[0, 1]`. A zero or negative
/// `avg_rw_set_size` yields 0 (an empty-history transaction has no
/// meaningful similarity yet).
pub fn similarity(intersection_estimate: f64, avg_rw_set_size: f64) -> f64 {
    if avg_rw_set_size <= 0.0 {
        return 0.0;
    }
    (intersection_estimate / avg_rw_set_size).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> EstimateParams {
        EstimateParams::new(2048, 4)
    }

    #[test]
    fn empty_filter_estimates_zero() {
        assert_eq!(set_size(p(), 0), 0.0);
    }

    #[test]
    fn estimate_is_monotonic_in_bits_set() {
        let mut last = -1.0;
        for t in 0..=2048 {
            let est = set_size(p(), t);
            assert!(est >= last, "estimate not monotonic at t={t}");
            last = est;
        }
    }

    #[test]
    fn estimate_matches_expected_fill_rate() {
        // Inserting n elements sets each bit with probability
        // 1 - (1 - 1/m)^(k n); inverting that expectation should recover n.
        let params = p();
        let n = 100.0_f64;
        let expected_bits = params.bits as f64
            * (1.0 - (1.0 - 1.0 / params.bits as f64).powf(params.hashes as f64 * n));
        let est = set_size(params, expected_bits.round() as u32);
        assert!((est - n).abs() < 2.0, "estimate {est} should be near {n}");
    }

    #[test]
    fn saturated_filter_is_finite() {
        let est = set_size(p(), 2048);
        assert!(est.is_finite());
        assert!(est > set_size(p(), 2040));
    }

    #[test]
    #[should_panic(expected = "exceeds filter size")]
    fn overfull_popcount_panics() {
        set_size(p(), 4096);
    }

    #[test]
    fn intersection_of_identical_popcounts_is_full_size() {
        // If A == B then union popcount == each popcount and the
        // intersection estimate equals the set-size estimate.
        let est_set = set_size(p(), 500);
        let est_int = intersection_size(p(), 500, 500, 500);
        assert!((est_set - est_int).abs() < 1e-9);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        // Disjoint sets: union popcount ~ sum of popcounts (minus random
        // collisions). With exact sum the estimate is slightly negative
        // because set_size is convex; it must be close to zero.
        let est = intersection_size(p(), 300, 300, 600);
        assert!(est.abs() < 25.0, "disjoint estimate {est} should be near 0");
    }

    #[test]
    fn clamped_intersection_is_never_negative() {
        // The raw disjoint estimate goes negative; the clamped form is the
        // raw estimate clamped at exactly zero (bit-for-bit, which is what
        // the trace audit checks).
        let raw = intersection_size(p(), 300, 300, 600);
        assert!(raw < 0.0, "expected a negative raw estimate, got {raw}");
        let clamped = intersection_size_clamped(p(), 300, 300, 600);
        assert_eq!(clamped.to_bits(), raw.max(0.0).to_bits());
        assert_eq!(clamped, 0.0);
        // Positive estimates pass through untouched.
        let overlap = intersection_size(p(), 500, 500, 500);
        assert_eq!(
            intersection_size_clamped(p(), 500, 500, 500).to_bits(),
            overlap.to_bits()
        );
    }

    #[test]
    fn similarity_clamps_to_unit_interval() {
        assert_eq!(similarity(500.0, 10.0), 1.0);
        assert_eq!(similarity(-3.0, 10.0), 0.0);
        assert!((similarity(5.0, 10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn similarity_with_no_history_is_zero() {
        assert_eq!(similarity(10.0, 0.0), 0.0);
        assert_eq!(similarity(10.0, -1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 bits")]
    fn degenerate_params_rejected() {
        EstimateParams::new(1, 4);
    }

    #[test]
    #[should_panic(expected = "at least 1 hash")]
    fn zero_hashes_rejected() {
        EstimateParams::new(512, 0);
    }
}
