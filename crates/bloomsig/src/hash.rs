//! Hash functions for Bloom filter indexing.
//!
//! Uses the classic double-hashing scheme of Kirsch & Mitzenmacher: two
//! independent 64-bit mixes `h1`, `h2` generate the `k` probe positions as
//! `h1 + i * h2`. Hardware signature implementations (Sanchez et al.,
//! MICRO'07) use the same idea with H3/PBX hash matrices; a multiplicative
//! mix is an adequate software stand-in with equivalent distribution
//! quality for our purposes.

/// First 64-bit mixer (SplitMix64 finalizer).
#[inline]
pub(crate) fn mix1(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Second 64-bit mixer (Murmur3 finalizer with distinct constants).
#[inline]
pub(crate) fn mix2(key: u64) -> u64 {
    let mut z = key ^ 0xff51_afd7_ed55_8ccd;
    z = z.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^ (z >> 33)
}

/// Iterator over the `k` bit positions for `key` in a filter of `m` bits.
#[inline]
pub(crate) fn probe_positions(key: u64, k: u32, m: u32) -> impl Iterator<Item = u32> {
    let h1 = mix1(key);
    // Force h2 odd so successive probes cycle through distinct positions
    // even when m is a power of two.
    let h2 = mix2(key) | 1;
    (0..k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m as u64) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixers_differ() {
        for key in [0u64, 1, 42, u64::MAX] {
            assert_ne!(mix1(key), mix2(key), "mixers collide for {key}");
        }
    }

    #[test]
    fn mix1_is_deterministic() {
        assert_eq!(mix1(12345), mix1(12345));
        assert_eq!(mix2(12345), mix2(12345));
    }

    #[test]
    fn probes_in_range() {
        for key in 0..1000u64 {
            for pos in probe_positions(key, 8, 513) {
                assert!(pos < 513);
            }
        }
    }

    #[test]
    fn probes_count_matches_k() {
        assert_eq!(probe_positions(7, 4, 512).count(), 4);
        assert_eq!(probe_positions(7, 1, 512).count(), 1);
    }

    #[test]
    fn probes_mostly_distinct_for_pow2_m() {
        // With h2 forced odd, the k positions for one key should rarely
        // collide for power-of-two m.
        let mut collisions = 0;
        for key in 0..1000u64 {
            let v: Vec<u32> = probe_positions(key, 4, 1024).collect();
            let mut s = v.clone();
            s.sort_unstable();
            s.dedup();
            if s.len() != v.len() {
                collisions += 1;
            }
        }
        assert!(
            collisions < 20,
            "too many intra-key collisions: {collisions}"
        );
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let m = 256u32;
        let mut counts = vec![0u32; m as usize];
        for key in 0..10_000u64 {
            for pos in probe_positions(key, 2, m) {
                counts[pos as usize] += 1;
            }
        }
        let expected = 10_000.0 * 2.0 / m as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.5 && (c as f64) < expected * 1.5,
                "bucket {i} count {c} far from expected {expected}"
            );
        }
    }
}
