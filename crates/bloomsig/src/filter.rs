//! The [`BloomFilter`] signature representation.

use crate::estimate::{self, EstimateParams};
use crate::hash::probe_positions;
use crate::signature::Signature;
use std::fmt;

/// Words of inline storage for the small-filter variant (≤ 512 bits).
const INLINE_SMALL: usize = 8;
/// Words of inline storage for the medium-filter variant (≤ 2048 bits).
const INLINE_MEDIUM: usize = 32;

/// Backing storage for the filter's bit array.
///
/// The simulator allocates one filter per transaction begin on the
/// scheduler's hot path, and the paper's evaluated geometries are small
/// (512–2048 bits for every headline configuration). Filters up to 2048
/// bits therefore live entirely inline — constructing them performs zero
/// heap allocations — and only the 4096/8192-bit sweep sizes fall back to
/// a `Vec`. The active length is always `params.bits / 64` words; unused
/// tail words of an inline array are kept zero as an invariant so
/// whole-variant comparisons and hashes agree with active-slice semantics.
#[derive(Clone)]
enum Words {
    /// Up to 512 bits inline.
    Small([u64; INLINE_SMALL]),
    /// Up to 2048 bits inline.
    Medium([u64; INLINE_MEDIUM]),
    /// Larger filters (the Figure 6 sweep's 4096/8192-bit points).
    Heap(Vec<u64>),
}

impl Words {
    fn with_words(n: usize) -> Self {
        if n <= INLINE_SMALL {
            Words::Small([0; INLINE_SMALL])
        } else if n <= INLINE_MEDIUM {
            Words::Medium([0; INLINE_MEDIUM])
        } else {
            Words::Heap(vec![0; n])
        }
    }
}

/// A fixed-geometry Bloom filter over 64-bit keys (cache-line addresses).
///
/// This models the hardware signatures of the paper: `m` bits (512–8192 in
/// the evaluation), `k` hash functions, with the union / population-count /
/// intersection-estimate operations of §3.2 implemented over 64-bit words
/// so the scheduler's cost model can charge one `popcnt` per word.
///
/// Filters of at most 2048 bits store their words inline (no heap
/// allocation), and the three population counts behind
/// [`intersection_estimate`](BloomFilter::intersection_estimate) are fused
/// into a single pass over the word pairs.
///
/// # Example
///
/// ```
/// use bfgts_bloomsig::BloomFilter;
///
/// let mut f = BloomFilter::new(512, 4);
/// f.insert(0xdead);
/// assert!(f.may_contain(0xdead));
/// assert!(f.count_ones() <= 4);
/// ```
#[derive(Clone)]
pub struct BloomFilter {
    words: Words,
    params: EstimateParams,
}

impl BloomFilter {
    /// Creates an empty filter of `bits` total size using `hashes` hash
    /// functions.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` or `hashes == 0` (see [`EstimateParams::new`]),
    /// or if `bits` is not a multiple of 64 (hardware signatures are built
    /// from 64-bit registers; the cost model counts whole words).
    pub fn new(bits: u32, hashes: u32) -> Self {
        assert!(
            bits.is_multiple_of(64),
            "filter size must be a multiple of 64 bits"
        );
        let params = EstimateParams::new(bits, hashes);
        Self {
            words: Words::with_words((bits / 64) as usize),
            params,
        }
    }

    /// Filter geometry (size and hash count) used for estimation.
    pub fn params(&self) -> EstimateParams {
        self.params
    }

    /// Total size in bits (`m`).
    pub fn bits(&self) -> u32 {
        self.params.bits
    }

    /// Number of hash functions (`k`).
    pub fn hashes(&self) -> u32 {
        self.params.hashes
    }

    /// Number of 64-bit words backing the filter. The scheduler cost model
    /// charges one `popcnt` instruction per word.
    pub fn word_count(&self) -> usize {
        (self.params.bits / 64) as usize
    }

    /// The active words of the filter.
    #[inline]
    fn words(&self) -> &[u64] {
        let n = self.word_count();
        match &self.words {
            Words::Small(a) => &a[..n],
            Words::Medium(a) => &a[..n],
            Words::Heap(v) => v,
        }
    }

    /// The active words of the filter, mutably.
    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let n = (self.params.bits / 64) as usize;
        match &mut self.words {
            Words::Small(a) => &mut a[..n],
            Words::Medium(a) => &mut a[..n],
            Words::Heap(v) => v,
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        let (hashes, bits) = (self.params.hashes, self.params.bits);
        let words = self.words_mut();
        for pos in probe_positions(key, hashes, bits) {
            *words
                .get_mut((pos / 64) as usize)
                .expect("probe positions stay below the bit count") |= 1u64 << (pos % 64);
        }
    }

    /// Forces a single bit position high — the fault-injection corruption
    /// hook (DESIGN.md §9). A forced bit manufactures false positives
    /// without inserting a key, inflating intersection estimates and
    /// exercising the `intersection_size` clamp path; legitimate inserts
    /// only ever go through hashed probe positions. The caller supplies
    /// the position so this crate stays a leaf (no RNG dependency).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= bits`.
    pub fn set_bit(&mut self, pos: u32) {
        assert!(
            pos < self.params.bits,
            "bit {pos} out of range for a {}-bit filter",
            self.params.bits
        );
        *self
            .words_mut()
            .get_mut((pos / 64) as usize)
            .expect("bit position bounds-checked above") |= 1u64 << (pos % 64);
    }

    /// Membership test. False positives are possible, false negatives are
    /// not.
    pub fn may_contain(&self, key: u64) -> bool {
        let words = self.words();
        probe_positions(key, self.params.hashes, self.params.bits).all(|pos| {
            let word = words
                .get((pos / 64) as usize)
                .copied()
                .expect("probe positions stay below the bit count");
            word & (1u64 << (pos % 64)) != 0
        })
    }

    /// Population count `t`: number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    /// True if no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        match &mut self.words {
            Words::Small(a) => a.fill(0),
            Words::Medium(a) => a.fill(0),
            Words::Heap(v) => v.fill(0),
        }
    }

    /// Bitwise union with `other`, returning a new filter. Inline-stored
    /// filters (≤ 2048 bits) build the result without touching the heap.
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different geometry.
    pub fn union(&self, other: &Self) -> Self {
        self.check_compatible(other);
        let mut out = self.clone();
        out.union_in_place(other);
        out
    }

    /// In-place bitwise union.
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different geometry.
    pub fn union_in_place(&mut self, other: &Self) {
        self.check_compatible(other);
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// True if the bitwise intersection is non-empty. This is the
    /// `intersectBlooms` test used by `commitTx` (paper Example 4) to decide
    /// whether a serialisation decision was justified.
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different geometry.
    pub fn intersects(&self, other: &Self) -> bool {
        self.check_compatible(other);
        self.words()
            .iter()
            .zip(other.words())
            .any(|(a, b)| a & b != 0)
    }

    /// Estimated number of elements encoded in this filter (paper eq. 2).
    pub fn estimate_len(&self) -> f64 {
        estimate::set_size(self.params, self.count_ones())
    }

    /// Estimated `|A ∩ B|` via inclusion–exclusion on population counts
    /// (paper eq. 3).  May be slightly negative for disjoint sets.
    ///
    /// The three population counts the equation needs (`|A|`, `|B|` and
    /// `|A ∪ B|`) are gathered in one fused pass over the word pairs —
    /// three popcounts per word pair, one traversal — instead of three
    /// separate traversals with an allocated union filter in the middle.
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different geometry.
    pub fn intersection_estimate(&self, other: &Self) -> f64 {
        self.check_compatible(other);
        let (mut ones_a, mut ones_b, mut ones_union) = (0u32, 0u32, 0u32);
        for (&a, &b) in self.words().iter().zip(other.words()) {
            ones_a += a.count_ones();
            ones_b += b.count_ones();
            ones_union += (a | b).count_ones();
        }
        estimate::intersection_size(self.params, ones_a, ones_b, ones_union)
    }

    fn check_compatible(&self, other: &Self) {
        assert_eq!(
            self.params, other.params,
            "bloom filter geometry mismatch: {:?} vs {:?}",
            self.params, other.params
        );
    }
}

impl PartialEq for BloomFilter {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params && self.words() == other.words()
    }
}

impl Eq for BloomFilter {}

impl std::hash::Hash for BloomFilter {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.params.hash(state);
        self.words().hash(state);
    }
}

impl fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BloomFilter")
            .field("bits", &self.params.bits)
            .field("hashes", &self.params.hashes)
            .field("ones", &self.count_ones())
            .finish()
    }
}

impl Signature for BloomFilter {
    fn insert(&mut self, key: u64) {
        BloomFilter::insert(self, key)
    }

    fn may_contain(&self, key: u64) -> bool {
        BloomFilter::may_contain(self, key)
    }

    fn estimate_len(&self) -> f64 {
        BloomFilter::estimate_len(self)
    }

    fn intersects(&self, other: &Self) -> bool {
        BloomFilter::intersects(self, other)
    }

    fn intersection_estimate(&self, other: &Self) -> f64 {
        BloomFilter::intersection_estimate(self, other)
    }

    fn union_in_place(&mut self, other: &Self) {
        BloomFilter::union_in_place(self, other)
    }

    fn clear(&mut self) {
        BloomFilter::clear(self)
    }

    fn is_empty(&self) -> bool {
        BloomFilter::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_filter_is_empty() {
        let f = BloomFilter::new(512, 4);
        assert!(f.is_empty());
        assert_eq!(f.count_ones(), 0);
        assert_eq!(f.word_count(), 8);
    }

    #[test]
    fn storage_variant_matches_size() {
        assert!(matches!(BloomFilter::new(64, 4).words, Words::Small(_)));
        assert!(matches!(BloomFilter::new(512, 4).words, Words::Small(_)));
        assert!(matches!(BloomFilter::new(576, 4).words, Words::Medium(_)));
        assert!(matches!(BloomFilter::new(1024, 4).words, Words::Medium(_)));
        assert!(matches!(BloomFilter::new(2048, 4).words, Words::Medium(_)));
        assert!(matches!(BloomFilter::new(4096, 4).words, Words::Heap(_)));
        assert!(matches!(BloomFilter::new(8192, 4).words, Words::Heap(_)));
    }

    #[test]
    fn active_slice_length_is_geometry_not_capacity() {
        for bits in [64u32, 512, 1024, 2048, 4096] {
            let f = BloomFilter::new(bits, 4);
            assert_eq!(f.words().len(), (bits / 64) as usize, "bits={bits}");
            assert_eq!(f.word_count(), (bits / 64) as usize);
        }
    }

    #[test]
    fn inline_tail_words_stay_zero() {
        // 1024 bits uses 16 of the 32 medium words; operations must never
        // touch the tail (the equality/hash invariant).
        let mut f = BloomFilter::new(1024, 4);
        for k in 0..500u64 {
            f.insert(k);
        }
        let mut g = BloomFilter::new(1024, 4);
        g.union_in_place(&f);
        match (&f.words, &g.words) {
            (Words::Medium(a), Words::Medium(b)) => {
                assert!(a[16..].iter().all(|&w| w == 0));
                assert!(b[16..].iter().all(|&w| w == 0));
            }
            _ => panic!("expected medium storage"),
        }
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1024, 4);
        for key in 0..200u64 {
            f.insert(key * 7919);
        }
        for key in 0..200u64 {
            assert!(f.may_contain(key * 7919));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut f = BloomFilter::new(2048, 4);
        for key in 0..100u64 {
            f.insert(key);
        }
        let fp = (10_000..20_000u64).filter(|&k| f.may_contain(k)).count();
        // theoretical fp rate for m=2048, k=4, n=100 is ~0.1%
        assert!(fp < 200, "false positive count too high: {fp}");
    }

    #[test]
    fn insert_is_idempotent() {
        let mut f = BloomFilter::new(512, 4);
        f.insert(99);
        let ones = f.count_ones();
        f.insert(99);
        assert_eq!(f.count_ones(), ones);
    }

    #[test]
    fn set_bit_forces_exact_positions() {
        let mut f = BloomFilter::new(512, 4);
        f.set_bit(0);
        f.set_bit(63);
        f.set_bit(64);
        f.set_bit(511);
        assert_eq!(f.count_ones(), 4);
        f.set_bit(64); // idempotent
        assert_eq!(f.count_ones(), 4);
        assert_eq!(f.words()[0], 1 | (1u64 << 63));
        assert_eq!(f.words()[1], 1);
        assert_eq!(f.words()[7], 1u64 << 63);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_bit_rejects_out_of_range_positions() {
        BloomFilter::new(512, 4).set_bit(512);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(512, 4);
        f.insert(1);
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn union_contains_both() {
        let mut a = BloomFilter::new(512, 4);
        let mut b = BloomFilter::new(512, 4);
        a.insert(1);
        b.insert(2);
        let u = a.union(&b);
        assert!(u.may_contain(1) && u.may_contain(2));
    }

    #[test]
    fn union_in_place_matches_union() {
        let mut a = BloomFilter::new(512, 4);
        let mut b = BloomFilter::new(512, 4);
        for k in 0..50 {
            a.insert(k);
            b.insert(k + 25);
        }
        let u = a.union(&b);
        a.union_in_place(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn intersects_detects_shared_key() {
        let mut a = BloomFilter::new(512, 4);
        let mut b = BloomFilter::new(512, 4);
        a.insert(42);
        b.insert(42);
        assert!(a.intersects(&b));
    }

    #[test]
    fn empty_filters_do_not_intersect() {
        let a = BloomFilter::new(512, 4);
        let b = BloomFilter::new(512, 4);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn estimate_len_tracks_inserted_count() {
        let mut f = BloomFilter::new(4096, 4);
        for key in 0..150u64 {
            f.insert(key.wrapping_mul(0x9e3779b9));
        }
        let est = f.estimate_len();
        assert!((est - 150.0).abs() < 10.0, "estimate {est} far from 150");
    }

    #[test]
    fn intersection_estimate_tracks_overlap() {
        let mut a = BloomFilter::new(4096, 4);
        let mut b = BloomFilter::new(4096, 4);
        for key in 0..100u64 {
            a.insert(key);
        }
        for key in 60..160u64 {
            b.insert(key);
        }
        let est = a.intersection_estimate(&b);
        assert!((est - 40.0).abs() < 12.0, "estimate {est} far from 40");
    }

    #[test]
    fn fused_estimate_matches_unfused_reference() {
        // The fused single-pass popcounts must agree exactly with the
        // textbook three-pass computation for every storage variant.
        for bits in [512u32, 1024, 2048, 4096] {
            let mut a = BloomFilter::new(bits, 4);
            let mut b = BloomFilter::new(bits, 4);
            for key in 0..80u64 {
                a.insert(key.wrapping_mul(0x9e3779b9));
                b.insert((key + 40).wrapping_mul(0x9e3779b9));
            }
            let union_ones = a.union(&b).count_ones();
            let reference =
                estimate::intersection_size(a.params(), a.count_ones(), b.count_ones(), union_ones);
            assert_eq!(a.intersection_estimate(&b), reference, "bits={bits}");
        }
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn mismatched_geometry_panics() {
        let a = BloomFilter::new(512, 4);
        let b = BloomFilter::new(1024, 4);
        let _ = a.intersects(&b);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn non_word_size_rejected() {
        BloomFilter::new(100, 4);
    }

    #[test]
    fn debug_is_nonempty() {
        let f = BloomFilter::new(512, 4);
        assert!(!format!("{f:?}").is_empty());
    }

    #[test]
    fn eq_and_hash_use_active_slice() {
        // detlint: allow(D001,D004) -- test asserts Hash-impl consistency within one process; no ordering or cross-run value is derived
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a = BloomFilter::new(1024, 4);
        let mut b = BloomFilter::new(1024, 4);
        for k in 0..30u64 {
            a.insert(k);
            b.insert(k);
        }
        assert_eq!(a, b);
        let hash = |f: &BloomFilter| {
            let mut h = DefaultHasher::new(); // detlint: allow(D004) -- same-process hash comparison only
            f.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        b.insert(31);
        assert_ne!(a, b);
    }
}
