//! The [`BloomFilter`] signature representation.

use crate::estimate::{self, EstimateParams};
use crate::hash::probe_positions;
use crate::signature::Signature;
use std::fmt;

/// A fixed-geometry Bloom filter over 64-bit keys (cache-line addresses).
///
/// This models the hardware signatures of the paper: `m` bits (512–8192 in
/// the evaluation), `k` hash functions, with the union / population-count /
/// intersection-estimate operations of §3.2 implemented over 64-bit words
/// so the scheduler's cost model can charge one `popcnt` per word.
///
/// # Example
///
/// ```
/// use bfgts_bloomsig::BloomFilter;
///
/// let mut f = BloomFilter::new(512, 4);
/// f.insert(0xdead);
/// assert!(f.may_contain(0xdead));
/// assert!(f.count_ones() <= 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BloomFilter {
    words: Vec<u64>,
    params: EstimateParams,
}

impl BloomFilter {
    /// Creates an empty filter of `bits` total size using `hashes` hash
    /// functions.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` or `hashes == 0` (see [`EstimateParams::new`]),
    /// or if `bits` is not a multiple of 64 (hardware signatures are built
    /// from 64-bit registers; the cost model counts whole words).
    pub fn new(bits: u32, hashes: u32) -> Self {
        assert!(bits % 64 == 0, "filter size must be a multiple of 64 bits");
        let params = EstimateParams::new(bits, hashes);
        Self {
            words: vec![0; (bits / 64) as usize],
            params,
        }
    }

    /// Filter geometry (size and hash count) used for estimation.
    pub fn params(&self) -> EstimateParams {
        self.params
    }

    /// Total size in bits (`m`).
    pub fn bits(&self) -> u32 {
        self.params.bits
    }

    /// Number of hash functions (`k`).
    pub fn hashes(&self) -> u32 {
        self.params.hashes
    }

    /// Number of 64-bit words backing the filter. The scheduler cost model
    /// charges one `popcnt` instruction per word.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        for pos in probe_positions(key, self.params.hashes, self.params.bits) {
            self.words[(pos / 64) as usize] |= 1u64 << (pos % 64);
        }
    }

    /// Membership test. False positives are possible, false negatives are
    /// not.
    pub fn may_contain(&self, key: u64) -> bool {
        probe_positions(key, self.params.hashes, self.params.bits)
            .all(|pos| self.words[(pos / 64) as usize] & (1u64 << (pos % 64)) != 0)
    }

    /// Population count `t`: number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// True if no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Bitwise union with `other`, returning a new filter.
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different geometry.
    pub fn union(&self, other: &Self) -> Self {
        self.check_compatible(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        Self {
            words,
            params: self.params,
        }
    }

    /// In-place bitwise union.
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different geometry.
    pub fn union_in_place(&mut self, other: &Self) {
        self.check_compatible(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// True if the bitwise intersection is non-empty. This is the
    /// `intersectBlooms` test used by `commitTx` (paper Example 4) to decide
    /// whether a serialisation decision was justified.
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different geometry.
    pub fn intersects(&self, other: &Self) -> bool {
        self.check_compatible(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Estimated number of elements encoded in this filter (paper eq. 2).
    pub fn estimate_len(&self) -> f64 {
        estimate::set_size(self.params, self.count_ones())
    }

    /// Estimated `|A ∩ B|` via inclusion–exclusion on population counts
    /// (paper eq. 3). May be slightly negative for disjoint sets.
    ///
    /// # Panics
    ///
    /// Panics if the two filters have different geometry.
    pub fn intersection_estimate(&self, other: &Self) -> f64 {
        self.check_compatible(other);
        let union: u32 = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones())
            .sum();
        estimate::intersection_size(self.params, self.count_ones(), other.count_ones(), union)
    }

    fn check_compatible(&self, other: &Self) {
        assert_eq!(
            self.params, other.params,
            "bloom filter geometry mismatch: {:?} vs {:?}",
            self.params, other.params
        );
    }
}

impl fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BloomFilter")
            .field("bits", &self.params.bits)
            .field("hashes", &self.params.hashes)
            .field("ones", &self.count_ones())
            .finish()
    }
}

impl Signature for BloomFilter {
    fn insert(&mut self, key: u64) {
        BloomFilter::insert(self, key)
    }

    fn may_contain(&self, key: u64) -> bool {
        BloomFilter::may_contain(self, key)
    }

    fn estimate_len(&self) -> f64 {
        BloomFilter::estimate_len(self)
    }

    fn intersects(&self, other: &Self) -> bool {
        BloomFilter::intersects(self, other)
    }

    fn intersection_estimate(&self, other: &Self) -> f64 {
        BloomFilter::intersection_estimate(self, other)
    }

    fn union_in_place(&mut self, other: &Self) {
        BloomFilter::union_in_place(self, other)
    }

    fn clear(&mut self) {
        BloomFilter::clear(self)
    }

    fn is_empty(&self) -> bool {
        BloomFilter::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_filter_is_empty() {
        let f = BloomFilter::new(512, 4);
        assert!(f.is_empty());
        assert_eq!(f.count_ones(), 0);
        assert_eq!(f.word_count(), 8);
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1024, 4);
        for key in 0..200u64 {
            f.insert(key * 7919);
        }
        for key in 0..200u64 {
            assert!(f.may_contain(key * 7919));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut f = BloomFilter::new(2048, 4);
        for key in 0..100u64 {
            f.insert(key);
        }
        let fp = (10_000..20_000u64).filter(|&k| f.may_contain(k)).count();
        // theoretical fp rate for m=2048, k=4, n=100 is ~0.1%
        assert!(fp < 200, "false positive count too high: {fp}");
    }

    #[test]
    fn insert_is_idempotent() {
        let mut f = BloomFilter::new(512, 4);
        f.insert(99);
        let ones = f.count_ones();
        f.insert(99);
        assert_eq!(f.count_ones(), ones);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(512, 4);
        f.insert(1);
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn union_contains_both() {
        let mut a = BloomFilter::new(512, 4);
        let mut b = BloomFilter::new(512, 4);
        a.insert(1);
        b.insert(2);
        let u = a.union(&b);
        assert!(u.may_contain(1) && u.may_contain(2));
    }

    #[test]
    fn union_in_place_matches_union() {
        let mut a = BloomFilter::new(512, 4);
        let mut b = BloomFilter::new(512, 4);
        for k in 0..50 {
            a.insert(k);
            b.insert(k + 25);
        }
        let u = a.union(&b);
        a.union_in_place(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn intersects_detects_shared_key() {
        let mut a = BloomFilter::new(512, 4);
        let mut b = BloomFilter::new(512, 4);
        a.insert(42);
        b.insert(42);
        assert!(a.intersects(&b));
    }

    #[test]
    fn empty_filters_do_not_intersect() {
        let a = BloomFilter::new(512, 4);
        let b = BloomFilter::new(512, 4);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn estimate_len_tracks_inserted_count() {
        let mut f = BloomFilter::new(4096, 4);
        for key in 0..150u64 {
            f.insert(key.wrapping_mul(0x9e3779b9));
        }
        let est = f.estimate_len();
        assert!((est - 150.0).abs() < 10.0, "estimate {est} far from 150");
    }

    #[test]
    fn intersection_estimate_tracks_overlap() {
        let mut a = BloomFilter::new(4096, 4);
        let mut b = BloomFilter::new(4096, 4);
        for key in 0..100u64 {
            a.insert(key);
        }
        for key in 60..160u64 {
            b.insert(key);
        }
        let est = a.intersection_estimate(&b);
        assert!((est - 40.0).abs() < 12.0, "estimate {est} far from 40");
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn mismatched_geometry_panics() {
        let a = BloomFilter::new(512, 4);
        let b = BloomFilter::new(1024, 4);
        let _ = a.intersects(&b);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn non_word_size_rejected() {
        BloomFilter::new(100, 4);
    }

    #[test]
    fn debug_is_nonempty() {
        let f = BloomFilter::new(512, 4);
        assert!(!format!("{f:?}").is_empty());
    }
}
