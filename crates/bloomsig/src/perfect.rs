//! Exact-set ("perfect") signatures.

use crate::signature::Signature;
use std::collections::BTreeSet;

/// An exact-set signature: stores the precise set of keys.
///
/// The paper's evaluation uses perfect signatures in two places: the LogTM
/// substrate's conflict detection ("perfect signature used for conflict
/// detection", Table 2) and the `BFGTS-NoOverhead` configuration, which
/// computes similarity from exact read/write sets instead of Bloom
/// estimates.
///
/// # Example
///
/// ```
/// use bfgts_bloomsig::{PerfectSignature, Signature};
///
/// let mut a = PerfectSignature::new();
/// let mut b = PerfectSignature::new();
/// a.insert(1);
/// a.insert(2);
/// b.insert(2);
/// assert_eq!(a.intersection_estimate(&b), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerfectSignature {
    // BTreeSet, not HashSet: `iter` escapes to callers, so the order
    // must not depend on hash randomisation (determinism policy, D001).
    keys: BTreeSet<u64>,
}

impl PerfectSignature {
    /// Creates an empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact number of keys stored.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Exact size of the intersection with `other`.
    pub fn intersection_len(&self, other: &Self) -> usize {
        let (small, large) = if self.keys.len() <= other.keys.len() {
            (&self.keys, &other.keys)
        } else {
            (&other.keys, &self.keys)
        };
        small.iter().filter(|k| large.contains(k)).count()
    }

    /// Iterates over the stored keys in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys.iter().copied()
    }
}

impl Signature for PerfectSignature {
    fn insert(&mut self, key: u64) {
        self.keys.insert(key);
    }

    fn may_contain(&self, key: u64) -> bool {
        self.keys.contains(&key)
    }

    fn estimate_len(&self) -> f64 {
        self.keys.len() as f64
    }

    fn intersects(&self, other: &Self) -> bool {
        let (small, large) = if self.keys.len() <= other.keys.len() {
            (&self.keys, &other.keys)
        } else {
            (&other.keys, &self.keys)
        };
        small.iter().any(|k| large.contains(k))
    }

    fn intersection_estimate(&self, other: &Self) -> f64 {
        self.intersection_len(other) as f64
    }

    fn union_in_place(&mut self, other: &Self) {
        self.keys.extend(other.keys.iter().copied());
    }

    fn clear(&mut self) {
        self.keys.clear();
    }

    fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

impl FromIterator<u64> for PerfectSignature {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self {
            keys: iter.into_iter().collect(),
        }
    }
}

impl Extend<u64> for PerfectSignature {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.keys.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_membership() {
        let mut s = PerfectSignature::new();
        s.insert(5);
        assert!(s.may_contain(5));
        assert!(!s.may_contain(6));
    }

    #[test]
    fn exact_len() {
        let s: PerfectSignature = (0..100).collect();
        assert_eq!(s.len(), 100);
        assert_eq!(s.estimate_len(), 100.0);
    }

    #[test]
    fn duplicate_inserts_counted_once() {
        let mut s = PerfectSignature::new();
        s.insert(1);
        s.insert(1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn intersection_is_exact() {
        let a: PerfectSignature = (0..100).collect();
        let b: PerfectSignature = (60..160).collect();
        assert_eq!(a.intersection_len(&b), 40);
        assert_eq!(a.intersection_estimate(&b), 40.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn disjoint_sets_do_not_intersect() {
        let a: PerfectSignature = (0..10).collect();
        let b: PerfectSignature = (10..20).collect();
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection_estimate(&b), 0.0);
    }

    #[test]
    fn union_in_place_merges() {
        let mut a: PerfectSignature = (0..10).collect();
        let b: PerfectSignature = (5..15).collect();
        a.union_in_place(&b);
        assert_eq!(a.len(), 15);
    }

    #[test]
    fn clear_empties() {
        let mut a: PerfectSignature = (0..10).collect();
        a.clear();
        assert!(Signature::is_empty(&a));
    }
}
