//! The typed event vocabulary.
//!
//! Events carry only primitives (`u32` ids, `u64` cycle counts, `u64`
//! IEEE-754 bit patterns) so the crate stays a leaf: the simulator, HTM
//! model and scheduler convert their own id types at the emission site.

/// Sentinel for "no target thread/transaction" in events whose target is
/// optional (e.g. a [`TraceEvent::SchedDecision`] that proceeds).
pub const NO_TARGET: u32 = u32::MAX;

/// The five cycle buckets of the paper's Figure 5, mirroring
/// `bfgts_sim::Bucket` (which converts via `Bucket::trace_kind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BucketKind {
    /// Useful work outside any transaction.
    NonTx,
    /// Kernel/OS time: context switches, futex traffic, syscalls.
    Kernel,
    /// Useful work inside transactions that eventually commit.
    Tx,
    /// Work inside transactions that aborted, plus rollback costs.
    Abort,
    /// Contention-manager decision overhead.
    Scheduling,
}

impl BucketKind {
    /// All buckets, in the fixed order used for array indexing and the
    /// per-thread totals in [`crate::AuditInputs`].
    pub const ALL: [BucketKind; 5] = [
        BucketKind::NonTx,
        BucketKind::Kernel,
        BucketKind::Tx,
        BucketKind::Abort,
        BucketKind::Scheduling,
    ];

    /// Number of buckets.
    pub const COUNT: usize = 5;

    /// Position of this bucket in [`BucketKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            BucketKind::NonTx => 0,
            BucketKind::Kernel => 1,
            BucketKind::Tx => 2,
            BucketKind::Abort => 3,
            BucketKind::Scheduling => 4,
        }
    }

    /// Inverse of [`BucketKind::index`].
    pub fn from_index(i: usize) -> Option<BucketKind> {
        BucketKind::ALL.get(i).copied()
    }

    /// Stable lowercase label, used in exports.
    pub fn label(self) -> &'static str {
        match self {
            BucketKind::NonTx => "non_tx",
            BucketKind::Kernel => "kernel",
            BucketKind::Tx => "tx",
            BucketKind::Abort => "abort",
            BucketKind::Scheduling => "scheduling",
        }
    }

    /// Inverse of [`BucketKind::label`].
    pub fn from_label(s: &str) -> Option<BucketKind> {
        BucketKind::ALL.into_iter().find(|b| b.label() == s)
    }
}

/// What a contention manager told a transaction to do at begin time
/// (mirrors `bfgts_htm::BeginDecision` without its payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Start immediately.
    Proceed,
    /// Suspend by spinning until a predicted enemy finishes.
    Spin,
    /// Suspend by yielding the CPU until a predicted enemy finishes.
    Yield,
    /// Block on a futex.
    Block,
    /// Back off for a fixed delay.
    Delay,
}

impl DecisionKind {
    /// Stable lowercase label, used in exports.
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::Proceed => "proceed",
            DecisionKind::Spin => "spin",
            DecisionKind::Yield => "yield",
            DecisionKind::Block => "block",
            DecisionKind::Delay => "delay",
        }
    }

    /// Inverse of [`DecisionKind::label`].
    pub fn from_label(s: &str) -> Option<DecisionKind> {
        [
            DecisionKind::Proceed,
            DecisionKind::Spin,
            DecisionKind::Yield,
            DecisionKind::Block,
            DecisionKind::Delay,
        ]
        .into_iter()
        .find(|d| d.label() == s)
    }
}

/// Which confidence-table update rule produced a [`TraceEvent::ConfUpdate`].
///
/// The four rules are the paper's Examples 2–4 weightings; the audit
/// recomputes each from the recorded similarity inputs and requires
/// bit-exact agreement with the applied delta:
///
/// * `ConflictInc` — `txConflict`: `+inc_val · sim` (Example 3).
/// * `SuspendDecay` — `suspendTx`: `−decay_val · (1 − sim)` (Example 2).
/// * `WaitJustified` — `commitTx`, the suspended enemy *would* have
///   conflicted: `+inc_val · sim` (Example 4).
/// * `WaitUnjustified` — `commitTx`, the wait was for nothing:
///   `−dec_val · (1 − sim)` (Example 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfKind {
    /// Conflict-driven increase, weighted by pairwise similarity.
    ConflictInc,
    /// Suspension-driven decay, weighted by dissimilarity.
    SuspendDecay,
    /// Commit-time reinforcement of a justified wait.
    WaitJustified,
    /// Commit-time decay of an unjustified wait.
    WaitUnjustified,
}

impl ConfKind {
    /// Stable lowercase label, used in exports.
    pub fn label(self) -> &'static str {
        match self {
            ConfKind::ConflictInc => "conflict_inc",
            ConfKind::SuspendDecay => "suspend_decay",
            ConfKind::WaitJustified => "wait_justified",
            ConfKind::WaitUnjustified => "wait_unjustified",
        }
    }

    /// Inverse of [`ConfKind::label`].
    pub fn from_label(s: &str) -> Option<ConfKind> {
        [
            ConfKind::ConflictInc,
            ConfKind::SuspendDecay,
            ConfKind::WaitJustified,
            ConfKind::WaitUnjustified,
        ]
        .into_iter()
        .find(|k| k.label() == s)
    }
}

/// One trace event. The timestamp lives on the enclosing
/// [`crate::TraceRec`].
///
/// `Charge` timestamps are *interval starts*: the engine serialises the
/// charges of one scheduling step so that on any single CPU charge
/// intervals `[at, at + cycles)` never overlap — that is invariant I2 of
/// the audit. All other events are instants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// `cycles` charged to `bucket` for `thread` executing on `cpu`.
    Charge {
        /// Executing CPU.
        cpu: u32,
        /// Charged thread.
        thread: u32,
        /// Destination bucket.
        bucket: BucketKind,
        /// Interval length in cycles (never zero; zero-cost operations
        /// emit nothing).
        cycles: u64,
    },
    /// Cycles moved between buckets after the fact (abort rollback
    /// refiling Tx work into Abort). `moved < requested` means the source
    /// bucket saturated — the audit flags it, because a correct
    /// accounting never asks for more than it previously charged.
    Refile {
        /// Thread whose buckets were adjusted.
        thread: u32,
        /// Source bucket.
        from: BucketKind,
        /// Destination bucket.
        to: BucketKind,
        /// Cycles the caller asked to move.
        requested: u64,
        /// Cycles actually moved.
        moved: u64,
    },
    /// The OS scheduler put a different thread on a CPU (same-thread
    /// re-arms emit nothing).
    ContextSwitch {
        /// The CPU switching.
        cpu: u32,
        /// Incoming thread.
        thread: u32,
        /// Switch cost in cycles, charged to the incoming thread's
        /// kernel bucket.
        cost: u64,
    },
    /// A transaction attempt entered the HTM (`XBEGIN` equivalent).
    TxBegin {
        /// Executing thread.
        thread: u32,
        /// Static transaction id.
        stx: u32,
        /// Abort count of this dynamic transaction so far.
        retries: u32,
    },
    /// A transactional access was NACKed by an enemy transaction.
    TxConflict {
        /// The requesting (losing) thread.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
        /// The owning (winning) thread, or [`NO_TARGET`].
        enemy_thread: u32,
        /// The owner's static transaction id, or [`NO_TARGET`].
        enemy_stx: u32,
        /// `true` if the requester stalls and retries, `false` if this
        /// conflict aborts it.
        stalled: bool,
    },
    /// First NACK of a stall episode (counted once per episode, matching
    /// `TmStats::stalls`).
    TxStall {
        /// Stalling thread.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
    },
    /// The scheduler suspended a transaction before it began, predicting
    /// a conflict with a running enemy (the paper's `suspendTx`).
    TxSuspend {
        /// Suspended thread.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
        /// The predicted enemy's thread.
        target_thread: u32,
        /// The predicted enemy's static transaction id.
        target_stx: u32,
        /// `true` for yield-wait, `false` for spin-wait.
        yielding: bool,
    },
    /// A transaction attempt rolled back.
    TxAbort {
        /// Aborting thread.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
        /// Log entries undone (drives the rollback cost).
        undo_lines: u32,
    },
    /// A transaction attempt committed.
    TxCommit {
        /// Committing thread.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
        /// Aborts this dynamic transaction survived before committing.
        retries: u32,
        /// Size of its read/write set in cache lines.
        rw_lines: u32,
    },
    /// A contention manager's begin-time verdict, with its inputs.
    SchedDecision {
        /// Asking thread.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
        /// The verdict.
        kind: DecisionKind,
        /// Predicted enemy thread ([`NO_TARGET`] when not applicable).
        target_thread: u32,
        /// Predicted enemy static transaction id ([`NO_TARGET`] when not
        /// applicable).
        target_stx: u32,
        /// Decision overhead in cycles (charged to Scheduling).
        cost: u64,
    },
    /// A confidence-table delta, with the inputs needed to recompute it.
    ConfUpdate {
        /// Update rule (determines the recomputation formula).
        kind: ConfKind,
        /// Row transaction (the one whose entry `conf[a][b]` moved).
        a_stx: u32,
        /// Column transaction.
        b_stx: u32,
        /// Similarity of `a` as an `f64` bit pattern.
        sim_a_bits: u64,
        /// Similarity of `b` as an `f64` bit pattern.
        sim_b_bits: u64,
        /// The rule's rate parameter (`inc_val` / `dec_val` /
        /// `decay_val`) as an `f64` bit pattern.
        param_bits: u64,
        /// The delta actually added to the table, as an `f64` bit
        /// pattern.
        applied_bits: u64,
    },
    /// A Bloom intersection-size estimate feeding eq. 4, before and
    /// after the clamp contract.
    BloomSample {
        /// Sampling thread.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
        /// Raw estimate (may be slightly negative for disjoint sets) as
        /// an `f64` bit pattern.
        raw_bits: u64,
        /// Estimate after clamping at zero, as an `f64` bit pattern.
        clamped_bits: u64,
    },
    /// A fault-injection layer forced false-positive bits into a freshly
    /// built commit signature (Bloom corruption fault, DESIGN.md §9).
    /// Recorded so audited traces stay exact under injection: the
    /// corruption happens *before* the [`TraceEvent::BloomSample`] it
    /// perturbs, so I5/I6 recomputation still agrees bit for bit.
    FaultBloomCorrupt {
        /// Committing thread whose new signature was corrupted.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
        /// Bit positions forced high (overlapping positions are
        /// idempotent, so fewer *new* bits may have appeared).
        bits: u32,
    },
    /// A transaction touched a conflict-detection shard for the first
    /// time in this attempt (sharded platforms only, `shards > 1`).
    /// Emitted at most once per shard per attempt; the set of shards
    /// named between a [`TraceEvent::TxBegin`] and its commit is exactly
    /// the set the transaction accessed, which invariant I8 checks
    /// against the matching [`TraceEvent::CrossShardCommit`].
    ShardTouch {
        /// Accessing thread.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
        /// The shard first touched by this access.
        shard: u32,
    },
    /// A committing transaction spanned multiple conflict-detection
    /// shards and paid the cross-shard coordination cost (sharded
    /// platforms only). Emitted before the matching
    /// [`TraceEvent::TxCommit`], while the attempt is still open.
    CrossShardCommit {
        /// Committing thread.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
        /// Distinct shards the attempt touched (always ≥ 2).
        shards: u32,
        /// Extra commit cycles charged: `cross_shard_hop · (shards − 1)`,
        /// folded into the commit's Tx-bucket charge.
        cost: u64,
    },
    /// An open-system transaction was fetched from its thread's arrival
    /// queue (open-system runs only; batch runs never emit this).
    /// `arrival` is the cycle the transaction *entered* the queue — the
    /// anchor of invariant I9: the next [`TraceEvent::TxBegin`] on this
    /// thread must not precede it, and the sojourn (commit − arrival) is
    /// non-negative.
    TxArrival {
        /// Fetching thread.
        thread: u32,
        /// Static transaction id of the fetched instance.
        stx: u32,
        /// Cycle the transaction arrived (entered the queue). Never
        /// after the fetch instant on the enclosing record.
        arrival: u64,
    },
    /// Arrival-queue depth observed at a fetch: transactions already due
    /// but still queued behind the one just fetched (open-system runs
    /// only). Emitted immediately after the matching
    /// [`TraceEvent::TxArrival`].
    QueueDepth {
        /// Observing thread.
        thread: u32,
        /// Due-but-queued arrivals behind the fetched transaction.
        depth: u64,
    },
    /// A fault-injection layer rewrote the confidence table mid-run
    /// (poisoning fault, DESIGN.md §9).
    FaultConfPoison {
        /// Thread whose commit triggered the poisoning.
        thread: u32,
        /// `true` saturates every allocated entry to a large constant,
        /// `false` resets them all to zero.
        saturate: bool,
        /// Table entries rewritten.
        entries: u64,
    },
    /// A bounded-signature access was denied by a Bloom intersection that
    /// the exact line table *dis*confirms (capacity-limited detection,
    /// DESIGN.md §13): the signatures overlapped, the real sets did not.
    /// The false positive is a real abort — the requester rolls back —
    /// which is exactly the noisy-oracle regime the scheduler must
    /// survive. Invariant I10 recomputes `true_conflicts` from the
    /// ground-truth sets and requires it to be zero.
    FalsePositiveConflict {
        /// The requesting (aborting) thread.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
        /// The thread whose signature collided with the access.
        enemy_thread: u32,
        /// The signature owner's static transaction id.
        enemy_stx: u32,
        /// Genuinely conflicting lines for the denied access, recomputed
        /// from the exact line table at emission. Always 0 — a non-zero
        /// value means a real conflict was mislabeled, and I10 rejects
        /// the trace.
        true_conflicts: u32,
    },
    /// A bounded-signature transaction tried to track one address more
    /// than its hardware `capacity` allows and aborted on overflow
    /// (capacity-limited detection, DESIGN.md §13). Invariant I10
    /// requires `tracked > capacity`: the recorded set size must actually
    /// exceed the configured bound. The retry runs in the software
    /// fallback with exact tracking, so the instance still commits.
    CapacityAbort {
        /// The overflowing thread.
        thread: u32,
        /// Its static transaction id.
        stx: u32,
        /// Distinct addresses the attempt would have had to track,
        /// including the one that overflowed (always `capacity + 1`).
        tracked: u32,
        /// The configured hardware tracking bound (always ≥ 1).
        capacity: u32,
    },
    /// A window-based greedy contention manager moved a thread into its
    /// next execution window and drew the window's randomized priority
    /// (DESIGN.md §14). Invariant I11 requires the run header to declare
    /// a window seed and recomputes `priority` as
    /// `window_priority(seed, thread, window)` bit-for-bit; per-thread
    /// windows are strictly increasing, and no advance happens while
    /// that thread's transaction attempt is open.
    WindowAdvance {
        /// The advancing thread.
        thread: u32,
        /// The window just entered (threads start in window 0, so the
        /// first advance announces window 1).
        window: u64,
        /// The priority drawn for this window, higher wins conflicts.
        priority: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case name of the variant, used as the JSONL `ev` key.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Charge { .. } => "charge",
            TraceEvent::Refile { .. } => "refile",
            TraceEvent::ContextSwitch { .. } => "context_switch",
            TraceEvent::TxBegin { .. } => "tx_begin",
            TraceEvent::TxConflict { .. } => "tx_conflict",
            TraceEvent::TxStall { .. } => "tx_stall",
            TraceEvent::TxSuspend { .. } => "tx_suspend",
            TraceEvent::TxAbort { .. } => "tx_abort",
            TraceEvent::TxCommit { .. } => "tx_commit",
            TraceEvent::SchedDecision { .. } => "sched_decision",
            TraceEvent::ConfUpdate { .. } => "conf_update",
            TraceEvent::BloomSample { .. } => "bloom_sample",
            TraceEvent::ShardTouch { .. } => "shard_touch",
            TraceEvent::CrossShardCommit { .. } => "cross_shard_commit",
            TraceEvent::FaultBloomCorrupt { .. } => "fault_bloom_corrupt",
            TraceEvent::TxArrival { .. } => "tx_arrival",
            TraceEvent::QueueDepth { .. } => "queue_depth",
            TraceEvent::FaultConfPoison { .. } => "fault_conf_poison",
            TraceEvent::FalsePositiveConflict { .. } => "false_positive_conflict",
            TraceEvent::CapacityAbort { .. } => "capacity_abort",
            TraceEvent::WindowAdvance { .. } => "window_advance",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_roundtrip() {
        for (i, b) in BucketKind::ALL.into_iter().enumerate() {
            assert_eq!(b.index(), i);
            assert_eq!(BucketKind::from_index(i), Some(b));
            assert_eq!(BucketKind::from_label(b.label()), Some(b));
        }
        assert_eq!(BucketKind::from_index(5), None);
        assert_eq!(BucketKind::from_label("bogus"), None);
    }

    #[test]
    fn decision_and_conf_labels_roundtrip() {
        for d in [
            DecisionKind::Proceed,
            DecisionKind::Spin,
            DecisionKind::Yield,
            DecisionKind::Block,
            DecisionKind::Delay,
        ] {
            assert_eq!(DecisionKind::from_label(d.label()), Some(d));
        }
        for k in [
            ConfKind::ConflictInc,
            ConfKind::SuspendDecay,
            ConfKind::WaitJustified,
            ConfKind::WaitUnjustified,
        ] {
            assert_eq!(ConfKind::from_label(k.label()), Some(k));
        }
    }
}
